//! Display and `source()` contracts of every error enum in the workspace:
//! each variant renders a human-readable message, and wrapper variants
//! expose their cause through the standard `Error::source` chain so
//! callers (and the flow report) can print full causal traces.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use std::error::Error;

use icd_bench::{FlowError, FlowStage};
use icd_core::CoreError;
use icd_defects::{BehaviorClass, DefectError};
use icd_faultsim::FaultSimError;
use icd_intercell::IntercellError;
use icd_logic::TruthTableError;
use icd_netlist::NetlistError;
use icd_switch::SwitchError;

/// Every display string must be non-empty, single-line and not start with
/// whitespace (they get embedded in larger messages).
fn assert_displays(err: &dyn Error, expect_source: bool) {
    let text = err.to_string();
    assert!(!text.is_empty());
    assert!(!text.contains('\n'), "multi-line: {text:?}");
    assert!(!text.starts_with(char::is_whitespace), "padded: {text:?}");
    assert_eq!(err.source().is_some(), expect_source, "source of {text:?}");
    if let Some(cause) = err.source() {
        // The wrapper embeds its cause's message, so a caller printing
        // only the top level still sees the root cause.
        assert!(text.contains(&cause.to_string()), "{text:?} lacks cause");
    }
}

#[test]
fn netlist_error_formats() {
    for e in [
        NetlistError::UnknownGateType("ND2".into()),
        NetlistError::DuplicateGateType("ND2".into()),
        NetlistError::WrongPinCount {
            gate_type: "ND2".into(),
            expected: 2,
            got: 3,
        },
        NetlistError::PinNameCountMismatch {
            gate_type: "ND2".into(),
            table_inputs: 2,
            names: 1,
        },
        NetlistError::MultipleDrivers("n1".into()),
        NetlistError::UndrivenNet("n1".into()),
        NetlistError::CombinationalCycle("n1".into()),
        NetlistError::UnknownName("n1".into()),
        NetlistError::Parse {
            line: 3,
            message: "bad".into(),
        },
    ] {
        assert_displays(&e, false);
    }
}

#[test]
fn truth_table_error_formats() {
    for e in [
        TruthTableError::BadPatternChar('?'),
        TruthTableError::WrongEntryCount { inputs: 2, got: 3 },
        TruthTableError::WrongArity {
            expected: 2,
            got: 1,
        },
        TruthTableError::TooManyInputs(25),
    ] {
        assert_displays(&e, false);
    }
}

#[test]
fn switch_error_formats() {
    for e in [
        SwitchError::DuplicateNet("a".into()),
        SwitchError::DuplicateTransistor("m1".into()),
        SwitchError::NoOutput("INV".into()),
        SwitchError::DegenerateChannel("m1".into()),
        SwitchError::UnconnectedOutput("INV".into()),
        SwitchError::WrongArity {
            expected: 2,
            got: 1,
        },
        SwitchError::NoConvergence("INV".into()),
    ] {
        assert_displays(&e, false);
    }
}

#[test]
fn faultsim_error_formats() {
    for e in [
        FaultSimError::WrongPatternWidth {
            expected: 4,
            got: 3,
            pattern: 7,
        },
        FaultSimError::UnknownInPattern { pattern: 7 },
        FaultSimError::UnknownGoodValue("n1".into()),
        FaultSimError::WrongFaultArity {
            expected: 2,
            got: 3,
        },
        FaultSimError::ParseDatalog {
            line: 3,
            message: "unknown keyword".into(),
        },
    ] {
        assert_displays(&e, false);
    }
}

#[test]
fn defect_error_formats() {
    assert_displays(&DefectError::RailToRailShort, false);
    assert_displays(&DefectError::DegenerateShort, false);
    assert_displays(
        &DefectError::SamplingExhausted {
            class: BehaviorClass::StuckLike,
        },
        false,
    );
    assert_displays(
        &DefectError::Switch(SwitchError::NoConvergence("INV".into())),
        true,
    );
}

#[test]
fn intercell_error_formats() {
    assert_displays(&IntercellError::BadPatternIndex(9), false);
    assert_displays(&IntercellError::BadOutputIndex(9), false);
    assert_displays(
        &IntercellError::Simulation(FaultSimError::UnknownInPattern { pattern: 2 }),
        true,
    );
}

#[test]
fn core_error_formats() {
    assert_displays(&CoreError::NoFailingPatterns, false);
    assert_displays(
        &CoreError::WrongLocalWidth {
            expected: 2,
            got: 3,
        },
        false,
    );
    assert_displays(
        &CoreError::Switch(SwitchError::WrongArity {
            expected: 2,
            got: 1,
        }),
        true,
    );
}

#[test]
fn flow_error_formats_and_chains() {
    assert_displays(&FlowError::NotObservable, false);
    assert_displays(&FlowError::NoInstance("ND2".into()), false);
    assert_displays(&FlowError::NoLocalFailures, false);
    assert_displays(
        &FlowError::FaultSim(FaultSimError::UnknownInPattern { pattern: 1 }),
        true,
    );
    assert_displays(
        &FlowError::Intercell(IntercellError::BadPatternIndex(3)),
        true,
    );
    assert_displays(&FlowError::Core(CoreError::NoFailingPatterns), true);
    assert_displays(
        &FlowError::Netlist(NetlistError::UnknownName("n1".into())),
        true,
    );
    assert_displays(&FlowError::Defect(DefectError::RailToRailShort), true);
    assert_displays(&FlowError::Panicked("boom".into()), false);
    assert_displays(&FlowError::Cancelled, false);

    // A two-level chain stays walkable end to end.
    let deep = FlowError::Core(CoreError::Switch(SwitchError::NoConvergence("INV".into())));
    let mid = deep.source().unwrap();
    assert!(mid.source().is_some(), "chain stops at the first level");
}

#[test]
fn flow_stages_name_themselves() {
    for stage in [
        FlowStage::LocalExtraction,
        FlowStage::CellLookup,
        FlowStage::IntraCell,
        FlowStage::Ranking,
    ] {
        let text = stage.to_string();
        assert!(!text.is_empty());
        assert!(!text.contains('\n'));
    }
}
