//! Cell-level soundness of the intra-cell diagnosis: across the whole
//! library and many random defects, a correctly-extracted local pattern
//! set must implicate the injected location.

use icd_core::diagnose;
use icd_defects::{characterize, sample_defects, BehaviorClass, Defect, MixConfig};
use icd_integration::{cells, exhaustive_local_patterns};

#[test]
fn rail_shorts_are_always_implicated() {
    // A hard short of any signal net to a rail, when observable with a
    // clean (non-floating) table, must keep the shorted net in the GSL.
    let lib = cells();
    for cell in lib.iter() {
        let nl = cell.netlist();
        for net in nl.nets() {
            if nl.is_rail(net) {
                continue;
            }
            for rail in [nl.vdd(), nl.gnd()] {
                let ch = characterize(nl, &Defect::hard_short(net, rail)).expect("characterizes");
                let Some(behavior) = ch.behavior else {
                    continue;
                };
                // Only assert for clean static behaviours: floating/fight
                // cases legitimately become dynamic evidence.
                let icd_faultsim::FaultyBehavior::Static(table) = &behavior else {
                    continue;
                };
                if table.entries().iter().any(|v| !v.is_known()) {
                    continue;
                }
                let (lfp, lpp) = exhaustive_local_patterns(nl, &behavior);
                if lfp.is_empty() {
                    continue;
                }
                let report = diagnose(nl, &lfp, &lpp).expect("diagnoses");
                assert!(
                    report.suspect_nets(nl).contains(&net),
                    "{}: {} not implicated\n{}",
                    nl.name(),
                    nl.net_name(net),
                    report.summary(nl)
                );
            }
        }
    }
}

#[test]
fn random_defects_rarely_evade_diagnosis() {
    // Statistical soundness across the full library and all defect
    // classes: at least 85% of observable random defects must be
    // implicated by the cell-level diagnosis.
    let lib = cells();
    let mut runs = 0usize;
    let mut hits = 0usize;
    for (i, cell) in lib.iter().enumerate() {
        let nl = cell.netlist();
        let sample =
            sample_defects(nl, 12, &MixConfig::default(), 7_000 + i as u64).expect("samples");
        for injected in &sample {
            let behavior = injected
                .characterization
                .behavior
                .as_ref()
                .expect("observable");
            let (lfp, lpp) = exhaustive_local_patterns(nl, behavior);
            if lfp.is_empty() {
                continue;
            }
            let report = diagnose(nl, &lfp, &lpp).expect("diagnoses");
            runs += 1;
            let truth = &injected.characterization.ground_truth;
            let hit = truth
                .nets
                .iter()
                .any(|n| report.suspect_nets(nl).contains(n))
                || truth
                    .transistors
                    .iter()
                    .any(|t| report.suspect_transistors().contains(t));
            if hit {
                hits += 1;
            }
        }
    }
    assert!(runs > 100, "campaign too small: {runs}");
    let rate = hits as f64 / runs as f64;
    assert!(
        rate >= 0.85,
        "cell-level hit rate {rate:.2} ({hits}/{runs}) below 0.85"
    );
}

#[test]
fn benign_class_defects_never_reach_diagnosis() {
    let lib = cells();
    let nl = lib.get("AO7SVTX1").expect("exists").netlist();
    let z = nl.output();
    let a = nl.find_net("A").expect("A");
    let ch = characterize(
        nl,
        &Defect::Short {
            a: z,
            b: a,
            resistance: 1e9,
        },
    )
    .expect("characterizes");
    assert_eq!(ch.class, BehaviorClass::Benign);
    assert!(ch.behavior.is_none());
}

#[test]
fn dynamic_only_reports_have_no_static_candidates() {
    use icd_core::FaultModel;
    let lib = cells();
    for cell in lib.iter().take(6) {
        let nl = cell.netlist();
        let mix = MixConfig {
            stuck: 0.0,
            bridge: 0.0,
            delay: 1.0,
            ..MixConfig::default()
        };
        let sample = sample_defects(nl, 4, &mix, 31).expect("samples");
        for injected in &sample {
            let behavior = injected
                .characterization
                .behavior
                .as_ref()
                .expect("observable");
            let (lfp, lpp) = exhaustive_local_patterns(nl, behavior);
            if lfp.is_empty() {
                continue;
            }
            let report = diagnose(nl, &lfp, &lpp).expect("diagnoses");
            if report.dynamic_only {
                assert!(report.gsl.is_empty());
                assert!(report.gbsl.is_empty());
                assert!(report
                    .candidates
                    .iter()
                    .all(|c| c.model == FaultModel::SlowTransition));
            }
        }
    }
}
