//! The paper's silicon case studies, asserted as regression tests at
//! quick scale.

use icd_bench::{silicon, RunScale};

#[test]
fn table7_cases_confirm_like_the_paper() {
    let (_, cases) = silicon::table7(RunScale::quick()).expect("table 7 runs");
    assert_eq!(cases.len(), 3);
    for case in &cases {
        assert!(
            case.pfa_confirms,
            "case {} did not confirm: {}",
            case.sample, case.intra_result
        );
    }
    // H1 must single out the A-aggressor bridge, as in Fig. 11.
    let h1 = &cases[0];
    assert!(
        h1.intra_result.contains("A aggressor"),
        "{}",
        h1.intra_result
    );
    // H2 must report the Net61 stuck-at-0, as in Table 7.
    let h2 = &cases[1];
    assert!(h2.intra_result.contains("Net61 Sa0"), "{}", h2.intra_result);
    // H3 must implicate transistor N0 with a delay model.
    let h3 = &cases[2];
    assert!(h3.intra_result.contains("N0 delay"), "{}", h3.intra_result);
}

#[test]
fn circuit_m_multiple_open_is_localized() {
    let (_, case) = silicon::circuit_m_report(RunScale::quick()).expect("circuit M runs");
    assert!(case.pfa_confirms, "M not confirmed: {}", case.intra_result);
    // The equivalent-open region (the dead pull-up branch through Net61)
    // must be named.
    assert!(
        case.intra_result.contains("Net61") || case.intra_result.contains("T2"),
        "{}",
        case.intra_result
    );
}

#[test]
fn circuit_c_inter_cell_defect_yields_empty_list() {
    let report = silicon::circuit_c_report(RunScale::quick()).expect("circuit C runs");
    assert!(
        report.contains("empty suspect list redirects PFA outside the cell (correct)"),
        "{report}"
    );
    assert!(
        report.contains("all approaches implicate the actual short: yes"),
        "{report}"
    );
}

#[test]
fn dictionary_comparison_shows_cpt_cost_advantage() {
    let cmp = silicon::case_c2().expect("comparison runs");
    assert!(cmp.all_hit);
    // The paper's complexity argument: the dictionaries need O(n²) serial
    // injections while CPT needs two simulations per pattern.
    assert!(cmp.defect_dict_size > 50);
    assert!(cmp.fault_dict_size > 10);
    assert!(
        cmp.cpt_seconds < cmp.defect_dict_seconds,
        "CPT ({}s) should beat dictionary build ({}s)",
        cmp.cpt_seconds,
        cmp.defect_dict_seconds
    );
}

#[test]
fn figures_regenerate() {
    let fig1 = icd_bench::figures::fig1_defect_classes().expect("fig1");
    // The resistance sweep must traverse the behaviour bands.
    assert!(fig1.contains("stuck-at"));
    assert!(fig1.contains("delay"));
    assert!(fig1.contains("benign"));
    let fig6 = icd_bench::figures::fig6_walkthrough().expect("fig6");
    assert!(fig6.contains("Net118"));
}

#[test]
fn tables_regenerate_with_hits() {
    let t2 = icd_bench::tables::table2().expect("table2");
    let t3 = icd_bench::tables::table3().expect("table3");
    let t4 = icd_bench::tables::table4().expect("table4");
    for (name, table) in [("t2", &t2), ("t3", &t3), ("t4", &t4)] {
        let hits = table.matches(" yes").count();
        assert!(hits >= 3, "{name} has too few hits:\n{table}");
    }
}
