//! The batch engine's two core guarantees, asserted end to end:
//!
//! 1. **Sequential equivalence** — a batch diagnosed by the engine yields
//!    exactly the staged flow's per-datalog reports;
//! 2. **Scheduling determinism** — the merged batch report is
//!    byte-identical (by `Debug` rendering) for worker counts 1, 2 and 8,
//!    including batches containing multi-defect devices and a poisoned
//!    suspect;
//! 3. **Packed/scalar equivalence** — diagnosis reports driven by the
//!    bit-parallel good machine are byte-identical to those driven by its
//!    serial scalar oracle.

use std::sync::Arc;

use icd_bench::flow::{analyze_datalog_report, ExperimentContext, FlowStage};
use icd_engine::{synthesize_batch, BatchConfig, BatchEngine, EngineConfig};
use icd_faultsim::{Datalog, FaultyBehavior, FaultyGate};
use icd_logic::{Lv, TruthTable};

/// Circuit A with a synthesized batch that mixes single- and two-defect
/// devices, plus one all-pass device (test escape).
fn batch_fixture() -> (ExperimentContext, Vec<Datalog>) {
    let ctx = ExperimentContext::circuit_a().expect("circuit A builds");
    let mut batch = synthesize_batch(&ctx, &BatchConfig::new(5, 0xd1a6)).expect("synthesizes");
    assert!(batch.len() >= 3, "fixture needs several failing devices");
    batch.push(Datalog {
        circuit_name: ctx.circuit.name().to_owned(),
        num_patterns: ctx.patterns.len(),
        entries: vec![],
    });
    (ctx, batch)
}

fn render(engine_workers: usize, ctx: &Arc<ExperimentContext>, batch: &[Datalog]) -> String {
    let engine = BatchEngine::new(EngineConfig::with_workers(engine_workers));
    let report = engine.diagnose_batch(ctx, batch).expect("batch runs");
    assert_eq!(report.outcomes.len(), batch.len());
    assert_eq!(report.stats.workers, engine_workers);
    format!("{:#?}", report.outcomes)
}

#[test]
fn engine_matches_the_sequential_staged_flow() {
    let (ctx, batch) = batch_fixture();
    let sequential: Vec<String> = batch
        .iter()
        .map(|d| format!("{:#?}", analyze_datalog_report(&ctx, d).expect("flow runs")))
        .collect();

    let ctx = ctx.into_shared();
    let engine = BatchEngine::new(EngineConfig::with_workers(2));
    let parallel = engine.diagnose_batch(&ctx, &batch).expect("batch runs");
    for (outcome, expected) in parallel.outcomes.iter().zip(&sequential) {
        let report = outcome.report.as_ref().expect("datalog diagnosed");
        assert_eq!(
            &format!("{report:#?}"),
            expected,
            "datalog {} diverges from the sequential flow",
            outcome.index
        );
    }
}

#[test]
fn merged_reports_are_identical_across_worker_counts() {
    let (ctx, batch) = batch_fixture();
    let ctx = ctx.into_shared();
    let one = render(1, &ctx, &batch);
    let two = render(2, &ctx, &batch);
    let eight = render(8, &ctx, &batch);
    assert_eq!(one, two, "2 workers diverge from 1");
    assert_eq!(one, eight, "8 workers diverge from 1");
}

#[test]
fn packed_and_scalar_good_machines_yield_identical_reports() {
    // Inter-cell diagnosis of the whole synthesized batch, once on the
    // packed (64-patterns-per-word) good machine and once on the serial
    // scalar oracle: the reports must be byte-identical. The pattern
    // count deliberately does not fill a whole word, so the tail-lane
    // handling is on the corpus path too.
    let (ctx, batch) = batch_fixture();
    assert!(
        !ctx.patterns.len().is_multiple_of(64),
        "fixture should exercise a partial tail word"
    );
    let packed = icd_faultsim::good_simulate(&ctx.circuit, &ctx.patterns).expect("packed sim");
    let scalar =
        icd_faultsim::good_simulate_scalar(&ctx.circuit, &ctx.patterns).expect("scalar sim");
    for (i, datalog) in batch.iter().enumerate() {
        let from_packed =
            icd_intercell::diagnose_with_good(&ctx.circuit, &ctx.patterns, datalog, &packed)
                .expect("diagnoses");
        let from_scalar =
            icd_intercell::diagnose_with_good(&ctx.circuit, &ctx.patterns, datalog, &scalar)
                .expect("diagnoses");
        assert_eq!(
            format!("{from_packed:#?}"),
            format!("{from_scalar:#?}"),
            "datalog {i}: packed and scalar reports diverge"
        );
    }
}

/// A deterministically corrupted copy of `table`: some entries flipped,
/// some degraded to `U`.
fn corrupted(table: &TruthTable, salt: usize) -> TruthTable {
    let entries: Vec<Lv> = table
        .entries()
        .iter()
        .enumerate()
        .map(|(i, &v)| match (i + salt) % 5 {
            0 => !v,
            1 => Lv::U,
            _ => v,
        })
        .collect();
    TruthTable::from_entries(table.inputs(), entries).expect("same shape as the good table")
}

#[test]
fn event_driven_datalogs_match_the_full_topology_walk_end_to_end() {
    // A mini corpus of multi-defect devices on circuit A: the default
    // event-driven tester and the retained full-topology oracle must
    // produce byte-identical datalogs, and those datalogs must drive the
    // staged flow to byte-identical diagnosis reports.
    let ctx = ExperimentContext::circuit_a().expect("circuit A builds");
    let order = ctx.circuit.topo_order();
    let corpus: &[&[usize]] = &[&[3], &[1, 17], &[5, 11, 23], &[0, 7]];
    for (device, picks) in corpus.iter().enumerate() {
        let faulty: Vec<FaultyGate> = picks
            .iter()
            .map(|&i| {
                let gate = order[(i * 13 + device) % order.len()];
                let table = corrupted(ctx.circuit.gate_type(gate).table(), i + device);
                FaultyGate::new(gate, FaultyBehavior::Static(table))
            })
            .collect();
        let event = icd_faultsim::run_test_multi(&ctx.circuit, &ctx.patterns, &faulty)
            .expect("event-driven tester runs");
        let full = icd_faultsim::run_test_multi_full(&ctx.circuit, &ctx.patterns, &faulty)
            .expect("full-walk tester runs");
        assert_eq!(event, full, "device {device}: datalogs diverge");

        let from_event = analyze_datalog_report(&ctx, &event).expect("flow runs");
        let from_full = analyze_datalog_report(&ctx, &full).expect("flow runs");
        assert_eq!(
            format!("{from_event:#?}"),
            format!("{from_full:#?}"),
            "device {device}: diagnosis reports diverge"
        );
    }
}

#[test]
fn poisoned_suspects_merge_deterministically() {
    // Remove a cell type from the library *after* batch synthesis: every
    // suspect of that type now fails at the cell-lookup stage. The
    // degradation must be identical for every worker count.
    let (mut ctx, batch) = batch_fixture();
    assert!(ctx.cells.remove("AO6CHVTX4"), "fixture cell exists");
    let ctx = ctx.into_shared();

    let one = render(1, &ctx, &batch);
    let eight = render(8, &ctx, &batch);
    assert_eq!(one, eight, "degraded merges diverge across worker counts");

    // The poison is visible as structured skips, never as a panic or a
    // lost datalog.
    let engine = BatchEngine::new(EngineConfig::with_workers(4));
    let report = engine.diagnose_batch(&ctx, &batch).expect("batch runs");
    let skipped_lookup = report
        .reports()
        .flat_map(|(_, r)| r.skipped.iter())
        .filter(|s| s.stage == FlowStage::CellLookup)
        .count();
    assert!(
        skipped_lookup > 0,
        "expected at least one cell-lookup skip after removing the cell type"
    );
}
