//! End-to-end flow tests on circuit A: inject → test → inter-cell →
//! intra-cell, one per defect behaviour class.

use icd_bench::flow::ground_truth_hit;
use icd_bench::{run_flow, ExperimentContext};
use icd_defects::{sample_defects, BehaviorClass, MixConfig};

fn class_mix(class: BehaviorClass) -> MixConfig {
    MixConfig {
        stuck: f64::from(class == BehaviorClass::StuckLike),
        bridge: f64::from(class == BehaviorClass::BridgeLike),
        delay: f64::from(class == BehaviorClass::DelayLike),
        ..MixConfig::default()
    }
}

/// Injects defects of one class into one cell type until a run produces a
/// non-empty diagnosis; asserts the ground truth is implicated at least
/// once across the sampled defects.
fn assert_class_diagnosable(class: BehaviorClass, cell_name: &str) {
    let ctx = ExperimentContext::circuit_a().expect("circuit A builds");
    let gate = ctx.instance_of(cell_name).expect("instance exists");
    let cell = ctx.cells.get(cell_name).expect("library cell");
    let sample = sample_defects(cell.netlist(), 10, &class_mix(class), 99).expect("samples");
    let mut observed = 0;
    for injected in &sample {
        let outcome = run_flow(&ctx, gate, injected).expect("flow runs");
        if outcome.is_escape() {
            continue;
        }
        observed += 1;
        if let Some(analysis) = outcome.analysis_of(gate) {
            if ground_truth_hit(
                cell.netlist(),
                &analysis.report,
                &injected.characterization.ground_truth,
            ) {
                return; // diagnosed correctly
            }
        }
    }
    panic!(
        "no {class:?} defect on {cell_name} was diagnosed ({observed} observed of {})",
        sample.len()
    );
}

#[test]
fn stuck_class_defects_are_diagnosed_end_to_end() {
    assert_class_diagnosable(BehaviorClass::StuckLike, "AO7SVTX1");
}

#[test]
fn bridge_class_defects_are_diagnosed_end_to_end() {
    assert_class_diagnosable(BehaviorClass::BridgeLike, "AO6CHVTX4");
}

#[test]
fn delay_class_defects_are_diagnosed_end_to_end() {
    assert_class_diagnosable(BehaviorClass::DelayLike, "AO8DHVTX1");
}

#[test]
fn flow_is_deterministic() {
    let ctx = ExperimentContext::circuit_a().expect("circuit A builds");
    let gate = ctx.instance_of("AO7NHVTX1").expect("instance exists");
    let cell = ctx.cells.get("AO7NHVTX1").expect("library cell");
    let sample = sample_defects(cell.netlist(), 3, &MixConfig::default(), 5).expect("samples");
    for injected in &sample {
        let a = run_flow(&ctx, gate, injected).expect("flow runs");
        let b = run_flow(&ctx, gate, injected).expect("flow runs");
        assert_eq!(a.failing_patterns, b.failing_patterns);
        assert_eq!(a.analyses.len(), b.analyses.len());
        for (x, y) in a.analyses.iter().zip(b.analyses.iter()) {
            assert_eq!(x.gate, y.gate);
            assert_eq!(x.report, y.report);
        }
    }
}

#[test]
fn local_failing_patterns_match_datalog_size() {
    use icd_faultsim::{run_test, FaultyGate};
    use icd_intercell::extract_local_patterns;

    let ctx = ExperimentContext::circuit_a().expect("circuit A builds");
    let gate = ctx.instance_of("AO7SVTX1").expect("instance exists");
    let cell = ctx.cells.get("AO7SVTX1").expect("library cell");
    let sample = sample_defects(cell.netlist(), 6, &MixConfig::default(), 3).expect("samples");
    for injected in &sample {
        let Some(behavior) = injected.characterization.behavior.clone() else {
            continue;
        };
        let datalog = run_test(
            &ctx.circuit,
            &ctx.patterns,
            &FaultyGate::new(gate, behavior),
        )
        .expect("tester runs");
        let local = extract_local_patterns(&ctx.circuit, &ctx.patterns, &datalog, gate)
            .expect("extraction works");
        // Every failing pattern contributes exactly one local failing
        // pattern; local passing patterns never exceed the passing count.
        assert_eq!(local.lfp.len(), datalog.entries.len());
        assert!(local.lpp.len() <= datalog.passing_pattern_indices().len());
    }
}
