//! The pipeline-level no-panic guarantee: a datalog corrupted by any
//! noise-model sequence — truncation, drops, spurious fails, flipped
//! outputs — flows through sanitation, inter-cell diagnosis, local
//! pattern extraction and intra-cell diagnosis without panicking, and the
//! staged flow degrades gracefully instead of aborting.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use std::sync::OnceLock;

use icd_bench::{analyze_datalog_report, ExperimentContext};
use icd_core::LocalTest;
use icd_faultsim::{run_test, Corruption, Datalog, FaultyGate, NoiseModel};
use proptest::prelude::*;

/// A small circuit with one excited defect, shared across cases (the
/// pipeline is deterministic, so reuse is sound).
struct Fixture {
    ctx: ExperimentContext,
    clean: Datalog,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ctx = ExperimentContext::from_preset(
            &icd_netlist::generator::GeneratorConfig {
                name: "noise".into(),
                gates: 80,
                primary_inputs: 8,
                primary_outputs: 6,
                flip_flops: 4,
                scan_chains: 1,
                seed: 0x4015e,
            },
            1,
            32,
        )
        .unwrap();
        // Find an excited stuck-class defect on any instance.
        let mix = icd_defects::MixConfig {
            stuck: 1.0,
            bridge: 0.0,
            delay: 0.0,
            ..icd_defects::MixConfig::default()
        };
        let clean = ctx
            .circuit
            .gates()
            .find_map(|gate| {
                let cell = ctx.cells.get(ctx.circuit.gate_type(gate).name())?;
                let sample = icd_defects::sample_defects(cell.netlist(), 4, &mix, 7).ok()?;
                sample.iter().find_map(|inj| {
                    let behavior = inj.characterization.behavior.clone()?;
                    let log = run_test(
                        &ctx.circuit,
                        &ctx.patterns,
                        &FaultyGate::new(gate, behavior),
                    )
                    .ok()?;
                    (!log.all_pass()).then_some(log)
                })
            })
            .expect("some defect is excited");
        Fixture { ctx, clean }
    })
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        (0usize..12).prop_map(Corruption::TruncateAfter),
        (0u64..=100).prop_map(|p| Corruption::DropEntries {
            rate: p as f64 / 100.0
        }),
        (0u64..=30).prop_map(|p| Corruption::SpuriousFails {
            rate: p as f64 / 100.0
        }),
        (0u64..=100).prop_map(|p| Corruption::FlipOutputs {
            rate: p as f64 / 100.0
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The staged flow accepts any corrupted datalog: it returns a report
    /// (possibly degraded, never a panic), and per-gate skips carry a
    /// stage and a structured cause.
    #[test]
    fn staged_flow_survives_any_corruption(
        seed in any::<u64>(),
        corruptions in prop::collection::vec(arb_corruption(), 1..=3),
    ) {
        let fx = fixture();
        let model = NoiseModel { seed, corruptions };
        let noisy = model.apply(&fx.clean, fx.ctx.circuit.outputs().len());
        let report = analyze_datalog_report(&fx.ctx, &noisy);
        prop_assert!(report.is_ok(), "whole-circuit stage failed: {:?}", report.err());
        let report = report.unwrap();
        for a in &report.analyses {
            prop_assert!(a.lfp > 0);
        }
        for s in &report.skipped {
            // Every skip names its stage and formats its cause.
            let _ = format!("{} at {}: {}", fx.ctx.circuit.gate_name(s.gate), s.stage, s.error);
        }
    }

    /// The raw (unsanitized) corrupted datalog never panics the
    /// inter-cell or intra-cell engines: they return Ok or a structured
    /// error.
    #[test]
    fn engines_never_panic_on_unsanitized_noise(
        seed in any::<u64>(),
        corruptions in prop::collection::vec(arb_corruption(), 1..=3),
    ) {
        let fx = fixture();
        let model = NoiseModel { seed, corruptions };
        let noisy = model.apply(&fx.clean, fx.ctx.circuit.outputs().len());
        let Ok(inter) = icd_intercell::diagnose(&fx.ctx.circuit, &fx.ctx.patterns, &noisy)
        else {
            return Ok(()); // structured error: acceptable for raw noise
        };
        for &gate in inter.multiplet.iter().take(2) {
            let Ok(local) = icd_intercell::extract_local_patterns(
                &fx.ctx.circuit,
                &fx.ctx.patterns,
                &noisy,
                gate,
            ) else {
                continue;
            };
            let lfp: Vec<LocalTest> = icd_bench::to_local_tests(&local.lfp);
            let lpp: Vec<LocalTest> = icd_bench::to_local_tests(&local.lpp);
            let Some(cell) = fx.ctx.cells.get(fx.ctx.circuit.gate_type(gate).name())
            else {
                continue;
            };
            // Err (e.g. NoFailingPatterns) is fine; panics are not.
            let _ = icd_core::diagnose(cell.netlist(), &lfp, &lpp);
        }
    }

    /// Fail-memory truncation alone never removes the defect's gate from
    /// the candidate list as long as one failing entry survives.
    #[test]
    fn truncation_keeps_candidates_nonempty(n in 1usize..8) {
        let fx = fixture();
        let noisy = NoiseModel::single(0, Corruption::TruncateAfter(n))
            .apply(&fx.clean, fx.ctx.circuit.outputs().len());
        prop_assert!(!noisy.entries.is_empty());
        let inter =
            icd_intercell::diagnose(&fx.ctx.circuit, &fx.ctx.patterns, &noisy).unwrap();
        prop_assert!(!inter.candidates.is_empty());
        prop_assert!(!inter.multiplet.is_empty());
    }
}
