//! Volume diagnosis determinism and accuracy, end to end:
//!
//! 1. **worker-count independence** — the `VolumeReport` JSON is
//!    byte-identical at 1, 2 and 8 workers (the acceptance bar for
//!    `icdiag volume`);
//! 2. **accuracy** — a 32-device population with a planted systematic
//!    root cause ranks that gate first;
//! 3. **cache transparency** — a warm snapshot run derives no truth
//!    tables and reproduces the cold report byte for byte;
//! 4. **degraded inputs** — skipped and escaped devices reduce coverage
//!    without failing the run;
//! 5. **server parity** — a `Volume` request over loopback returns the
//!    exact JSON a local run produces for the same corpus.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use icd_bench::flow::ExperimentContext;
use icd_faultsim::datalog_text;
use icd_netlist::generator;
use icd_server::{Client, DrainOutcome, ResponseStatus, Server, ServerConfig};
use icd_volume::{
    synthesize_population, PopulationConfig, RootCauseKind, VolumeInput, VolumeOptions, VolumeRun,
};

fn shared_ctx() -> Arc<ExperimentContext> {
    Arc::new(
        ExperimentContext::from_preset(&generator::circuit_a(), 16, 12)
            .expect("scaled circuit A builds"),
    )
}

/// A planted-defect population rendered as named volume inputs.
fn population_inputs(
    ctx: &ExperimentContext,
    devices: usize,
    seed: u64,
) -> (Vec<VolumeInput>, String) {
    let population = synthesize_population(ctx, &PopulationConfig::new(devices, seed))
        .expect("population synthesizes");
    let inputs = population
        .datalogs
        .iter()
        .enumerate()
        .map(|(i, d)| VolumeInput {
            name: format!("device-{i:03}.log"),
            datalog: d.clone(),
        })
        .collect();
    (inputs, population.planted.gate_name)
}

fn run_json(ctx: &Arc<ExperimentContext>, inputs: &[VolumeInput], workers: usize) -> String {
    let run = VolumeRun::new(
        Arc::clone(ctx),
        VolumeOptions {
            workers,
            ..VolumeOptions::default()
        },
    );
    run.execute(inputs, 0, None)
        .expect("volume run succeeds")
        .report
        .to_json()
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let ctx = shared_ctx();
    let (inputs, _) = population_inputs(&ctx, 10, 0x5eed);
    let one = run_json(&ctx, &inputs, 1);
    assert_eq!(one, run_json(&ctx, &inputs, 2), "2 workers diverged");
    assert_eq!(one, run_json(&ctx, &inputs, 8), "8 workers diverged");
}

#[test]
fn planted_root_cause_ranks_first_in_a_32_device_population() {
    let ctx = shared_ctx();
    let (inputs, planted) = population_inputs(&ctx, 32, 0xacc32);
    let run = VolumeRun::new(Arc::clone(&ctx), VolumeOptions::default());
    let outcome = run.execute(&inputs, 0, None).expect("volume run succeeds");
    let report = &outcome.report;
    assert_eq!(report.devices_total, 32);
    assert!(report.devices_diagnosed >= 16, "most devices diagnose");
    let top = report.root_causes.first().expect("some root cause");
    match &top.kind {
        RootCauseKind::Gate { name, .. } => {
            assert_eq!(name, &planted, "planted gate must rank first");
        }
        other => panic!("top root cause is not a gate: {other:?}"),
    }
    assert!(
        top.devices >= 32 / 4,
        "the systematic defect shows on many devices (got {})",
        top.devices
    );
}

#[test]
fn warm_snapshot_run_reproduces_the_cold_report() {
    let ctx = shared_ctx();
    let (inputs, _) = population_inputs(&ctx, 6, 0xcafe);
    let cache_dir: PathBuf =
        std::env::temp_dir().join(format!("icd-volume-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let run_with_cache = || {
        let run = VolumeRun::new(
            Arc::clone(&ctx),
            VolumeOptions {
                workers: 2,
                cache_dir: Some(cache_dir.clone()),
                ..VolumeOptions::default()
            },
        );
        run.execute(&inputs, 0, None).expect("volume run succeeds")
    };
    let cold = run_with_cache();
    assert!(cold.stats.table_misses > 0, "cold run derives tables");
    assert!(cold.stats.snapshot_tables_saved > 0, "snapshot persisted");

    let warm = run_with_cache();
    assert_eq!(
        warm.stats.snapshot_tables_loaded, cold.stats.snapshot_tables_saved,
        "warm run restores everything the cold run persisted"
    );
    assert_eq!(warm.stats.table_misses, 0, "warm run derives nothing");
    assert_eq!(
        cold.report.to_json(),
        warm.report.to_json(),
        "cache temperature leaked into the report"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn degraded_inputs_yield_partial_coverage_not_failure() {
    let ctx = shared_ctx();
    let (mut inputs, _) = population_inputs(&ctx, 5, 0xf00d);
    // An all-pass datalog: a test escape, diagnosed as nothing.
    let escape = icd_faultsim::run_test_multi(&ctx.circuit, &ctx.patterns, &[])
        .expect("good machine simulates");
    assert!(escape.all_pass());
    inputs.push(VolumeInput {
        name: "device-escape.log".to_owned(),
        datalog: escape,
    });

    let run = VolumeRun::new(Arc::clone(&ctx), VolumeOptions::default());
    let outcome = run.execute(&inputs, 3, None).expect("volume run succeeds");
    let report = &outcome.report;
    assert_eq!(report.devices_total, inputs.len() + 3);
    assert_eq!(report.devices_skipped, 3);
    assert_eq!(report.devices_escaped, 1);
    assert!(
        report.coverage_permille < 1000,
        "skips must dent coverage (got {})",
        report.coverage_permille
    );
    assert!(!report.root_causes.is_empty(), "the rest still aggregates");
}

#[test]
fn server_volume_request_matches_local_report_byte_for_byte() {
    let ctx = shared_ctx();
    let (inputs, _) = population_inputs(&ctx, 6, 0xd1a6);
    let local = run_json(&ctx, &inputs, 1);

    let config = ServerConfig {
        workers: 2,
        queue_capacity: 32,
        idle_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&ctx), config).expect("binds loopback");
    let addr: SocketAddr = server.local_addr().expect("local addr");
    let handle = server.handle().expect("handle");
    let join = thread::spawn(move || server.run().expect("run returns"));

    let devices: Vec<(String, String)> = inputs
        .iter()
        .map(|i| (i.name.clone(), datalog_text::write(&i.datalog)))
        .collect();
    let mut client = Client::connect(addr, Duration::from_secs(60)).expect("connects");
    let response = client
        .submit_volume(&devices, 0)
        .expect("volume request answered");
    assert_eq!(response.status, ResponseStatus::Ok);
    assert_eq!(response.summary, local, "server report diverged from local");

    // A malformed device text degrades the answer but still aggregates
    // the parseable rest.
    let mut degraded_devices = devices.clone();
    degraded_devices.push(("device-bad.log".to_owned(), "not a datalog".to_owned()));
    let response = client
        .submit_volume(&degraded_devices, 0)
        .expect("degraded volume request answered");
    assert_eq!(response.status, ResponseStatus::Degraded);
    assert!(
        response.summary.contains("\"skipped\":1"),
        "skip accounting missing from {}",
        response.summary
    );

    drop(client);
    handle.shutdown();
    assert_eq!(join.join().expect("server thread"), DrainOutcome::Clean);
}
