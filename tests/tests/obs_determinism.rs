//! Observability determinism, asserted end to end: the *redacted*
//! exports of an observed batch run — the canonical span tree without
//! timings and the metrics snapshot without timing-class values — are
//! byte-identical at 1 and 8 workers.
//!
//! The unredacted exports legitimately differ (latencies, thread ids,
//! steal counts, cache hit/miss splits); the redaction contract is what
//! makes observed runs comparable across machines and worker counts.
//!
//! The collector installed by `diagnose_batch_observed` is process
//! global, so the tests in this binary serialize on a local lock (other
//! integration test files are separate processes and cannot interfere).

use std::sync::{Arc, Mutex, MutexGuard};

use icd_bench::flow::ExperimentContext;
use icd_engine::{synthesize_batch, BatchConfig, BatchEngine, Collector, EngineConfig};
use icd_faultsim::Datalog;

static OBSERVED: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    match OBSERVED.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Circuit A with a synthesized batch plus one all-pass device, the same
/// fixture shape as `engine_determinism.rs`.
fn batch_fixture() -> (Arc<ExperimentContext>, Vec<Datalog>) {
    let ctx = ExperimentContext::circuit_a().expect("circuit A builds");
    let mut batch = synthesize_batch(&ctx, &BatchConfig::new(5, 0xd1a6)).expect("synthesizes");
    assert!(batch.len() >= 3, "fixture needs several failing devices");
    batch.push(Datalog {
        circuit_name: ctx.circuit.name().to_owned(),
        num_patterns: ctx.patterns.len(),
        entries: vec![],
    });
    (ctx.into_shared(), batch)
}

/// One observed run: (redacted trace JSON, redacted metrics JSON).
fn observed_run(
    workers: usize,
    ctx: &Arc<ExperimentContext>,
    batch: &[Datalog],
) -> (String, String) {
    let engine = BatchEngine::new(EngineConfig::with_workers(workers));
    let collector = Collector::new();
    let report = engine
        .diagnose_batch_observed(ctx, batch, Some(&collector))
        .expect("batch runs");
    assert_eq!(report.outcomes.len(), batch.len());
    (
        collector.trace_json(true),
        collector.snapshot().redacted().to_json(),
    )
}

#[test]
fn redacted_trace_and_metrics_are_byte_identical_across_worker_counts() {
    let _serial = serial();
    let (ctx, batch) = batch_fixture();
    let (trace_one, metrics_one) = observed_run(1, &ctx, &batch);
    let (trace_eight, metrics_eight) = observed_run(8, &ctx, &batch);
    assert_eq!(
        trace_one, trace_eight,
        "redacted span trees diverge between 1 and 8 workers"
    );
    assert_eq!(
        metrics_one, metrics_eight,
        "redacted metrics snapshots diverge between 1 and 8 workers"
    );
    // Sanity: the redacted exports still carry the structure.
    assert!(trace_one.contains("\"batch.suspect\""));
    assert!(trace_one.contains("\"flow.intra_cell\""));
    assert!(metrics_one.contains("\"batch.suspect_jobs\""));
    assert!(metrics_one.contains("\"cache.cpt.lookups\""));
}

#[test]
fn eventsim_counters_are_present_and_scheduling_stable() {
    let _serial = serial();
    let (ctx, batch) = batch_fixture();

    let eventsim_counters = |workers: usize| -> Vec<(String, u64)> {
        let engine = BatchEngine::new(EngineConfig::with_workers(workers));
        let collector = Collector::new();
        let report = engine
            .diagnose_batch_observed(&ctx, batch.as_slice(), Some(&collector))
            .expect("batch runs");
        assert_eq!(report.outcomes.len(), batch.len());
        let snap = collector.snapshot();
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with("eventsim."))
            .map(|(name, v)| (name.to_string(), v.0))
            .collect()
    };

    let one = eventsim_counters(1);
    let eight = eventsim_counters(8);
    // The event-driven simulator runs on the diagnosis path and its
    // counters are per-datalog sums, so they must be byte-identical no
    // matter how the scheduler interleaves the jobs.
    assert!(
        one.iter()
            .any(|(name, v)| name == "eventsim.gates_evaluated" && *v > 0),
        "the event-driven path should evaluate gates during diagnosis: {one:?}"
    );
    assert_eq!(
        one, eight,
        "eventsim counters diverge between 1 and 8 workers"
    );
}

#[test]
fn observed_run_records_job_spans_and_stage_histograms() {
    let _serial = serial();
    let (ctx, batch) = batch_fixture();
    let engine = BatchEngine::new(EngineConfig::with_workers(4));
    let collector = Collector::new();
    let report = engine
        .diagnose_batch_observed(&ctx, &batch, Some(&collector))
        .expect("batch runs");

    // One front span per datalog, one suspect span per suspect job —
    // the span forest mirrors the merge identity space.
    let forest = collector.span_forest();
    let fronts = forest.iter().filter(|n| n.name == "batch.front").count();
    let suspects = forest.iter().filter(|n| n.name == "batch.suspect").count();
    assert_eq!(fronts, batch.len());
    assert_eq!(suspects, report.stats.suspect_jobs);

    let snap = collector.snapshot();
    assert_eq!(snap.counters["batch.datalogs"].0, batch.len() as u64);
    assert_eq!(
        snap.counters["batch.suspect_jobs"].0,
        report.stats.suspect_jobs as u64
    );
    // Every job executed exactly once: fronts + suspects.
    assert_eq!(
        snap.counters["pool.jobs_executed"].0,
        (batch.len() + report.stats.suspect_jobs) as u64
    );
    assert_eq!(snap.gauges["pool.workers"].0, 4);
    // Per-stage latency histograms carry one sample per invocation.
    assert_eq!(snap.histograms["flow.sanitize"].count, batch.len() as u64);
    assert_eq!(
        snap.histograms["flow.analyze_suspect"].count,
        report.stats.suspect_jobs as u64
    );
    // Cache lookup totals in the snapshot agree with the engine's own
    // stats (the hit/miss split may differ between observers, the total
    // cannot).
    let table = report.stats.table_cache;
    assert_eq!(
        snap.counters["cache.table.lookups"].0,
        (table.hits + table.misses) as u64
    );
}

#[test]
fn unobserved_runs_record_nothing() {
    let _serial = serial();
    let (ctx, batch) = batch_fixture();
    let engine = BatchEngine::new(EngineConfig::with_workers(2));
    let bystander = Collector::new();
    // No collector attached: instrumentation stays disabled end to end,
    // and an uninstalled collector sees nothing.
    let report = engine.diagnose_batch(&ctx, &batch).expect("batch runs");
    assert_eq!(report.outcomes.len(), batch.len());
    assert!(bystander.snapshot().counters.is_empty());
    assert!(bystander.span_forest().is_empty());
}
