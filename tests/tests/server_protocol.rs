//! The diagnosis daemon's protocol contract, end to end over loopback:
//!
//! 1. **byte-identity** — a clean `submit` returns the exact summary
//!    line `icdiag run` prints for the same datalog (shared rendering
//!    through `icd_engine::summarize_report`), plus sane streamed
//!    suspects/progress events, on a connection reused across requests;
//! 2. **protocol robustness** — corrupted payloads are frame-bounded
//!    (the connection answers an error and keeps serving), bad magic
//!    and oversized claims desynchronize (error then close), malformed
//!    datalogs are typed `BadPayload` errors, and none of it kills the
//!    daemon;
//! 3. **graceful shutdown** — in-flight requests complete through a
//!    drain, the accept loop refuses late arrivals, and `run` returns
//!    `Clean` within its deadline.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use icd_bench::flow::ExperimentContext;
use icd_engine::{summarize_report, synthesize_batch, BatchConfig, BatchEngine, EngineConfig};
use icd_faultsim::{datalog_text, Datalog};
use icd_netlist::generator;
use icd_server::frame::{self, Frame, FrameType};
use icd_server::{
    Client, ClientError, DrainOutcome, ErrorCode, ResponseStatus, Server, ServerConfig,
};

/// Shared fixture: a scaled context, a synthesized batch, its datalog
/// texts and the reference summaries a 1-worker batch engine produces.
#[allow(clippy::type_complexity)]
fn fixture() -> (
    Arc<ExperimentContext>,
    Vec<Datalog>,
    Vec<String>,
    Vec<String>,
) {
    let ctx = ExperimentContext::from_preset(&generator::circuit_a(), 4, 16)
        .expect("scaled circuit A builds")
        .into_shared();
    let batch = synthesize_batch(&ctx, &BatchConfig::new(4, 0x5eed)).expect("batch synthesizes");
    assert!(!batch.is_empty());
    let texts: Vec<String> = batch.iter().map(datalog_text::write).collect();
    let engine = BatchEngine::new(EngineConfig::with_workers(1));
    let reference = engine
        .diagnose_batch(&ctx, &batch)
        .expect("reference batch runs");
    let summaries: Vec<String> = reference
        .outcomes
        .iter()
        .map(|o| summarize_report(&ctx, o.report.as_ref().expect("reference report")))
        .collect();
    (ctx, batch, texts, summaries)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 32,
        idle_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// Starts a server and returns its address plus the running thread.
fn start(
    ctx: Arc<ExperimentContext>,
    config: ServerConfig,
) -> (
    SocketAddr,
    icd_server::ServerHandle,
    thread::JoinHandle<DrainOutcome>,
) {
    let server = Server::bind("127.0.0.1:0", ctx, config).expect("binds loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle().expect("handle");
    let join = thread::spawn(move || server.run().expect("run returns"));
    (addr, handle, join)
}

#[test]
fn clean_submissions_match_icdiag_run_byte_for_byte() {
    let (ctx, _batch, texts, summaries) = fixture();
    let (addr, handle, join) = start(Arc::clone(&ctx), quick_config());

    let mut client = Client::connect(addr, Duration::from_secs(30)).expect("connects");
    client.ping().expect("pong");
    // One connection, every datalog in sequence: the state machine
    // returns to Idle after each response.
    for (i, text) in texts.iter().enumerate() {
        let response = client.submit(text, 0).expect("submission answered");
        assert_eq!(
            response.summary, summaries[i],
            "datalog {i} summary diverged"
        );
        if response.status == ResponseStatus::Ok {
            assert!(!response.summary.contains("[degraded]"));
        }
        // Streamed events are consistent with the final report: one
        // progress entry per suspect, slots unique.
        let mut slots: Vec<usize> = response.progress.iter().map(|p| p.0).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(
            slots.len(),
            response.progress.len(),
            "duplicate progress slots"
        );
        assert_eq!(response.progress.len(), response.suspects.len());
    }

    handle.shutdown();
    assert_eq!(join.join().expect("server thread"), DrainOutcome::Clean);
}

#[test]
fn corrupt_payload_is_answered_and_the_connection_keeps_serving() {
    let (ctx, _batch, texts, summaries) = fixture();
    let (addr, handle, join) = start(Arc::clone(&ctx), quick_config());

    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // A request whose payload byte is flipped after encoding: the crc
    // check must catch it, answer, and stay in sync.
    let good = Frame {
        frame_type: FrameType::Request,
        request_id: 7,
        trace_id: None,
        payload: frame::request_payload(0, &texts[0]),
    };
    let mut bytes = frame::encode(&good);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x55;
    stream.write_all(&bytes).expect("writes corrupt frame");
    let answer = frame::read_frame(&mut stream, frame::DEFAULT_MAX_PAYLOAD)
        .expect("error frame decodes")
        .expect("not EOF");
    assert_eq!(answer.frame_type, FrameType::Error);
    assert_eq!(answer.payload.first(), Some(&(ErrorCode::Protocol as u8)));

    // Same socket, valid frame: the daemon still serves it.
    stream
        .write_all(&frame::encode(&good))
        .expect("writes valid frame");
    let report = loop {
        let f = frame::read_frame(&mut stream, frame::DEFAULT_MAX_PAYLOAD)
            .expect("frame decodes")
            .expect("not EOF");
        if f.frame_type == FrameType::Report {
            break f;
        }
        assert!(
            matches!(f.frame_type, FrameType::Suspects | FrameType::Progress),
            "unexpected {:?}",
            f.frame_type
        );
    };
    assert_eq!(report.request_id, 7);
    let summary = String::from_utf8_lossy(&report.payload[1..]).into_owned();
    assert_eq!(summary, summaries[0]);

    handle.shutdown();
    assert_eq!(join.join().expect("server thread"), DrainOutcome::Clean);
}

#[test]
fn bad_magic_and_oversized_claims_close_after_a_typed_error() {
    let (ctx, _batch, texts, _summaries) = fixture();
    let (addr, handle, join) = start(Arc::clone(&ctx), quick_config());

    // Bad magic: error frame, then EOF (desynchronized → closed).
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut bytes = frame::encode(&Frame::bare(FrameType::Ping, 1));
    bytes[0] = b'Z';
    stream.write_all(&bytes).expect("writes");
    let answer = frame::read_frame(&mut stream, frame::DEFAULT_MAX_PAYLOAD)
        .expect("decodes")
        .expect("not EOF");
    assert_eq!(answer.frame_type, FrameType::Error);
    assert!(
        frame::read_frame(&mut stream, frame::DEFAULT_MAX_PAYLOAD)
            .expect("clean close")
            .is_none(),
        "connection must close after a desynchronizing error"
    );

    // Oversized length claim: rejected before the payload is read.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut bytes = frame::encode(&Frame {
        frame_type: FrameType::Request,
        request_id: 2,
        trace_id: None,
        payload: frame::request_payload(0, &texts[0]),
    });
    // Rewrite the length field to an absurd claim.
    bytes[16..20].copy_from_slice(&(u32::MAX).to_le_bytes());
    stream.write_all(&bytes).expect("writes");
    let answer = frame::read_frame(&mut stream, frame::DEFAULT_MAX_PAYLOAD)
        .expect("decodes")
        .expect("not EOF");
    assert_eq!(answer.frame_type, FrameType::Error);
    // The server closes with our bogus payload bytes still unread, so
    // the close may surface as a reset instead of a clean FIN — either
    // way the connection is gone.
    match frame::read_frame(&mut stream, frame::DEFAULT_MAX_PAYLOAD) {
        Ok(None) | Err(_) => {}
        Ok(Some(f)) => panic!("connection must close after an oversized claim, got {f:?}"),
    }

    // The daemon survived both.
    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connects");
    client.ping().expect("daemon alive");

    handle.shutdown();
    assert_eq!(join.join().expect("server thread"), DrainOutcome::Clean);
}

#[test]
fn unparseable_datalogs_are_typed_bad_payload_errors() {
    let (ctx, _batch, texts, summaries) = fixture();
    let (addr, handle, join) = start(Arc::clone(&ctx), quick_config());

    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connects");
    let err = client
        .submit("this is not a datalog\n", 0)
        .expect_err("must fail");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, Some(ErrorCode::BadPayload)),
        other => panic!("expected a server error, got {other:?}"),
    }
    // Typed, frame-bounded: the same connection still serves.
    let response = client
        .submit(&texts[0], 0)
        .expect("clean request still works");
    assert_eq!(response.summary, summaries[0]);

    handle.shutdown();
    assert_eq!(join.join().expect("server thread"), DrainOutcome::Clean);
}

#[test]
fn shutdown_drains_in_flight_requests_within_the_deadline() {
    let (ctx, _batch, texts, summaries) = fixture();
    let (addr, handle, join) = start(Arc::clone(&ctx), quick_config());

    // Launch in-flight work, then immediately drain.
    let texts = Arc::new(texts);
    let summaries = Arc::new(summaries);
    let clients: Vec<_> = (0..3)
        .map(|i| {
            let texts = Arc::clone(&texts);
            let summaries = Arc::clone(&summaries);
            thread::spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(30)).expect("connects");
                let idx = i % texts.len();
                let response = client.submit(&texts[idx], 0).expect("in-flight completes");
                assert_eq!(
                    response.summary, summaries[idx],
                    "drained request {i} diverged"
                );
            })
        })
        .collect();
    // Give the submissions time to be read off their sockets.
    thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    handle.shutdown();
    for c in clients {
        c.join().expect("no in-flight clean request may be lost");
    }
    assert_eq!(join.join().expect("server thread"), DrainOutcome::Clean);
    assert!(
        started.elapsed() < Duration::from_secs(5) + Duration::from_secs(3),
        "drain overran its deadline: {:?}",
        started.elapsed()
    );

    // A shutdown requested twice is harmless.
    handle.shutdown();
}

#[test]
fn client_shutdown_frame_drains_the_daemon() {
    let (ctx, _batch, texts, summaries) = fixture();
    let (addr, _handle, join) = start(Arc::clone(&ctx), quick_config());

    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("connects");
    let response = client.submit(&texts[0], 0).expect("request served");
    assert_eq!(response.summary, summaries[0]);
    client.shutdown_server().expect("shutdown acknowledged");
    assert_eq!(join.join().expect("server thread"), DrainOutcome::Clean);
}
