//! Chaos soak: the daemon survives a seeded storm of protocol abuse and
//! injected worker panics while clean requests stay byte-identical.
//!
//! The storm mixes, across concurrent client threads, well over 100
//! requests of five kinds:
//!
//! * **clean** submissions — must come back `Ok` with the exact summary
//!   a 1-worker batch engine produces for the same datalog (the server
//!   retries injected panics under its backoff budget until the report
//!   is pristine);
//! * **corrupted** frames (random byte flips) — any typed answer or a
//!   closed connection is acceptable, a dead daemon is not;
//! * **truncate-and-drop** connections (close mid-frame);
//! * **slow-loris** writes (valid request, trickled bytes) — still
//!   answered byte-identically;
//! * **stalled** sockets (half a header, then silence) — reaped by the
//!   idle budget.
//!
//! Afterwards a graceful drain must complete `Clean` within its
//! deadline with zero lost in-flight clean jobs, and the daemon's own
//! counters must show the chaos actually exercised the retry and
//! protocol-error paths.
//!
//! The storm doubles as the live-telemetry coherence check: a `Stats`
//! frame answered *mid-storm* must parse with monotone latency
//! percentiles; once the storm is quiescent the outcome counters must
//! partition exactly (`total == clean + degraded + failed + rejected`);
//! and the total must carry across the drain unchanged except for the
//! tracked in-flight jobs.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use icd_bench::flow::ExperimentContext;
use icd_engine::{
    summarize_report, synthesize_batch, BatchConfig, BatchEngine, Collector, EngineConfig,
};
use icd_faultsim::{datalog_text, NoiseRng};
use icd_netlist::generator;
use icd_server::frame::{self, FrameType};
use icd_server::{
    BackoffConfig, ChaosClient, ChaosPanics, Client, ClientFault, DrainOutcome, ResponseStatus,
    Server, ServerConfig,
};

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 30;

struct Fixture {
    ctx: Arc<ExperimentContext>,
    texts: Vec<String>,
    summaries: Vec<String>,
    degraded: Vec<bool>,
}

fn fixture() -> Fixture {
    let ctx = ExperimentContext::from_preset(&generator::circuit_a(), 4, 16)
        .expect("scaled circuit A builds")
        .into_shared();
    let batch = synthesize_batch(&ctx, &BatchConfig::new(5, 0xc4a05)).expect("batch synthesizes");
    assert!(batch.len() >= 2, "need a few distinct devices");
    let texts: Vec<String> = batch.iter().map(datalog_text::write).collect();
    let engine = BatchEngine::new(EngineConfig::with_workers(1));
    let reference = engine
        .diagnose_batch(&ctx, &batch)
        .expect("reference batch runs");
    let mut summaries = Vec::new();
    let mut degraded = Vec::new();
    for outcome in &reference.outcomes {
        let report = outcome.report.as_ref().expect("reference report");
        summaries.push(summarize_report(&ctx, report));
        degraded.push(report.is_degraded());
    }
    Fixture {
        ctx,
        texts,
        summaries,
        degraded,
    }
}

fn soak_config() -> ServerConfig {
    ServerConfig {
        workers: 3,
        queue_capacity: 16,
        submit_wait: Duration::from_millis(200),
        // A deep budget with short delays: at the injected panic rate,
        // the chance a clean request exhausts 12 retries is ~1e-6.
        backoff: BackoffConfig {
            max_retries: 12,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
        },
        default_deadline: Duration::from_secs(20),
        idle_timeout: Duration::from_millis(1500),
        drain_deadline: Duration::from_secs(5),
        chaos_panics: Some(ChaosPanics {
            rate: 0.08,
            seed: 0xc4a0_5eed,
        }),
        ..ServerConfig::default()
    }
}

/// Fetches and parses one live `Stats` snapshot over the wire.
fn stats_snapshot(addr: SocketAddr) -> icd_obs::json::Value {
    let mut client = Client::connect(addr, Duration::from_secs(10)).expect("stats connect");
    let json = client.stats().expect("stats answered");
    icd_obs::json::parse(&json).expect("stats snapshot is valid JSON")
}

/// The `requests` counters of a parsed snapshot, by byte-stable name.
fn request_counter(snapshot: &icd_obs::json::Value, name: &str) -> u64 {
    snapshot
        .get("requests")
        .and_then(|r| r.get(name))
        .and_then(icd_obs::json::Value::as_u64)
        .unwrap_or_else(|| panic!("snapshot lacks requests.{name}"))
}

/// Reads response frames off a raw stream until a terminal frame, EOF,
/// error or timeout; returns the Report summary if one arrived. Used
/// for the faults whose outcome is intentionally unspecified — the only
/// hard requirement is that the daemon answers *something* or closes.
fn drain_response(stream: &mut std::net::TcpStream) -> Option<(ResponseStatus, String)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    loop {
        match frame::read_frame(stream, frame::DEFAULT_MAX_PAYLOAD) {
            Ok(Some(f)) if f.frame_type == FrameType::Report => {
                let status = ResponseStatus::from_u8(*f.payload.first()?)?;
                let summary = String::from_utf8_lossy(&f.payload[1..]).into_owned();
                return Some((status, summary));
            }
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => return None,
        }
    }
}

#[test]
fn daemon_survives_a_chaos_storm_and_drains_clean() {
    let fx = fixture();
    let collector = Collector::new();
    let _guard = collector.install();

    let server =
        Server::bind("127.0.0.1:0", Arc::clone(&fx.ctx), soak_config()).expect("binds loopback");
    let addr: SocketAddr = server.local_addr().expect("local addr");
    let handle = server.handle().expect("handle");
    let server_thread = thread::spawn(move || server.run().expect("run returns"));

    // --- Phase 1: the storm. -------------------------------------------
    let texts = Arc::new(fx.texts.clone());
    let summaries = Arc::new(fx.summaries.clone());
    let degraded = Arc::new(fx.degraded.clone());
    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let texts = Arc::clone(&texts);
            let summaries = Arc::clone(&summaries);
            let degraded = Arc::clone(&degraded);
            thread::spawn(move || {
                let mut rng = NoiseRng::new(0x50a1_u64.wrapping_add(t as u64 * 0x9e37));
                let mut chaos =
                    ChaosClient::new(addr, 0xabad_1dea ^ t as u64).expect("chaos client");
                // Stalled sockets must stay open until the server reaps
                // them, so park them here for the thread's lifetime.
                let mut parked = Vec::new();
                let mut clean_served = 0usize;
                for i in 0..REQUESTS_PER_THREAD {
                    let idx = rng.below(texts.len());
                    let roll = rng.below(100);
                    if roll < 60 {
                        // Clean request: the hard byte-identity contract.
                        let mut client =
                            Client::connect(addr, Duration::from_secs(30)).expect("clean connect");
                        let response = client
                            .submit(&texts[idx], 0)
                            .expect("clean request answered");
                        assert_eq!(
                            response.summary, summaries[idx],
                            "thread {t} request {i}: summary diverged"
                        );
                        let expected_status = if degraded[idx] {
                            ResponseStatus::Degraded
                        } else {
                            ResponseStatus::Ok
                        };
                        assert_eq!(response.status, expected_status);
                        clean_served += 1;
                    } else if roll < 75 {
                        let stream = chaos
                            .send_faulty_request(&texts[idx], ClientFault::CorruptBytes)
                            .expect("corrupt connect");
                        if let Some(mut s) = stream {
                            let _ = drain_response(&mut s);
                        }
                    } else if roll < 85 {
                        let _ = chaos
                            .send_faulty_request(&texts[idx], ClientFault::TruncateAndDrop)
                            .expect("truncate connect");
                    } else if roll < 95 {
                        // Slow but valid: still the byte-identity contract.
                        let stream = chaos
                            .send_faulty_request(
                                &texts[idx],
                                ClientFault::SlowLoris { delay_ms: 2 },
                            )
                            .expect("slow-loris connect");
                        let mut stream = stream.expect("slow-loris write completes");
                        let (status, summary) =
                            drain_response(&mut stream).expect("slow-loris answered");
                        assert_eq!(
                            summary, summaries[idx],
                            "thread {t} request {i}: slow-loris summary diverged"
                        );
                        let expected_status = if degraded[idx] {
                            ResponseStatus::Degraded
                        } else {
                            ResponseStatus::Ok
                        };
                        assert_eq!(status, expected_status);
                        clean_served += 1;
                    } else {
                        let stream = chaos
                            .send_faulty_request(&texts[idx], ClientFault::Stall)
                            .expect("stall connect");
                        if let Some(s) = stream {
                            parked.push(s);
                        }
                    }
                }
                clean_served
            })
        })
        .collect();
    // Mid-storm telemetry: the daemon must answer a Stats frame while
    // the storm is in full swing, with parseable JSON and monotone
    // latency percentiles. (Totals may momentarily run ahead of their
    // outcome partition here; exact equality is asserted once the storm
    // is quiescent.)
    thread::sleep(Duration::from_millis(50));
    let mid = stats_snapshot(addr);
    for kind in ["request", "volume", "ping"] {
        let window = mid
            .get("latency")
            .and_then(|l| l.get(kind))
            .and_then(|k| k.get("window"))
            .unwrap_or_else(|| panic!("mid-storm snapshot lacks latency.{kind}.window"));
        let pct = |name: &str| window.get(name).and_then(icd_obs::json::Value::as_u64);
        if let (Some(p50), Some(p95), Some(p99)) = (pct("p50_us"), pct("p95_us"), pct("p99_us")) {
            assert!(
                p50 <= p95 && p95 <= p99,
                "mid-storm {kind} percentiles must be monotone: {p50} {p95} {p99}"
            );
        }
    }

    let clean_served: usize = workers
        .into_iter()
        .map(|w| w.join().expect("storm thread"))
        .sum();
    assert!(
        clean_served >= CLIENT_THREADS * REQUESTS_PER_THREAD / 2,
        "the storm must include a meaningful clean load, served {clean_served}"
    );

    // The daemon is still healthy after the storm.
    let mut probe = Client::connect(addr, Duration::from_secs(10)).expect("post-storm connect");
    probe.ping().expect("post-storm pong");
    drop(probe);

    // Quiescent telemetry: with the storm joined and nothing in flight,
    // the outcome counters must partition the total exactly, and the
    // window histograms must have actually sampled the storm.
    let pre_drain = stats_snapshot(addr);
    let pre_drain_total = request_counter(&pre_drain, "total");
    assert_eq!(
        pre_drain_total,
        request_counter(&pre_drain, "clean")
            + request_counter(&pre_drain, "degraded")
            + request_counter(&pre_drain, "failed")
            + request_counter(&pre_drain, "rejected"),
        "outcome counters must partition requests.total"
    );
    assert!(
        pre_drain_total >= clean_served as u64,
        "requests.total {pre_drain_total} must cover the {clean_served} clean submissions"
    );
    let request_window_count = pre_drain
        .get("latency")
        .and_then(|l| l.get("request"))
        .and_then(|r| r.get("window"))
        .and_then(|w| w.get("count"))
        .and_then(icd_obs::json::Value::as_u64)
        .expect("request window count");
    assert!(
        request_window_count > 0,
        "the 60s latency window must have sampled the storm"
    );

    // --- Phase 2: drain with in-flight clean jobs. ---------------------
    let in_flight: Vec<_> = (0..3)
        .map(|i| {
            let texts = Arc::clone(&texts);
            let summaries = Arc::clone(&summaries);
            thread::spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(30)).expect("in-flight connect");
                let idx = i % texts.len();
                let response = client.submit(&texts[idx], 0).expect("in-flight answered");
                assert_eq!(response.summary, summaries[idx], "in-flight {i} diverged");
            })
        })
        .collect();
    // Let the submissions reach the server before the drain begins.
    thread::sleep(Duration::from_millis(100));
    let drain_started = Instant::now();
    handle.shutdown();
    for c in in_flight {
        c.join().expect("zero lost in-flight clean jobs");
    }
    let outcome = server_thread.join().expect("server thread");
    assert_eq!(
        outcome,
        DrainOutcome::Clean,
        "drain must not need force-cancellation"
    );
    assert!(
        drain_started.elapsed() < Duration::from_secs(10),
        "drain overran: {:?}",
        drain_started.elapsed()
    );

    // --- The chaos actually happened. ----------------------------------
    let snapshot = collector.snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    assert!(counter("server.requests_received") >= clean_served as u64 + 3);
    assert!(
        counter("server.retries_panic") > 0,
        "panic injection at 8% over {clean_served}+ requests must trigger retries"
    );
    assert!(
        counter("server.frames_bad") > 0,
        "corrupted frames must register as protocol errors"
    );
    assert_eq!(counter("server.drain_clean"), 1);
    assert_eq!(counter("server.drain_forced"), 0);

    // Telemetry totals carry across the drain: the post-drain process
    // counter equals the quiescent wire snapshot plus exactly the three
    // tracked in-flight jobs — nothing lost, nothing double-counted.
    assert_eq!(
        counter("server.requests_total"),
        pre_drain_total + 3,
        "drain must account for exactly the three in-flight jobs"
    );
}
