//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library builds
//! the experiment fixtures they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icd_cells::CellLibrary;
use icd_core::LocalTest;
use icd_faultsim::FaultyBehavior;
use icd_logic::Lv;
use icd_switch::CellNetlist;

/// Exhaustively tests a faulty cell behaviour at the cell boundary and
/// splits the two-pattern space into local failing / passing patterns,
/// applying the tester's charge-retention semantics.
///
/// # Panics
///
/// Panics if the cell cannot be evaluated (impossible for library cells).
pub fn exhaustive_local_patterns(
    cell: &CellNetlist,
    behavior: &FaultyBehavior,
) -> (Vec<LocalTest>, Vec<LocalTest>) {
    let good = cell.truth_table().expect("library cells evaluate");
    let n = cell.num_inputs();
    let mut lfp = Vec::new();
    let mut lpp = Vec::new();
    for prev in 0..(1usize << n) {
        for cur in 0..(1usize << n) {
            let pb: Vec<bool> = (0..n).map(|k| (prev >> k) & 1 == 1).collect();
            let cb: Vec<bool> = (0..n).map(|k| (cur >> k) & 1 == 1).collect();
            let prev_good = good.eval_bits(&pb);
            let raw = behavior.eval(&pb, &cb, prev_good);
            let effective = if raw == Lv::U { prev_good } else { raw };
            if effective.conflicts_with(good.eval_bits(&cb)) {
                lfp.push(LocalTest::two_pattern(pb, cb));
            } else {
                lpp.push(LocalTest::two_pattern(pb, cb));
            }
        }
    }
    (lfp, lpp)
}

/// The standard cell library, built once per call (cheap).
pub fn cells() -> CellLibrary {
    CellLibrary::standard()
}
