//! Property-based tests for netlist construction, levelization and the
//! text format.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_logic::TruthTable;
use icd_netlist::{format, generator, Circuit, GateType, Library};
use proptest::prelude::*;

fn library() -> Library {
    let mut lib = Library::new();
    lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
        .unwrap();
    lib.insert(
        GateType::new(
            "NAND2",
            ["A", "B"],
            TruthTable::from_fn(2, |b| !(b[0] & b[1])),
        )
        .unwrap(),
    )
    .unwrap();
    lib.insert(
        GateType::new(
            "AOI21",
            ["A", "B", "C"],
            TruthTable::from_fn(3, |b| !((b[0] & b[1]) | b[2])),
        )
        .unwrap(),
    )
    .unwrap();
    lib
}

fn random_circuit(lib: &Library, seed: u64, gates: usize) -> Circuit {
    let cfg = generator::GeneratorConfig {
        name: format!("p{seed}"),
        gates,
        primary_inputs: 5,
        primary_outputs: 5,
        flip_flops: 3,
        scan_chains: 1,
        seed,
    };
    generator::generate(&cfg, lib).expect("generates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The topological order is a valid schedule: every gate input is a
    /// primary input or driven by an earlier gate.
    #[test]
    fn topo_order_is_valid(seed in any::<u64>(), gates in 1usize..120) {
        let lib = library();
        let c = random_circuit(&lib, seed, gates);
        let mut scheduled = vec![false; c.num_gates()];
        for &g in c.topo_order() {
            for &input in c.gate_inputs(g) {
                match c.driver(input) {
                    None => prop_assert!(c.is_input(input)),
                    Some(d) => prop_assert!(scheduled[d.index()], "unscheduled driver"),
                }
            }
            scheduled[g.index()] = true;
        }
        prop_assert!(scheduled.iter().all(|&s| s));
    }

    /// Levels are consistent: a gate's level is exactly one more than the
    /// maximum level of its driven inputs.
    #[test]
    fn levels_are_consistent(seed in any::<u64>(), gates in 1usize..120) {
        let lib = library();
        let c = random_circuit(&lib, seed, gates);
        for g in c.gates() {
            let max_in = c
                .gate_inputs(g)
                .iter()
                .filter_map(|&n| c.driver(n))
                .map(|d| c.gate_level(d) + 1)
                .max()
                .unwrap_or(0);
            prop_assert_eq!(c.gate_level(g), max_in);
            prop_assert!(c.gate_level(g) <= c.max_level());
        }
    }

    /// Fanout lists are the exact inverse of the gate-input relation.
    #[test]
    fn fanout_inverts_inputs(seed in any::<u64>(), gates in 1usize..120) {
        let lib = library();
        let c = random_circuit(&lib, seed, gates);
        for g in c.gates() {
            for &input in c.gate_inputs(g) {
                prop_assert!(c.fanout(input).contains(&g));
            }
        }
        for net in c.nets() {
            for &g in c.fanout(net) {
                prop_assert!(c.gate_inputs(g).contains(&net));
            }
        }
    }

    /// The text format round-trips: writing and re-parsing preserves the
    /// structure (gates, types, connections up to net identity).
    #[test]
    fn format_round_trips(seed in any::<u64>(), gates in 1usize..60) {
        let lib = library();
        let c = random_circuit(&lib, seed, gates);
        let text = format::write(&c);
        let c2 = format::parse(&text, &lib).expect("parses");
        prop_assert_eq!(c2.num_gates(), c.num_gates());
        prop_assert_eq!(c2.inputs().len(), c.inputs().len());
        prop_assert_eq!(c2.outputs().len(), c.outputs().len());
        prop_assert_eq!(c2.scan_info(), c.scan_info());
        prop_assert_eq!(c2.max_level(), c.max_level());
        // Same multiset of gate types.
        let mut t1: Vec<&str> = c.gates().map(|g| c.gate_type(g).name()).collect();
        let mut t2: Vec<&str> = c2.gates().map(|g| c2.gate_type(g).name()).collect();
        t1.sort_unstable();
        t2.sort_unstable();
        prop_assert_eq!(t1, t2);
        // And a second round-trip is textually identical (canonical form).
        let text2 = format::write(&c2);
        let c3 = format::parse(&text2, &lib).expect("parses");
        prop_assert_eq!(format::write(&c3), text2);
    }

    /// Generation is a pure function of its configuration.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), gates in 1usize..80) {
        let lib = library();
        let a = random_circuit(&lib, seed, gates);
        let b = random_circuit(&lib, seed, gates);
        prop_assert_eq!(a.num_nets(), b.num_nets());
        for g in a.gates() {
            prop_assert_eq!(a.gate_inputs(g), b.gate_inputs(g));
            prop_assert_eq!(a.gate_type_id(g), b.gate_type_id(g));
        }
    }
}
