//! A small structural text format for gate-level circuits.
//!
//! The format is line-oriented:
//!
//! ```text
//! circuit demo
//! scan 30 1
//! input a b c
//! output y
//! gate U1 NAND2 a b -> n1
//! gate U2 INV n1 -> y
//! ```
//!
//! * `circuit <name>` — must be the first non-comment line.
//! * `scan <flip_flops> <scan_chains>` — optional aggregate metadata.
//! * `chain <ppi>:<ppo>...` — optional stitched scan chain (one line per
//!   chain, cells in shift order); supersedes the `scan` counts.
//! * `input <net>...` / `output <net>...` — interface nets.
//! * `gate <instance> <type> <input net>... -> <output net>`.
//! * `#` starts a comment; blank lines are ignored.
//!
//! Nets may be referenced before the line that drives them.

use std::fmt::Write as _;

use crate::{Circuit, CircuitBuilder, Library, NetlistError, ScanCell, ScanInfo};

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines and the usual
/// construction errors ([`NetlistError::UnknownGateType`],
/// [`NetlistError::UndrivenNet`], …) for semantic problems.
pub fn parse(text: &str, library: &Library) -> Result<Circuit, NetlistError> {
    let mut builder: Option<CircuitBuilder<'_>> = None;
    let mut scan = ScanInfo::default();
    let mut chains: Vec<Vec<(String, String)>> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line has a first word");
        let err = |message: String| NetlistError::Parse {
            line: lineno + 1,
            message,
        };
        match keyword {
            "circuit" => {
                let name = words
                    .next()
                    .ok_or_else(|| err("missing circuit name".into()))?;
                if builder.is_some() {
                    return Err(err("duplicate circuit line".into()));
                }
                builder = Some(CircuitBuilder::new(name, library));
            }
            "scan" => {
                let ff = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("scan needs a flip-flop count".into()))?;
                let chains_count = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| err("scan needs a chain count".into()))?;
                scan = ScanInfo {
                    flip_flops: ff,
                    scan_chains: chains_count,
                };
            }
            "chain" => {
                if builder.is_none() {
                    return Err(err("chain before circuit line".into()));
                }
                let mut cells = Vec::new();
                for word in words {
                    let (ppi, ppo) = word
                        .split_once(':')
                        .ok_or_else(|| err(format!("chain cell {word:?} is not ppi:ppo")))?;
                    cells.push((ppi.to_owned(), ppo.to_owned()));
                }
                chains.push(cells);
            }
            "input" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("input before circuit line".into()))?;
                for name in words {
                    b.add_input(name);
                }
            }
            "output" => {
                if builder.is_none() {
                    return Err(err("output before circuit line".into()));
                }
                outputs.extend(words.map(str::to_owned));
            }
            "gate" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("gate before circuit line".into()))?;
                let instance = words
                    .next()
                    .ok_or_else(|| err("gate needs an instance name".into()))?;
                let type_name = words
                    .next()
                    .ok_or_else(|| err("gate needs a type name".into()))?;
                let rest: Vec<&str> = words.collect();
                let arrow = rest
                    .iter()
                    .position(|w| *w == "->")
                    .ok_or_else(|| err("gate line is missing '->'".into()))?;
                if arrow + 2 != rest.len() {
                    return Err(err("exactly one net must follow '->'".into()));
                }
                let input_ids: Vec<_> = rest[..arrow].iter().map(|n| b.intern_net(n)).collect();
                let output_id = b.intern_net(rest[arrow + 1]);
                b.add_gate_driving(type_name, &input_ids, output_id, Some(instance))?;
            }
            other => {
                return Err(err(format!("unknown keyword {other:?}")));
            }
        }
    }

    let mut builder = builder.ok_or(NetlistError::Parse {
        line: 0,
        message: "no circuit line found".into(),
    })?;
    builder.set_scan_info(scan);
    if !chains.is_empty() {
        let resolved: Vec<Vec<ScanCell>> = chains
            .iter()
            .map(|cells| {
                cells
                    .iter()
                    .map(|(ppi, ppo)| ScanCell {
                        ppi: builder.intern_net(ppi),
                        ppo: builder.intern_net(ppo),
                    })
                    .collect()
            })
            .collect();
        builder.set_scan_chains(resolved);
    }
    for name in outputs {
        let net = builder.intern_net(&name);
        builder.mark_output(net, &name);
    }
    builder.finish()
}

/// Serializes a circuit to the text format.
///
/// The output round-trips through [`parse`] (given the same library).
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "circuit {}", circuit.name());
    let scan = circuit.scan_info();
    if scan.flip_flops > 0 || scan.scan_chains > 0 {
        let _ = writeln!(out, "scan {} {}", scan.flip_flops, scan.scan_chains);
    }
    for chain in circuit.scan_chains() {
        let _ = write!(out, "chain");
        for cell in chain {
            let _ = write!(
                out,
                " {}:{}",
                circuit.net_name(cell.ppi),
                circuit.net_name(cell.ppo)
            );
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "input");
    for &net in circuit.inputs() {
        let _ = write!(out, " {}", circuit.net_name(net));
    }
    let _ = writeln!(out);
    let _ = write!(out, "output");
    for &net in circuit.outputs() {
        let _ = write!(out, " {}", circuit.net_name(net));
    }
    let _ = writeln!(out);
    for gate in circuit.topo_order() {
        let _ = write!(
            out,
            "gate {} {}",
            circuit.gate_name(*gate),
            circuit.gate_type(*gate).name()
        );
        for &net in circuit.gate_inputs(*gate) {
            let _ = write!(out, " {}", circuit.net_name(net));
        }
        let _ = writeln!(out, " -> {}", circuit.net_name(circuit.gate_output(*gate)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateType;
    use icd_logic::TruthTable;

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    const DEMO: &str = "\
circuit demo
scan 3 1
input a b
output y  # a comment
gate U1 NAND2 a b -> n1
gate U2 INV n1 -> y
";

    #[test]
    fn parse_demo() {
        let c = parse(DEMO, &lib()).unwrap();
        assert_eq!(c.name(), "demo");
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.scan_info().flip_flops, 3);
        assert!(c.find_gate("U1").is_some());
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn round_trip() {
        let c = parse(DEMO, &lib()).unwrap();
        let text = write(&c);
        let c2 = parse(&text, &lib()).unwrap();
        assert_eq!(c2.num_gates(), c.num_gates());
        assert_eq!(c2.inputs().len(), c.inputs().len());
        assert_eq!(c2.outputs().len(), c.outputs().len());
        assert_eq!(c2.scan_info(), c.scan_info());
        // The structural fingerprint survives the text round trip — the
        // volume cache snapshots keyed by it depend on this.
        assert_eq!(c2.content_hash(), c.content_hash());
    }

    #[test]
    fn scan_chains_round_trip() {
        let text = "\
circuit sc
input a si0 si1
output y so0 so1
chain si0:so0
chain si1:so1
gate U1 NAND2 a si0 -> so0
gate U2 INV si1 -> so1
gate U3 INV a -> y
";
        let c = parse(text, &lib()).unwrap();
        assert_eq!(c.scan_chains().len(), 2);
        assert_eq!(c.scan_info().flip_flops, 2);
        let text2 = write(&c);
        let c2 = parse(&text2, &lib()).unwrap();
        assert_eq!(c2.scan_chains().len(), 2);
        for (a, b) in c.scan_chains().iter().zip(c2.scan_chains()) {
            assert_eq!(a.len(), b.len());
        }
        // Tester coordinates resolve through the chains.
        let so0 = c
            .outputs()
            .iter()
            .position(|&n| c.net_name(n) == "so0")
            .unwrap();
        assert!(matches!(
            c.tester_coordinate(so0),
            crate::TesterCoordinate::ScanCell {
                chain: 0,
                position: 0
            }
        ));
    }

    #[test]
    fn malformed_chain_cell_is_parse_error() {
        let text = "circuit x\ninput a\nchain a-b\n";
        assert!(matches!(
            parse(text, &lib()),
            Err(NetlistError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn forward_references_allowed() {
        let text = "\
circuit fwd
input a
output y
gate U2 INV n1 -> y
gate U1 INV a -> n1
";
        let c = parse(text, &lib()).unwrap();
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn missing_arrow_is_parse_error() {
        let text = "circuit x\ninput a\ngate U1 INV a y\n";
        assert!(matches!(
            parse(text, &lib()),
            Err(NetlistError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn unknown_keyword_reported_with_line() {
        let text = "circuit x\nfrobnicate\n";
        assert!(matches!(
            parse(text, &lib()),
            Err(NetlistError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn no_circuit_line_is_error() {
        assert!(parse("input a\n", &lib()).is_err());
    }
}
