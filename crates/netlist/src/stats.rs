//! Circuit statistics: the numbers a designer reads off a synthesis
//! report — cell-type histogram, logic depth, fanout distribution — used
//! to enrich the Table-1/6 circuit-characteristics output and to sanity
//! check the synthetic circuit generator against netlist-like shape.

use std::collections::BTreeMap;
use std::fmt;

use crate::Circuit;

/// Aggregate statistics of one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Gate instances.
    pub gates: usize,
    /// Nets (inputs included).
    pub nets: usize,
    /// Primary + pseudo-primary inputs.
    pub inputs: usize,
    /// Primary + pseudo-primary outputs.
    pub outputs: usize,
    /// Maximum logic level.
    pub depth: u32,
    /// Instances per cell type, by name.
    pub cell_histogram: BTreeMap<String, usize>,
    /// Maximum fanout of any net.
    pub max_fanout: usize,
    /// Mean fanout over driven nets.
    pub mean_fanout: f64,
    /// Scan flip-flops.
    pub flip_flops: usize,
    /// Scan chains.
    pub scan_chains: usize,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut cell_histogram: BTreeMap<String, usize> = BTreeMap::new();
        for gate in circuit.gates() {
            *cell_histogram
                .entry(circuit.gate_type(gate).name().to_owned())
                .or_default() += 1;
        }
        let mut max_fanout = 0usize;
        let mut total_fanout = 0usize;
        for net in circuit.nets() {
            let f = circuit.fanout(net).len();
            max_fanout = max_fanout.max(f);
            total_fanout += f;
        }
        CircuitStats {
            gates: circuit.num_gates(),
            nets: circuit.num_nets(),
            inputs: circuit.inputs().len(),
            outputs: circuit.outputs().len(),
            depth: circuit.max_level(),
            cell_histogram,
            max_fanout,
            mean_fanout: if circuit.num_nets() > 0 {
                total_fanout as f64 / circuit.num_nets() as f64
            } else {
                0.0
            },
            flip_flops: circuit.scan_info().flip_flops,
            scan_chains: circuit.scan_info().scan_chains,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} gates, {} nets, {} inputs, {} outputs, depth {}, \
             fanout mean {:.2} / max {}, {} FFs in {} chains",
            self.gates,
            self.nets,
            self.inputs,
            self.outputs,
            self.depth,
            self.mean_fanout,
            self.max_fanout,
            self.flip_flops,
            self.scan_chains,
        )?;
        for (cell, count) in &self.cell_histogram {
            writeln!(f, "  {cell:<16} {count:>8}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateType, Library};
    use icd_logic::TruthTable;

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn stats_of_a_small_circuit() {
        let lib = lib();
        let mut b = CircuitBuilder::new("s", &lib);
        let a = b.add_input("a");
        let c = b.add_input("c");
        let m = b.add_gate("NAND2", &[a, c], None).unwrap();
        let y1 = b.add_gate("INV", &[m], None).unwrap();
        let y2 = b.add_gate("INV", &[m], None).unwrap();
        b.mark_output(y1, "y1");
        b.mark_output(y2, "y2");
        let circuit = b.finish().unwrap();
        let stats = CircuitStats::of(&circuit);
        assert_eq!(stats.gates, 3);
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.cell_histogram["INV"], 2);
        assert_eq!(stats.cell_histogram["NAND2"], 1);
        assert_eq!(stats.max_fanout, 2); // m feeds both inverters
        let shown = stats.to_string();
        assert!(shown.contains("3 gates"));
        assert!(shown.contains("INV"));
    }

    #[test]
    fn generator_circuits_use_the_whole_library() {
        use crate::generator;
        let cells_lib = lib();
        let cfg = generator::GeneratorConfig {
            name: "g".into(),
            gates: 300,
            primary_inputs: 8,
            primary_outputs: 8,
            flip_flops: 4,
            scan_chains: 2,
            seed: 3,
        };
        let c = generator::generate(&cfg, &cells_lib).unwrap();
        let stats = CircuitStats::of(&c);
        // Both types appear; depth is non-trivial.
        assert_eq!(stats.cell_histogram.len(), 2);
        assert!(stats.depth > 3);
        assert_eq!(stats.flip_flops, 4);
    }
}
