use std::error::Error;
use std::fmt;

/// Errors produced while constructing, parsing or validating netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate type name was not found in the library.
    UnknownGateType(String),
    /// A gate type with this name already exists in the library.
    DuplicateGateType(String),
    /// A gate was instantiated with the wrong number of connections.
    WrongPinCount {
        /// The gate type being instantiated.
        gate_type: String,
        /// Pins the type declares.
        expected: usize,
        /// Nets supplied.
        got: usize,
    },
    /// A gate-type declaration's pin-name count disagrees with its table.
    PinNameCountMismatch {
        /// The gate type being declared.
        gate_type: String,
        /// Inputs the truth table declares.
        table_inputs: usize,
        /// Pin names supplied.
        names: usize,
    },
    /// A gate type declares more inputs than the simulator supports.
    ///
    /// Tables and packed evaluators enumerate `2^inputs` minterms, so the
    /// arity must be capped when a library is built, not when the shift
    /// finally overflows.
    ArityTooLarge {
        /// The gate type being declared.
        gate_type: String,
        /// Inputs declared.
        inputs: usize,
        /// The supported maximum ([`icd_logic::MAX_TRUTH_TABLE_INPUTS`]).
        max: usize,
    },
    /// A pattern's width disagrees with the circuit's input count.
    WrongPatternWidth {
        /// Inputs the circuit declares.
        expected: usize,
        /// Width of the offending pattern.
        got: usize,
        /// Index of the offending pattern in its set.
        pattern: usize,
    },
    /// A net is driven by more than one gate.
    MultipleDrivers(String),
    /// A gate input references a net that is never driven and is not an
    /// input.
    UndrivenNet(String),
    /// The gate graph contains a combinational cycle through the named net.
    CombinationalCycle(String),
    /// A name was referenced before being defined (text format).
    UnknownName(String),
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownGateType(n) => write!(f, "unknown gate type {n:?}"),
            NetlistError::DuplicateGateType(n) => {
                write!(f, "gate type {n:?} declared twice")
            }
            NetlistError::WrongPinCount {
                gate_type,
                expected,
                got,
            } => write!(
                f,
                "gate type {gate_type:?} has {expected} inputs, {got} nets were connected"
            ),
            NetlistError::PinNameCountMismatch {
                gate_type,
                table_inputs,
                names,
            } => write!(
                f,
                "gate type {gate_type:?}: truth table has {table_inputs} inputs but {names} pin names were given"
            ),
            NetlistError::ArityTooLarge {
                gate_type,
                inputs,
                max,
            } => write!(
                f,
                "gate type {gate_type:?} declares {inputs} inputs, more than the supported {max}"
            ),
            NetlistError::WrongPatternWidth {
                expected,
                got,
                pattern,
            } => write!(
                f,
                "pattern {pattern} has width {got}, the circuit has {expected} inputs"
            ),
            NetlistError::MultipleDrivers(n) => {
                write!(f, "net {n:?} is driven by more than one gate")
            }
            NetlistError::UndrivenNet(n) => {
                write!(f, "net {n:?} is used but never driven")
            }
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net {n:?}")
            }
            NetlistError::UnknownName(n) => write!(f, "unknown name {n:?}"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}
