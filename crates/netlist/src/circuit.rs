use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use icd_logic::packed::PackedEval;

use crate::cone::{ConeIndex, ConeSet, Levels};
use crate::{GateId, GateType, Library, NetId, NetlistError, TypeId};

/// A stable 64-bit fingerprint of a circuit's structural content.
///
/// The hash covers the interface (input/output net names in pin order),
/// the stitched scan chains, and the gate population (type name, output
/// net name, input net names in pin order). Gate records are combined
/// commutatively, so the hash is independent of gate *declaration*
/// order; nets contribute through their printable names (which the
/// [`format`](crate::format) text format round-trips), so parsing a
/// written netlist reproduces the original circuit's hash. The circuit
/// name is deliberately excluded: two identically structured designs
/// fingerprint equal.
///
/// The algorithm is a fixed FNV-1a fold — not `DefaultHasher`, whose
/// output may change across toolchains — so hashes are stable enough to
/// pin in tests and to key on-disk cache snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Feeds one delimited field (a 0 byte cannot occur in a net or type
/// name, so it is an unambiguous separator).
fn field(h: &mut u64, text: &str) {
    fnv1a(h, text.as_bytes());
    fnv1a(h, &[0]);
}

impl ContentHash {
    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit rendering [`Display`](fmt::Display)
    /// produces.
    pub fn parse(text: &str) -> Option<ContentHash> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(ContentHash)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Sequential metadata retained by the full-scan abstraction.
///
/// The stored gate graph is purely combinational: every flip-flop's Q pin is
/// a pseudo-primary input and its D pin a pseudo-primary output. The counts
/// here reproduce the paper's Table 1 / Table 6 circuit characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanInfo {
    /// Number of scan flip-flops.
    pub flip_flops: usize,
    /// Number of scan chains the flip-flops are stitched into.
    pub scan_chains: usize,
}

/// One scan flip-flop in the full-scan abstraction: the pseudo-primary
/// input its Q pin drives and the pseudo-primary output its D pin is
/// observed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanCell {
    /// The Q-side pseudo-primary input net.
    pub ppi: NetId,
    /// The D-side pseudo-primary output net.
    pub ppo: NetId,
}

/// Where the tester observes a miscompare: a primary output pin or a scan
/// cell at a (chain, shift position) coordinate — the form real datalogs
/// report failures in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TesterCoordinate {
    /// A primary output pin.
    Po {
        /// Position in the circuit's output list.
        index: usize,
        /// The pin's net name.
        name: String,
    },
    /// A scan cell, addressed by chain and shift position.
    ScanCell {
        /// Scan chain index.
        chain: usize,
        /// Position within the chain (0 = closest to scan-out).
        position: usize,
    },
}

impl std::fmt::Display for TesterCoordinate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TesterCoordinate::Po { name, .. } => write!(f, "PO {name}"),
            TesterCoordinate::ScanCell { chain, position } => {
                write!(f, "chain {chain} cell {position}")
            }
        }
    }
}

/// A flattened, levelized gate-level circuit.
///
/// Storage is flat (offset arrays rather than per-gate vectors) so that the
/// multi-million-gate circuits of the paper's Table 6 stay cheap to build
/// and walk. Construct circuits with [`CircuitBuilder`] or by parsing the
/// [`format`](crate::format) text format.
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    library: Library,
    scan: ScanInfo,

    // Nets.
    net_driver: Vec<Option<GateId>>,
    net_names: HashMap<NetId, String>,
    nets_by_name: HashMap<String, NetId>,

    // Gates, flat.
    gate_type: Vec<TypeId>,
    gate_output: Vec<NetId>,
    gate_input_offset: Vec<u32>,
    gate_inputs: Vec<NetId>,
    gate_names: HashMap<GateId, String>,
    gates_by_name: HashMap<String, GateId>,

    // Interface.
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    scan_chains: Vec<Vec<ScanCell>>,

    // Derived.
    topo_order: Vec<GateId>,
    gate_level: Vec<u32>,
    fanout_offset: Vec<u32>,
    fanout: Vec<GateId>,
    max_level: u32,
    levels: Levels,

    // Lazy derived: built on first use, shared by clones of the value
    // they were built on.
    cones: OnceLock<ConeIndex>,
    packed_evals: OnceLock<Arc<Vec<PackedEval>>>,
}

impl Circuit {
    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Moves the circuit behind an [`Arc`](std::sync::Arc) so many
    /// diagnosis workers can borrow one immutable DUT description.
    pub fn into_shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }

    /// The owned library the circuit's gates reference.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Scan metadata.
    pub fn scan_info(&self) -> ScanInfo {
        self.scan
    }

    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gate_type.len()
    }

    /// Number of nets (including primary inputs).
    pub fn num_nets(&self) -> usize {
        self.net_driver.len()
    }

    /// Primary inputs (including pseudo-primary inputs), in order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs (including pseudo-primary outputs), in order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The gate driving `net`, or `None` for primary inputs.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.net_driver[net.index()]
    }

    /// The gates whose inputs are connected to `net`.
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        let i = net.index();
        let lo = self.fanout_offset[i] as usize;
        let hi = self.fanout_offset[i + 1] as usize;
        &self.fanout[lo..hi]
    }

    /// The input nets of a gate, in pin order.
    pub fn gate_inputs(&self, gate: GateId) -> &[NetId] {
        let i = gate.index();
        let lo = self.gate_input_offset[i] as usize;
        let hi = self.gate_input_offset[i + 1] as usize;
        &self.gate_inputs[lo..hi]
    }

    /// The output net of a gate.
    pub fn gate_output(&self, gate: GateId) -> NetId {
        self.gate_output[gate.index()]
    }

    /// The library type of a gate.
    pub fn gate_type_id(&self, gate: GateId) -> TypeId {
        self.gate_type[gate.index()]
    }

    /// The library type of a gate, resolved.
    pub fn gate_type(&self, gate: GateId) -> &GateType {
        self.library.gate_type(self.gate_type[gate.index()])
    }

    /// Gates in a valid topological (level) order for single-pass
    /// simulation.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo_order
    }

    /// The logic level of a gate (primary inputs are level 0).
    pub fn gate_level(&self, gate: GateId) -> u32 {
        self.gate_level[gate.index()]
    }

    /// The largest gate level in the circuit.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// The gates grouped by logic level, for level-ordered frontier
    /// evaluation.
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// The lazily built fanout-cone index (see [`ConeIndex`] for the
    /// memory cost; diagnosis-scale circuits pay a few MiB, and paths
    /// that never query cones never build it).
    pub fn cone_index(&self) -> &ConeIndex {
        self.cones.get_or_init(|| ConeIndex::build(self))
    }

    /// The transitive fanout cone of `gate` as a gate-index bitset
    /// (always contains `gate` itself). Builds the cone index on first
    /// use.
    pub fn fanout_cone(&self, gate: GateId) -> ConeSet<'_> {
        self.cone_index().cone(gate)
    }

    /// The observe-point positions (indexes into [`Circuit::outputs`])
    /// structurally reachable from `gate`'s output. Builds the cone
    /// index on first use.
    pub fn observable_outputs(&self, gate: GateId) -> ConeSet<'_> {
        self.cone_index().observable(gate)
    }

    /// Number of gates in `gate`'s transitive fanout cone (including
    /// itself). Builds the cone index on first use.
    pub fn cone_size(&self, gate: GateId) -> u32 {
        self.cone_index().cone_size(gate)
    }

    /// One compiled [`PackedEval`] per library type, indexed by
    /// [`TypeId`] position. Compiled once per circuit on first use and
    /// shared via [`Arc`] so repeated simulations (and clones of the
    /// handle) reuse the same evaluators.
    pub fn packed_evaluators(&self) -> &Arc<Vec<PackedEval>> {
        self.packed_evals.get_or_init(|| {
            Arc::new(
                self.library
                    .iter()
                    .map(|(_, t)| PackedEval::from_table(t.table()))
                    .collect(),
            )
        })
    }

    /// The printable name of a net (explicit name or `n<id>`).
    pub fn net_name(&self, net: NetId) -> String {
        self.net_names
            .get(&net)
            .cloned()
            .unwrap_or_else(|| net.to_string())
    }

    /// The printable name of a gate (explicit name or `g<id>`).
    pub fn gate_name(&self, gate: GateId) -> String {
        self.gate_names
            .get(&gate)
            .cloned()
            .unwrap_or_else(|| gate.to_string())
    }

    /// Finds a net by explicit name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets_by_name.get(name).copied()
    }

    /// Finds a gate by explicit name.
    pub fn find_gate(&self, name: &str) -> Option<GateId> {
        self.gates_by_name.get(name).copied()
    }

    /// Iterates over all gate ids.
    pub fn gates(&self) -> impl Iterator<Item = GateId> {
        (0..self.num_gates()).map(GateId::from_index)
    }

    /// Iterates over all net ids.
    pub fn nets(&self) -> impl Iterator<Item = NetId> {
        (0..self.num_nets()).map(NetId::from_index)
    }

    /// Whether `net` is a primary (or pseudo-primary) input.
    pub fn is_input(&self, net: NetId) -> bool {
        self.net_driver[net.index()].is_none()
    }

    /// The stitched scan chains (empty when the circuit carries only the
    /// aggregate [`ScanInfo`] counts).
    pub fn scan_chains(&self) -> &[Vec<ScanCell>] {
        &self.scan_chains
    }

    /// The circuit's structural [`ContentHash`] — see that type for what
    /// is covered and the stability guarantees. `O(gates + nets)` per
    /// call; callers that key caches on it should compute it once.
    pub fn content_hash(&self) -> ContentHash {
        // Ordered fold over the semantic orderings: interface pin order
        // and scan-chain stitching.
        let mut ordered = FNV_OFFSET;
        for &net in &self.inputs {
            field(&mut ordered, "i");
            field(&mut ordered, &self.net_name(net));
        }
        for &net in &self.outputs {
            field(&mut ordered, "o");
            field(&mut ordered, &self.net_name(net));
        }
        for chain in &self.scan_chains {
            field(&mut ordered, "c");
            for cell in chain {
                field(&mut ordered, &self.net_name(cell.ppi));
                field(&mut ordered, &self.net_name(cell.ppo));
            }
        }
        // Commutative fold over the gate population: each gate record is
        // hashed on its own and the records are summed, so declaring the
        // same gates in a different order changes nothing.
        let mut gates = 0u64;
        for gate in self.gates() {
            let mut g = FNV_OFFSET;
            field(&mut g, self.gate_type(gate).name());
            field(&mut g, &self.net_name(self.gate_output(gate)));
            for &input in self.gate_inputs(gate) {
                field(&mut g, &self.net_name(input));
            }
            gates = gates.wrapping_add(g);
        }
        let mut h = ordered;
        fnv1a(&mut h, &gates.to_le_bytes());
        fnv1a(&mut h, &(self.num_gates() as u64).to_le_bytes());
        ContentHash(h)
    }

    /// The tester coordinate of an observe point: a scan (chain, position)
    /// when the output is a stitched pseudo-primary output, the PO pin
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `output_index` is out of range.
    pub fn tester_coordinate(&self, output_index: usize) -> TesterCoordinate {
        let net = self.outputs[output_index];
        for (chain, cells) in self.scan_chains.iter().enumerate() {
            if let Some(position) = cells.iter().position(|c| c.ppo == net) {
                return TesterCoordinate::ScanCell { chain, position };
            }
        }
        TesterCoordinate::Po {
            index: output_index,
            name: self.net_name(net),
        }
    }
}

/// Incremental builder for [`Circuit`]s.
///
/// See the [crate-level example](crate) for typical usage.
#[derive(Debug)]
pub struct CircuitBuilder<'lib> {
    name: String,
    library: &'lib Library,
    scan: ScanInfo,

    net_driver: Vec<Option<GateId>>,
    net_names: HashMap<NetId, String>,
    nets_by_name: HashMap<String, NetId>,

    gate_type: Vec<TypeId>,
    gate_output: Vec<NetId>,
    gate_input_offset: Vec<u32>,
    gate_inputs: Vec<NetId>,
    gate_names: HashMap<GateId, String>,
    gates_by_name: HashMap<String, GateId>,

    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    scan_chains: Vec<Vec<ScanCell>>,
}

impl<'lib> CircuitBuilder<'lib> {
    /// Starts a new circuit using gate types from `library`.
    pub fn new(name: impl Into<String>, library: &'lib Library) -> Self {
        CircuitBuilder {
            name: name.into(),
            library,
            scan: ScanInfo::default(),
            net_driver: Vec::new(),
            net_names: HashMap::new(),
            nets_by_name: HashMap::new(),
            gate_type: Vec::new(),
            gate_output: Vec::new(),
            gate_input_offset: vec![0],
            gate_inputs: Vec::new(),
            gate_names: HashMap::new(),
            gates_by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            scan_chains: Vec::new(),
        }
    }

    /// Records scan metadata for the circuit.
    pub fn set_scan_info(&mut self, scan: ScanInfo) {
        self.scan = scan;
    }

    /// Records the stitched scan chains (also updates the aggregate
    /// counts).
    pub fn set_scan_chains(&mut self, chains: Vec<Vec<ScanCell>>) {
        self.scan = ScanInfo {
            flip_flops: chains.iter().map(Vec::len).sum(),
            scan_chains: chains.len(),
        };
        self.scan_chains = chains;
    }

    fn new_net(&mut self) -> NetId {
        let id = NetId::from_index(self.net_driver.len());
        self.net_driver.push(None);
        id
    }

    fn name_net(&mut self, net: NetId, name: &str) {
        self.net_names.insert(net, name.to_owned());
        self.nets_by_name.insert(name.to_owned(), net);
    }

    /// Adds a named primary (or pseudo-primary) input net.
    pub fn add_input(&mut self, name: &str) -> NetId {
        let id = self.intern_net(name);
        self.inputs.push(id);
        id
    }

    /// Adds an anonymous primary input net.
    pub fn add_anonymous_input(&mut self) -> NetId {
        let id = self.new_net();
        self.inputs.push(id);
        id
    }

    /// Returns the net with the given name, creating an (as yet undriven)
    /// placeholder if necessary. Used by the text-format parser, which may
    /// reference nets before their drivers are declared.
    pub fn intern_net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.nets_by_name.get(name) {
            return id;
        }
        let id = self.new_net();
        self.name_net(id, name);
        id
    }

    /// Instantiates a gate with a fresh anonymous output net.
    ///
    /// # Errors
    ///
    /// Returns an error when the gate type is unknown or the input count is
    /// wrong.
    pub fn add_gate(
        &mut self,
        type_name: &str,
        input_nets: &[NetId],
        instance_name: Option<&str>,
    ) -> Result<NetId, NetlistError> {
        let output = self.new_net();
        self.add_gate_driving(type_name, input_nets, output, instance_name)?;
        Ok(output)
    }

    /// Instantiates a gate that drives an existing net.
    ///
    /// # Errors
    ///
    /// Returns an error when the gate type is unknown, the input count is
    /// wrong, or `output` already has a driver.
    pub fn add_gate_driving(
        &mut self,
        type_name: &str,
        input_nets: &[NetId],
        output: NetId,
        instance_name: Option<&str>,
    ) -> Result<GateId, NetlistError> {
        let type_id = self
            .library
            .find(type_name)
            .ok_or_else(|| NetlistError::UnknownGateType(type_name.to_owned()))?;
        let gate_type = self.library.gate_type(type_id);
        if gate_type.num_inputs() != input_nets.len() {
            return Err(NetlistError::WrongPinCount {
                gate_type: type_name.to_owned(),
                expected: gate_type.num_inputs(),
                got: input_nets.len(),
            });
        }
        if self.net_driver[output.index()].is_some() {
            return Err(NetlistError::MultipleDrivers(
                self.net_names
                    .get(&output)
                    .cloned()
                    .unwrap_or_else(|| output.to_string()),
            ));
        }
        let gate = GateId::from_index(self.gate_type.len());
        self.net_driver[output.index()] = Some(gate);
        self.gate_type.push(type_id);
        self.gate_output.push(output);
        self.gate_inputs.extend_from_slice(input_nets);
        self.gate_input_offset.push(self.gate_inputs.len() as u32);
        if let Some(name) = instance_name {
            self.gate_names.insert(gate, name.to_owned());
            self.gates_by_name.insert(name.to_owned(), gate);
        }
        Ok(gate)
    }

    /// Marks a net as a primary (or pseudo-primary) output, giving it a
    /// name.
    pub fn mark_output(&mut self, net: NetId, name: &str) {
        if !self.nets_by_name.contains_key(name) {
            self.name_net(net, name);
        }
        self.outputs.push(net);
    }

    /// Marks a net as an output without naming it.
    pub fn mark_output_anonymous(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Number of gates added so far.
    pub fn num_gates(&self) -> usize {
        self.gate_type.len()
    }

    /// Number of nets created so far.
    pub fn num_nets(&self) -> usize {
        self.net_driver.len()
    }

    /// Validates the graph, levelizes it and produces the [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndrivenNet`] for nets that are used but
    /// neither driven nor inputs, and [`NetlistError::CombinationalCycle`]
    /// when the gate graph is cyclic.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        let num_gates = self.gate_type.len();
        let num_nets = self.net_driver.len();
        let input_set: Vec<bool> = {
            let mut v = vec![false; num_nets];
            for &i in &self.inputs {
                v[i.index()] = true;
            }
            v
        };

        // Every used net must be driven or an input.
        for &net in self.gate_inputs.iter().chain(self.outputs.iter()) {
            if self.net_driver[net.index()].is_none() && !input_set[net.index()] {
                return Err(NetlistError::UndrivenNet(
                    self.net_names
                        .get(&net)
                        .cloned()
                        .unwrap_or_else(|| net.to_string()),
                ));
            }
        }

        // Fanout (net -> consuming gates), counting-sort style.
        let mut fanout_offset = vec![0u32; num_nets + 1];
        for &net in &self.gate_inputs {
            fanout_offset[net.index() + 1] += 1;
        }
        for i in 0..num_nets {
            fanout_offset[i + 1] += fanout_offset[i];
        }
        let mut cursor = fanout_offset.clone();
        let mut fanout = vec![GateId::from_index(0); self.gate_inputs.len()];
        for g in 0..num_gates {
            let lo = self.gate_input_offset[g] as usize;
            let hi = self.gate_input_offset[g + 1] as usize;
            for &net in &self.gate_inputs[lo..hi] {
                let slot = cursor[net.index()];
                fanout[slot as usize] = GateId::from_index(g);
                cursor[net.index()] = slot + 1;
            }
        }

        // Kahn levelization over gates.
        let mut pending: Vec<u32> = (0..num_gates)
            .map(|g| {
                let lo = self.gate_input_offset[g] as usize;
                let hi = self.gate_input_offset[g + 1] as usize;
                self.gate_inputs[lo..hi]
                    .iter()
                    .filter(|n| self.net_driver[n.index()].is_some())
                    .count() as u32
            })
            .collect();
        let mut gate_level = vec![0u32; num_gates];
        let mut topo_order = Vec::with_capacity(num_gates);
        let mut queue: Vec<GateId> = (0..num_gates)
            .filter(|&g| pending[g] == 0)
            .map(GateId::from_index)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let gate = queue[head];
            head += 1;
            topo_order.push(gate);
            let out = self.gate_output[gate.index()];
            let level = gate_level[gate.index()];
            let lo = fanout_offset[out.index()] as usize;
            let hi = fanout_offset[out.index() + 1] as usize;
            for &succ in &fanout[lo..hi] {
                let s = succ.index();
                gate_level[s] = gate_level[s].max(level + 1);
                pending[s] -= 1;
                if pending[s] == 0 {
                    queue.push(succ);
                }
            }
        }
        if topo_order.len() != num_gates {
            // Find one gate on a cycle for the error message.
            let stuck = (0..num_gates)
                .find(|&g| pending[g] > 0)
                .expect("cycle implies a stuck gate");
            let net = self.gate_output[stuck];
            return Err(NetlistError::CombinationalCycle(
                self.net_names
                    .get(&net)
                    .cloned()
                    .unwrap_or_else(|| net.to_string()),
            ));
        }
        let max_level = gate_level.iter().copied().max().unwrap_or(0);
        let levels = Levels::build(&gate_level, max_level);

        Ok(Circuit {
            name: self.name,
            library: self.library.clone(),
            scan: self.scan,
            net_driver: self.net_driver,
            net_names: self.net_names,
            nets_by_name: self.nets_by_name,
            gate_type: self.gate_type,
            gate_output: self.gate_output,
            gate_input_offset: self.gate_input_offset,
            gate_inputs: self.gate_inputs,
            gate_names: self.gate_names,
            gates_by_name: self.gates_by_name,
            inputs: self.inputs,
            outputs: self.outputs,
            scan_chains: self.scan_chains,
            topo_order,
            gate_level,
            fanout_offset,
            fanout,
            max_level,
            levels,
            cones: OnceLock::new(),
            packed_evals: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::TruthTable;

    fn small_library() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn build_two_gate_chain() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("chain", &lib);
        let a = b.add_input("a");
        let c = b.add_input("c");
        let x = b.add_gate("NAND2", &[a, c], Some("U1")).unwrap();
        let y = b.add_gate("INV", &[x], Some("U2")).unwrap();
        b.mark_output(y, "y");
        let circuit = b.finish().unwrap();

        assert_eq!(circuit.num_gates(), 2);
        assert_eq!(circuit.inputs().len(), 2);
        assert_eq!(circuit.outputs().len(), 1);
        let u1 = circuit.find_gate("U1").unwrap();
        let u2 = circuit.find_gate("U2").unwrap();
        assert_eq!(circuit.gate_level(u1), 0);
        assert_eq!(circuit.gate_level(u2), 1);
        assert_eq!(circuit.fanout(circuit.gate_output(u1)), &[u2]);
        assert_eq!(circuit.topo_order(), &[u1, u2]);
        assert_eq!(circuit.gate_type(u2).name(), "INV");
    }

    #[test]
    fn wrong_pin_count_rejected() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("bad", &lib);
        let a = b.add_input("a");
        assert!(matches!(
            b.add_gate("NAND2", &[a], None),
            Err(NetlistError::WrongPinCount { .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("bad", &lib);
        let a = b.add_input("a");
        assert!(matches!(
            b.add_gate("XOR9", &[a], None),
            Err(NetlistError::UnknownGateType(_))
        ));
    }

    #[test]
    fn undriven_net_detected() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("bad", &lib);
        let ghost = b.intern_net("ghost");
        let a = b.add_input("a");
        let y = b.add_gate("NAND2", &[a, ghost], None).unwrap();
        b.mark_output(y, "y");
        assert!(matches!(
            b.finish(),
            Err(NetlistError::UndrivenNet(name)) if name == "ghost"
        ));
    }

    #[test]
    fn multiple_drivers_detected() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("bad", &lib);
        let a = b.add_input("a");
        let y = b.add_gate("INV", &[a], None).unwrap();
        assert!(matches!(
            b.add_gate_driving("INV", &[a], y, None),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn cycle_detected() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("bad", &lib);
        let a = b.add_input("a");
        let loop_net = b.intern_net("loop");
        let x = b.add_gate("NAND2", &[a, loop_net], None).unwrap();
        b.add_gate_driving("INV", &[x], loop_net, None).unwrap();
        b.mark_output(x, "y");
        assert!(matches!(
            b.finish(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn content_hash_is_gate_order_independent() {
        let lib = small_library();
        // Same structure, gates declared in opposite orders. All nets are
        // named so renumbering cannot leak into the hash.
        let build = |swapped: bool| {
            let mut b = CircuitBuilder::new("h", &lib);
            let a = b.add_input("a");
            let c = b.add_input("c");
            let x = b.intern_net("x");
            let y = b.intern_net("y");
            if swapped {
                b.add_gate_driving("INV", &[x], y, None).unwrap();
                b.add_gate_driving("NAND2", &[a, c], x, None).unwrap();
            } else {
                b.add_gate_driving("NAND2", &[a, c], x, None).unwrap();
                b.add_gate_driving("INV", &[x], y, None).unwrap();
            }
            b.mark_output(y, "y");
            b.finish().unwrap()
        };
        assert_eq!(build(false).content_hash(), build(true).content_hash());
    }

    #[test]
    fn content_hash_sees_structural_changes_but_not_the_name() {
        let lib = small_library();
        let build = |name: &str, gate: &str, out: &str| {
            let mut b = CircuitBuilder::new(name, &lib);
            let a = b.add_input("a");
            let y = if gate == "INV" {
                b.add_gate("INV", &[a], None).unwrap()
            } else {
                let c = b.intern_net("a");
                b.add_gate("NAND2", &[a, c], None).unwrap()
            };
            b.mark_output(y, out);
            b.finish().unwrap()
        };
        let base = build("one", "INV", "y").content_hash();
        assert_eq!(base, build("two", "INV", "y").content_hash());
        assert_ne!(base, build("one", "NAND2", "y").content_hash());
        assert_ne!(base, build("one", "INV", "z").content_hash());
    }

    #[test]
    fn content_hash_pins_known_values() {
        // Pinned: a change here means every on-disk snapshot keyed by a
        // content hash silently goes stale. Bump deliberately.
        let lib = small_library();
        let mut b = CircuitBuilder::new("chain", &lib);
        let a = b.add_input("a");
        let c = b.add_input("c");
        let x = b.add_gate("NAND2", &[a, c], Some("U1")).unwrap();
        let y = b.add_gate("INV", &[x], Some("U2")).unwrap();
        b.mark_output(y, "y");
        let circuit = b.finish().unwrap();
        assert_eq!(circuit.content_hash().to_string(), "ba424882cbb3563a");

        let generated =
            crate::generator::generate(&crate::generator::circuit_a().scaled_down(4), &lib)
                .unwrap();
        assert_eq!(generated.content_hash().to_string(), "066c9881c41fe856");
    }

    #[test]
    fn content_hash_display_roundtrips_through_parse() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("n", &lib);
        let a = b.add_input("a");
        let y = b.add_gate("INV", &[a], None).unwrap();
        b.mark_output(y, "y");
        let hash = b.finish().unwrap().content_hash();
        let text = hash.to_string();
        assert_eq!(text.len(), 16);
        assert_eq!(ContentHash::parse(&text), Some(hash));
        assert_eq!(ContentHash::parse("xyz"), None);
        assert_eq!(ContentHash::parse("00"), None);
    }

    #[test]
    fn derived_names_are_stable() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("n", &lib);
        let a = b.add_input("a");
        let y = b.add_gate("INV", &[a], None).unwrap();
        b.mark_output_anonymous(y);
        let c = b.finish().unwrap();
        assert_eq!(c.net_name(a), "a");
        assert_eq!(c.net_name(y), "n1");
        assert_eq!(c.gate_name(GateId::from_index(0)), "g0");
    }
}
