//! Levelized structure and fanout-cone reachability indexes.
//!
//! Event-driven fault simulation needs two structural views that a flat
//! gate list does not give directly:
//!
//! * [`Levels`] — the gates grouped by logic level, so a divergence
//!   frontier can be drained strictly level by level (every fanout
//!   successor sits at a strictly greater level, so each gate is
//!   evaluated at most once per propagation);
//! * [`ConeIndex`] — per-gate transitive fanout cones and the set of
//!   observe points each gate can reach, as dense bitsets, so candidate
//!   pre-filtering and cone-size scheduling are O(cone/64) lookups.
//!
//! [`Levels`] is cheap (two flat arrays) and built eagerly by
//! [`CircuitBuilder::finish`](crate::CircuitBuilder::finish). The cone
//! index costs `num_gates²/64 + num_gates·num_outputs/64` words — about
//! 7 MiB for a 7.5k-gate circuit but quadratic in principle — so it is
//! built lazily on first use and cached on the [`Circuit`]; simulation
//! paths that never ask for cones (the multi-million-gate Table 6
//! circuits) never pay for it.

use crate::{Circuit, GateId};

/// Gates grouped by logic level, level-major.
///
/// `gates_at(l)` lists every gate whose [`Circuit::gate_level`] is `l`,
/// in ascending gate-id order. Gates on the same level never feed each
/// other (a gate's level is one past its deepest predecessor), so a
/// per-level slice can be evaluated in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    /// `offsets[l]..offsets[l + 1]` indexes `gates` for level `l`.
    offsets: Vec<u32>,
    gates: Vec<GateId>,
}

impl Levels {
    /// Groups `gate_level` (indexed by gate) into level-major slices.
    pub(crate) fn build(gate_level: &[u32], max_level: u32) -> Levels {
        let num_levels = if gate_level.is_empty() {
            0
        } else {
            max_level as usize + 1
        };
        let mut offsets = vec![0u32; num_levels + 1];
        for &l in gate_level {
            offsets[l as usize + 1] += 1;
        }
        for l in 0..num_levels {
            offsets[l + 1] += offsets[l];
        }
        let mut cursor = offsets.clone();
        let mut gates = vec![GateId::from_index(0); gate_level.len()];
        for (g, &l) in gate_level.iter().enumerate() {
            let slot = cursor[l as usize];
            gates[slot as usize] = GateId::from_index(g);
            cursor[l as usize] = slot + 1;
        }
        Levels { offsets, gates }
    }

    /// Number of distinct levels (0 for an empty circuit).
    pub fn num_levels(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The gates at `level`, in ascending gate-id order (empty when the
    /// level is out of range).
    pub fn gates_at(&self, level: u32) -> &[GateId] {
        let l = level as usize;
        if l >= self.num_levels() {
            return &[];
        }
        &self.gates[self.offsets[l] as usize..self.offsets[l + 1] as usize]
    }

    /// Iterates `(level, gates)` pairs in ascending level order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[GateId])> {
        (0..self.num_levels() as u32).map(move |l| (l, self.gates_at(l)))
    }
}

/// A borrowed dense bitset over gate indexes or observe-point positions.
#[derive(Debug, Clone, Copy)]
pub struct ConeSet<'a> {
    words: &'a [u64],
}

impl<'a> ConeSet<'a> {
    /// Whether `index` is a member.
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w >> (index % 64) & 1 == 1)
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set shares any member with `other`.
    pub fn intersects(&self, other: ConeSet<'_>) -> bool {
        self.words.iter().zip(other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether the set shares any member with the raw bitset `words`.
    pub fn intersects_words(&self, words: &[u64]) -> bool {
        self.words.iter().zip(words).any(|(a, b)| a & b != 0)
    }

    /// Iterates member indexes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + 'a {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// The raw bitset words.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }
}

/// Per-gate transitive fanout cones and observe-point reachability, as
/// dense bitsets.
///
/// `cone(g)` is the set of gates (including `g` itself) whose output can
/// be disturbed by a defect at `g`'s output; `observable(g)` is the set
/// of positions in [`Circuit::outputs`] that `g`'s output structurally
/// reaches. Both are computed in one reverse-topological pass: a gate's
/// cone is itself plus the union of its fanout successors' cones.
#[derive(Debug, Clone)]
pub struct ConeIndex {
    gate_words: usize,
    out_words: usize,
    cones: Vec<u64>,
    observable: Vec<u64>,
    cone_sizes: Vec<u32>,
}

impl ConeIndex {
    /// Builds the index by reverse-topological bitset union.
    pub(crate) fn build(circuit: &Circuit) -> ConeIndex {
        let num_gates = circuit.num_gates();
        let num_outputs = circuit.outputs().len();
        let gate_words = num_gates.div_ceil(64).max(1);
        let out_words = num_outputs.div_ceil(64).max(1);
        let mut cones = vec![0u64; num_gates * gate_words];
        let mut observable = vec![0u64; num_gates * out_words];
        let mut cone_sizes = vec![0u32; num_gates];

        // Observe positions per net (a net may be observed at several
        // positions, e.g. a PO also captured by a scan cell).
        let mut out_positions: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_nets()];
        for (pos, &net) in circuit.outputs().iter().enumerate() {
            out_positions[net.index()].push(pos);
        }

        for &gate in circuit.topo_order().iter().rev() {
            let g = gate.index();
            let out = circuit.gate_output(gate);
            // Seed: the gate itself and the positions directly observing
            // its output net.
            cones[g * gate_words + g / 64] |= 1u64 << (g % 64);
            for &pos in &out_positions[out.index()] {
                observable[g * out_words + pos / 64] |= 1u64 << (pos % 64);
            }
            // Union in each successor's already-final cone (successors
            // have strictly greater level, hence later topo position).
            for &succ in circuit.fanout(out) {
                let s = succ.index();
                for w in 0..gate_words {
                    let bits = cones[s * gate_words + w];
                    cones[g * gate_words + w] |= bits;
                }
                for w in 0..out_words {
                    let bits = observable[s * out_words + w];
                    observable[g * out_words + w] |= bits;
                }
            }
            cone_sizes[g] = cones[g * gate_words..(g + 1) * gate_words]
                .iter()
                .map(|w| w.count_ones())
                .sum();
        }

        ConeIndex {
            gate_words,
            out_words,
            cones,
            observable,
            cone_sizes,
        }
    }

    /// The transitive fanout cone of `gate` as a gate-index bitset
    /// (always contains `gate` itself).
    pub fn cone(&self, gate: GateId) -> ConeSet<'_> {
        let g = gate.index();
        ConeSet {
            words: &self.cones[g * self.gate_words..(g + 1) * self.gate_words],
        }
    }

    /// The observe-point positions (indexes into [`Circuit::outputs`])
    /// reachable from `gate`'s output.
    pub fn observable(&self, gate: GateId) -> ConeSet<'_> {
        let g = gate.index();
        ConeSet {
            words: &self.observable[g * self.out_words..(g + 1) * self.out_words],
        }
    }

    /// Number of gates in `gate`'s fanout cone (including itself).
    pub fn cone_size(&self, gate: GateId) -> u32 {
        self.cone_sizes[gate.index()]
    }

    /// Number of `u64` words in an observe-point bitset, for building
    /// masks compatible with [`ConeSet::intersects_words`].
    pub fn output_words(&self) -> usize {
        self.out_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateType, Library};
    use icd_logic::TruthTable;

    fn small_library() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    /// a ─ U1 ─ U2 ─ y0        (disjoint branch)  c ─ U3 ─ y1
    fn two_branch() -> Circuit {
        let lib = small_library();
        let mut b = CircuitBuilder::new("two_branch", &lib);
        let a = b.add_input("a");
        let c = b.add_input("c");
        let x = b.add_gate("INV", &[a], Some("U1")).unwrap();
        let y0 = b.add_gate("INV", &[x], Some("U2")).unwrap();
        let y1 = b.add_gate("NAND2", &[c, c], Some("U3")).unwrap();
        b.mark_output(y0, "y0");
        b.mark_output(y1, "y1");
        b.finish().unwrap()
    }

    #[test]
    fn levels_group_gates_by_level() {
        let c = two_branch();
        let levels = c.levels();
        assert_eq!(levels.num_levels(), 2);
        let u1 = c.find_gate("U1").unwrap();
        let u2 = c.find_gate("U2").unwrap();
        let u3 = c.find_gate("U3").unwrap();
        assert_eq!(levels.gates_at(0), &[u1, u3]);
        assert_eq!(levels.gates_at(1), &[u2]);
        assert_eq!(levels.gates_at(7), &[] as &[GateId]);
        let collected: Vec<_> = levels.iter().map(|(l, g)| (l, g.len())).collect();
        assert_eq!(collected, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn cones_follow_structural_reachability() {
        let c = two_branch();
        let u1 = c.find_gate("U1").unwrap();
        let u2 = c.find_gate("U2").unwrap();
        let u3 = c.find_gate("U3").unwrap();

        let cone = c.fanout_cone(u1);
        assert!(cone.contains(u1.index()));
        assert!(cone.contains(u2.index()));
        assert!(!cone.contains(u3.index()));
        assert_eq!(cone.count(), 2);
        assert_eq!(c.cone_size(u1), 2);
        assert_eq!(c.cone_size(u2), 1);

        // U1 reaches only y0 (position 0); U3 only y1 (position 1).
        assert_eq!(c.observable_outputs(u1).iter().collect::<Vec<_>>(), [0]);
        assert_eq!(c.observable_outputs(u3).iter().collect::<Vec<_>>(), [1]);
        assert!(!c.fanout_cone(u1).intersects(c.fanout_cone(u3)));
        assert!(c.fanout_cone(u1).intersects(c.fanout_cone(u2)));
    }

    #[test]
    fn observable_respects_multiply_observed_nets() {
        let lib = small_library();
        let mut b = CircuitBuilder::new("double_obs", &lib);
        let a = b.add_input("a");
        let x = b.add_gate("INV", &[a], Some("U1")).unwrap();
        b.mark_output(x, "po");
        b.mark_output_anonymous(x); // observed twice
        let c = b.finish().unwrap();
        let u1 = c.find_gate("U1").unwrap();
        assert_eq!(c.observable_outputs(u1).iter().collect::<Vec<_>>(), [0, 1]);
        assert!(c.observable_outputs(u1).intersects_words(&[0b10]));
        assert!(!c.observable_outputs(u1).intersects_words(&[0b100]));
    }

    #[test]
    fn empty_circuit_levels_are_empty() {
        let lib = small_library();
        let b = CircuitBuilder::new("empty", &lib);
        let c = b.finish().unwrap();
        assert_eq!(c.levels().num_levels(), 0);
    }
}
