//! Deterministic synthetic circuit generation.
//!
//! The paper evaluates on proprietary ST Microelectronics products; the only
//! circuit properties the diagnosis flow consumes are the gate graph, its
//! size and the scan structure (Tables 1 and 6). This module generates
//! random — but seeded, hence reproducible — scan circuits with the same
//! characteristics: a levelized DAG of library cells with realistic fanout
//! locality.
//!
//! Presets reproduce the paper's circuits:
//!
//! | circuit | gates | flip-flops | scan chains | source |
//! |---------|-------|-----------|-------------|--------|
//! | A | 258 | 30 | 1 | Table 1 |
//! | B | 698 804 | 56 373 | 25 | Table 1 |
//! | H | 698 804 | 56 373 | 25 | Table 6 |
//! | M | 896 417 | 60 006 | 219 | Table 6 |
//! | C | 1 995 419 | 183 868 | 43 | Table 6 |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Circuit, CircuitBuilder, Library, NetId, NetlistError, ScanInfo};

/// Parameters for [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Circuit name.
    pub name: String,
    /// Number of gate instances.
    pub gates: usize,
    /// Number of primary inputs (pseudo-primary inputs for the flip-flops
    /// are added on top).
    pub primary_inputs: usize,
    /// Number of primary outputs (pseudo-primary outputs for the flip-flops
    /// are added on top).
    pub primary_outputs: usize,
    /// Number of scan flip-flops.
    pub flip_flops: usize,
    /// Number of scan chains.
    pub scan_chains: usize,
    /// RNG seed; the same seed and library produce the same circuit.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A copy of the configuration with gate / flip-flop / interface counts
    /// divided by `divisor` (min 1 each). Handy for fast test runs of
    /// experiments defined on the full-size circuits.
    #[must_use]
    pub fn scaled_down(&self, divisor: usize) -> GeneratorConfig {
        let d = divisor.max(1);
        GeneratorConfig {
            name: format!("{}_div{}", self.name, d),
            gates: (self.gates / d).max(8),
            primary_inputs: (self.primary_inputs / d).max(4),
            primary_outputs: (self.primary_outputs / d).max(4),
            flip_flops: (self.flip_flops / d).max(1),
            scan_chains: self.scan_chains.min((self.flip_flops / d).max(1)),
            seed: self.seed,
        }
    }
}

/// Generates a random full-scan circuit from library cells.
///
/// Every gate draws its inputs from previously created nets with a locality
/// bias (recent nets are preferred), which produces the deep, reconvergent
/// cones real netlists have. Outputs are chosen to cover otherwise-unused
/// nets first, so no logic dangles.
///
/// # Errors
///
/// Returns an error when the library is empty or contains only cells wider
/// than the available net count.
pub fn generate(config: &GeneratorConfig, library: &Library) -> Result<Circuit, NetlistError> {
    if library.is_empty() {
        return Err(NetlistError::UnknownGateType("<empty library>".into()));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = CircuitBuilder::new(config.name.clone(), library);
    builder.set_scan_info(ScanInfo {
        flip_flops: config.flip_flops,
        scan_chains: config.scan_chains,
    });

    let mut nets: Vec<NetId> = Vec::with_capacity(config.gates + config.primary_inputs);
    for i in 0..config.primary_inputs {
        nets.push(builder.add_input(&format!("pi{i}")));
    }
    for i in 0..config.flip_flops {
        nets.push(builder.add_input(&format!("ppi{i}")));
    }

    let types: Vec<(String, usize)> = library
        .iter()
        .map(|(_, t)| (t.name().to_owned(), t.num_inputs()))
        .collect();

    let mut used = vec![false; config.primary_inputs + config.flip_flops + config.gates];
    for gate_index in 0..config.gates {
        // Pick a type narrow enough for the nets created so far.
        let (type_name, width) = loop {
            let cand = &types[rng.random_range(0..types.len())];
            if cand.1 <= nets.len() {
                break cand.clone();
            }
        };
        let mut inputs = Vec::with_capacity(width);
        for _ in 0..width {
            // Locality bias: 75% of pins connect within a sliding window.
            let pick = if nets.len() > 64 && rng.random_bool(0.75) {
                let lo = nets.len() - 64;
                rng.random_range(lo..nets.len())
            } else {
                rng.random_range(0..nets.len())
            };
            inputs.push(nets[pick]);
            used[nets[pick].index()] = true;
        }
        let out = builder.add_gate(&type_name, &inputs, None)?;
        debug_assert_eq!(
            out.index(),
            config.primary_inputs + config.flip_flops + gate_index
        );
        nets.push(out);
    }

    // Choose observe points: dangling nets first, random gate outputs after.
    let first_gate_net = config.primary_inputs + config.flip_flops;
    let mut observe: Vec<NetId> = nets[first_gate_net..]
        .iter()
        .copied()
        .filter(|n| !used[n.index()])
        .collect();
    let wanted = config.primary_outputs + config.flip_flops;
    while observe.len() < wanted && nets.len() > first_gate_net {
        observe.push(nets[rng.random_range(first_gate_net..nets.len())]);
    }
    // If the circuit has no gates at all, observe inputs directly.
    if nets.len() <= first_gate_net {
        observe.extend_from_slice(&nets);
    }
    observe.truncate(wanted.max(1));
    for (i, net) in observe.iter().enumerate() {
        builder.mark_output(*net, &format!("po{i}"));
    }

    // Stitch the flip-flops into scan chains (round-robin): the last
    // `flip_flops` observe points are the pseudo-primary outputs paired
    // positionally with the `ppi*` inputs.
    if config.flip_flops > 0 && config.scan_chains > 0 && observe.len() >= config.flip_flops {
        let ppis: Vec<NetId> =
            nets[config.primary_inputs..config.primary_inputs + config.flip_flops].to_vec();
        let ppos: Vec<NetId> = observe[observe.len() - config.flip_flops..].to_vec();
        let mut chains: Vec<Vec<crate::ScanCell>> = vec![Vec::new(); config.scan_chains];
        for (i, (&ppi, &ppo)) in ppis.iter().zip(ppos.iter()).enumerate() {
            chains[i % config.scan_chains].push(crate::ScanCell { ppi, ppo });
        }
        builder.set_scan_chains(chains);
    }

    builder.finish()
}

fn preset(name: &str, gates: usize, ffs: usize, chains: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        name: name.to_owned(),
        gates,
        // Interface sizes are not published; use plausible counts that scale
        // sub-linearly with the core.
        primary_inputs: (gates as f64).sqrt() as usize / 2 + 8,
        primary_outputs: (gates as f64).sqrt() as usize / 2 + 8,
        flip_flops: ffs,
        scan_chains: chains,
        seed,
    }
}

/// Circuit A of Table 1: 258 gates, 30 flip-flops, 1 scan chain.
pub fn circuit_a() -> GeneratorConfig {
    preset("A", 258, 30, 1, 0xA_2014)
}

/// Circuit B of Table 1: 698 804 gates, 56 373 flip-flops, 25 scan chains.
pub fn circuit_b() -> GeneratorConfig {
    preset("B", 698_804, 56_373, 25, 0xB_2014)
}

/// Circuit H of Table 6 (CMOS 90 nm, same characteristics as B).
pub fn circuit_h() -> GeneratorConfig {
    preset("H", 698_804, 56_373, 25, 0x11_2014)
}

/// Circuit M of Table 6: 896 417 gates, 60 006 flip-flops, 219 scan chains.
pub fn circuit_m() -> GeneratorConfig {
    preset("M", 896_417, 60_006, 219, 0x12_2014)
}

/// Circuit C of Table 6: 1 995 419 gates, 183 868 flip-flops, 43 scan
/// chains (CMOS 55 nm).
pub fn circuit_c() -> GeneratorConfig {
    preset("C", 1_995_419, 183_868, 43, 0x13_2014)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateType;
    use icd_logic::TruthTable;

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib.insert(
            GateType::new(
                "NOR3",
                ["A", "B", "C"],
                TruthTable::from_fn(3, |b| !(b[0] | b[1] | b[2])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig {
            name: "t".into(),
            gates: 200,
            primary_inputs: 10,
            primary_outputs: 10,
            flip_flops: 5,
            scan_chains: 1,
            seed: 7,
        };
        let a = generate(&cfg, &lib()).unwrap();
        let b = generate(&cfg, &lib()).unwrap();
        assert_eq!(a.num_gates(), b.num_gates());
        for g in a.gates() {
            assert_eq!(a.gate_inputs(g), b.gate_inputs(g));
            assert_eq!(a.gate_type_id(g), b.gate_type_id(g));
        }
    }

    #[test]
    fn counts_match_config() {
        let cfg = GeneratorConfig {
            name: "t".into(),
            gates: 150,
            primary_inputs: 12,
            primary_outputs: 9,
            flip_flops: 4,
            scan_chains: 2,
            seed: 1,
        };
        let c = generate(&cfg, &lib()).unwrap();
        assert_eq!(c.num_gates(), 150);
        assert_eq!(c.inputs().len(), 12 + 4);
        assert_eq!(c.outputs().len(), 9 + 4);
        assert_eq!(c.scan_info().flip_flops, 4);
        assert_eq!(c.scan_info().scan_chains, 2);
    }

    #[test]
    fn every_gate_output_reaches_fanout_or_po() {
        let cfg = GeneratorConfig {
            name: "t".into(),
            gates: 120,
            primary_inputs: 8,
            primary_outputs: 60,
            flip_flops: 0,
            scan_chains: 0,
            seed: 3,
        };
        let c = generate(&cfg, &lib()).unwrap();
        // Every dangling net must have been promoted to an output, as long
        // as the requested output count allows it.
        let dangling_unobserved = c
            .gates()
            .map(|g| c.gate_output(g))
            .filter(|&n| c.fanout(n).is_empty() && !c.outputs().contains(&n))
            .count();
        assert_eq!(dangling_unobserved, 0);
    }

    #[test]
    fn circuit_a_preset_matches_table1() {
        let cfg = circuit_a();
        let c = generate(&cfg, &lib()).unwrap();
        assert_eq!(c.num_gates(), 258);
        assert_eq!(c.scan_info().flip_flops, 30);
        assert_eq!(c.scan_info().scan_chains, 1);
    }

    #[test]
    fn scan_chains_are_stitched_round_robin() {
        let cfg = GeneratorConfig {
            name: "t".into(),
            gates: 100,
            primary_inputs: 8,
            primary_outputs: 6,
            flip_flops: 7,
            scan_chains: 3,
            seed: 5,
        };
        let c = generate(&cfg, &lib()).unwrap();
        let chains = c.scan_chains();
        assert_eq!(chains.len(), 3);
        assert_eq!(chains.iter().map(Vec::len).sum::<usize>(), 7);
        // Round-robin: lengths differ by at most one.
        let min = chains.iter().map(Vec::len).min().unwrap();
        let max = chains.iter().map(Vec::len).max().unwrap();
        assert!(max - min <= 1);
        // Every PPO resolves to a scan coordinate; POs stay POs.
        use crate::TesterCoordinate;
        let mut scan_coords = 0;
        for i in 0..c.outputs().len() {
            match c.tester_coordinate(i) {
                TesterCoordinate::ScanCell { chain, .. } => {
                    assert!(chain < 3);
                    scan_coords += 1;
                }
                TesterCoordinate::Po { index, .. } => assert_eq!(index, i),
            }
        }
        assert_eq!(scan_coords, 7);
        // PPIs are inputs.
        for chain in chains {
            for cell in chain {
                assert!(c.is_input(cell.ppi));
            }
        }
    }

    #[test]
    fn scaled_down_keeps_structure() {
        let cfg = circuit_b().scaled_down(1000);
        assert!(cfg.gates >= 8);
        assert!(cfg.flip_flops >= 1);
        let c = generate(&cfg, &lib()).unwrap();
        assert_eq!(c.num_gates(), cfg.gates);
    }
}
