use std::collections::HashMap;

use icd_logic::{Lv, TruthTable};

use crate::{NetlistError, TypeId};

/// The logic-level view of one standard cell: a name, ordered input pin
/// names and a (possibly ternary) truth table.
///
/// The transistor-level view of the same cell lives in the `icd-cells`
/// crate; both views share the cell name, which is how the intra-cell
/// diagnosis flow moves from a suspected gate instance to the transistor
/// netlist it must analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateType {
    name: String,
    input_names: Vec<String>,
    table: TruthTable,
}

impl GateType {
    /// Creates a gate type.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityTooLarge`] when more pin names than
    /// [`MAX_TRUTH_TABLE_INPUTS`](icd_logic::MAX_TRUTH_TABLE_INPUTS) are
    /// given (a table that wide cannot exist, and downstream evaluators
    /// enumerate `2^inputs` minterms), and
    /// [`NetlistError::PinNameCountMismatch`] when the number of pin names
    /// differs from the truth table's input count.
    pub fn new<S, I>(name: S, input_names: I, table: TruthTable) -> Result<Self, NetlistError>
    where
        S: Into<String>,
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let name = name.into();
        let input_names: Vec<String> = input_names.into_iter().map(Into::into).collect();
        if input_names.len() > icd_logic::MAX_TRUTH_TABLE_INPUTS {
            return Err(NetlistError::ArityTooLarge {
                gate_type: name,
                inputs: input_names.len(),
                max: icd_logic::MAX_TRUTH_TABLE_INPUTS,
            });
        }
        if input_names.len() != table.inputs() {
            return Err(NetlistError::PinNameCountMismatch {
                gate_type: name,
                table_inputs: table.inputs(),
                names: input_names.len(),
            });
        }
        Ok(GateType {
            name,
            input_names,
            table,
        })
    }

    /// The cell name (e.g. `"AO8DHVTX1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered input pin names.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// The logic function.
    pub fn table(&self) -> &TruthTable {
        &self.table
    }

    /// Evaluates the cell on ternary input values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the cell's input count.
    pub fn eval(&self, values: &[Lv]) -> Lv {
        self.table
            .eval(values)
            .expect("input count checked at construction")
    }
}

/// An ordered collection of [`GateType`]s addressable by name or [`TypeId`].
#[derive(Debug, Clone, Default)]
pub struct Library {
    types: Vec<GateType>,
    by_name: HashMap<String, TypeId>,
}

impl Library {
    /// Creates an empty library.
    pub fn new() -> Self {
        Library::default()
    }

    /// Adds a gate type, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateGateType`] when a type with the same
    /// name is already present.
    pub fn insert(&mut self, gate_type: GateType) -> Result<TypeId, NetlistError> {
        if self.by_name.contains_key(gate_type.name()) {
            return Err(NetlistError::DuplicateGateType(gate_type.name().to_owned()));
        }
        let id = TypeId::from_index(self.types.len());
        self.by_name.insert(gate_type.name().to_owned(), id);
        self.types.push(gate_type);
        Ok(id)
    }

    /// Looks a type up by name.
    pub fn find(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// The type behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this library.
    pub fn gate_type(&self, id: TypeId) -> &GateType {
        &self.types[id.index()]
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates over `(id, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &GateType)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (TypeId::from_index(i), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv() -> GateType {
        GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap()
    }

    #[test]
    fn insert_and_find() {
        let mut lib = Library::new();
        let id = lib.insert(inv()).unwrap();
        assert_eq!(lib.find("INV"), Some(id));
        assert_eq!(lib.gate_type(id).name(), "INV");
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut lib = Library::new();
        lib.insert(inv()).unwrap();
        assert!(matches!(
            lib.insert(inv()),
            Err(NetlistError::DuplicateGateType(_))
        ));
    }

    #[test]
    fn pin_count_must_match_table() {
        let err = GateType::new("BAD", ["A", "B"], TruthTable::from_fn(1, |b| b[0]));
        assert!(matches!(
            err,
            Err(NetlistError::PinNameCountMismatch { .. })
        ));
    }

    #[test]
    fn arity_is_capped_at_declaration() {
        // Regression: wide arities must fail structurally here rather than
        // overflow `1usize << inputs` somewhere downstream.
        let names: Vec<String> = (0..21).map(|i| format!("I{i}")).collect();
        let err = GateType::new("WIDE", names, TruthTable::from_fn(1, |b| b[0]));
        assert!(matches!(
            err,
            Err(NetlistError::ArityTooLarge {
                inputs: 21,
                max: 20,
                ..
            })
        ));
        // The boundary itself is fine (table width is what actually limits).
        let names20: Vec<String> = (0..20).map(|i| format!("I{i}")).collect();
        assert!(matches!(
            GateType::new("W20", names20, TruthTable::from_fn(1, |b| b[0])),
            Err(NetlistError::PinNameCountMismatch { .. })
        ));
    }

    #[test]
    fn eval_uses_table() {
        let t = inv();
        assert_eq!(t.eval(&[Lv::Zero]), Lv::One);
        assert_eq!(t.eval(&[Lv::U]), Lv::U);
    }
}
