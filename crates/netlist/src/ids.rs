use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                $name(index as u32)
            }

            /// The raw index backing this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a net (wire) in a [`Circuit`](crate::Circuit).
    NetId,
    "n"
);
id_type!(
    /// Identifier of a gate instance in a [`Circuit`](crate::Circuit).
    GateId,
    "g"
);
id_type!(
    /// Identifier of a [`GateType`](crate::GateType) within a
    /// [`Library`](crate::Library).
    TypeId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let id = NetId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(GateId::from_index(1) < GateId::from_index(2));
    }
}
