//! Packed (bit-parallel) good-machine simulation of a [`Circuit`].
//!
//! The diagnosis flow re-simulates the same circuit under hundreds of
//! patterns; evaluating them one [`Lv`] at a time wastes the word-level
//! parallelism of the host. This module threads the
//! [`icd_logic::packed`] kernel through the netlist layer: 64 patterns
//! travel together as one [`PackedWord`] per net, and each gate is a
//! single [`PackedEval`] application per word instead of 64 table
//! lookups.
//!
//! The scalar path ([`GateType::eval`](crate::GateType::eval) applied in
//! topological order) remains the authoritative oracle; the differential
//! tests below and in `icd-faultsim` hold the two paths byte-identical.

use icd_logic::packed::{PackedPatternSet, PackedWord};
use icd_logic::{Lv, Pattern};

use crate::{Circuit, NetId, NetlistError};

/// Per-net packed simulation results: one [`PackedWord`] per (net, word)
/// pair, net-major.
///
/// Lanes beyond the pattern count carry the pinned tail of the input
/// [`PackedPatternSet`] (all-`Zero` inputs); mask with
/// [`PackedNetValues::tail_mask`] before counting anything per-lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedNetValues {
    num_patterns: usize,
    words: usize,
    planes: Vec<PackedWord>,
}

impl PackedNetValues {
    /// Number of (real) patterns simulated.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of 64-lane words per net.
    pub fn words_per_net(&self) -> usize {
        self.words
    }

    /// The packed word `word` of `net`.
    pub fn word(&self, net: NetId, word: usize) -> PackedWord {
        self.planes[net.index() * self.words + word]
    }

    /// All packed words of `net`, in word order.
    pub fn net_words(&self, net: NetId) -> &[PackedWord] {
        let lo = net.index() * self.words;
        &self.planes[lo..lo + self.words]
    }

    /// The simulated value of `net` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern >= self.num_patterns()`.
    pub fn value(&self, net: NetId, pattern: usize) -> Lv {
        assert!(pattern < self.num_patterns, "pattern index out of range");
        self.word(net, pattern / 64).lane(pattern % 64)
    }

    /// Mask of lanes in `word` that hold real patterns.
    pub fn tail_mask(&self, word: usize) -> u64 {
        let filled = self.num_patterns.saturating_sub(word * 64).min(64);
        if filled == 64 {
            !0
        } else {
            (1u64 << filled) - 1
        }
    }
}

/// Simulates the fault-free circuit under a packed pattern set, 64
/// patterns per machine word.
///
/// The set's pins correspond positionally to [`Circuit::inputs`]. `U`
/// input positions are propagated with exact ternary semantics (the
/// packed evaluator agrees with [`TruthTable::eval`](icd_logic::TruthTable::eval)
/// on every lane).
///
/// # Errors
///
/// Returns [`NetlistError::WrongPatternWidth`] when the set's width
/// differs from the circuit's input count.
pub fn packed_simulate(
    circuit: &Circuit,
    patterns: &PackedPatternSet,
) -> Result<PackedNetValues, NetlistError> {
    if patterns.width() != circuit.inputs().len() {
        return Err(NetlistError::WrongPatternWidth {
            expected: circuit.inputs().len(),
            got: patterns.width(),
            pattern: 0,
        });
    }
    // Evaluators are compiled once per circuit and reused across calls.
    let evals = circuit.packed_evaluators();
    let words = patterns.num_words();
    let mut planes = vec![PackedWord::ALL_U; circuit.num_nets() * words];

    // Load the input planes (tail lanes stay pinned to the set's Zero).
    for (pin, &net) in circuit.inputs().iter().enumerate() {
        for w in 0..words {
            planes[net.index() * words + w] = patterns.word(pin, w);
        }
    }

    // Word-major evaluation keeps each word's working set in cache.
    let mut ins: Vec<PackedWord> = Vec::new();
    for w in 0..words {
        for &gate in circuit.topo_order() {
            ins.clear();
            ins.extend(
                circuit
                    .gate_inputs(gate)
                    .iter()
                    .map(|n| planes[n.index() * words + w]),
            );
            let eval = &evals[circuit.gate_type_id(gate).index()];
            let out = eval
                .eval_word(&ins)
                .expect("gate arity checked at construction");
            planes[circuit.gate_output(gate).index() * words + w] = out;
        }
    }

    Ok(PackedNetValues {
        num_patterns: patterns.num_patterns(),
        words,
        planes,
    })
}

/// Convenience wrapper: packs a pattern slice and simulates it.
///
/// # Errors
///
/// Returns [`NetlistError::WrongPatternWidth`] (with the offending
/// pattern's index) when any pattern's width differs from the circuit's
/// input count.
pub fn packed_simulate_patterns(
    circuit: &Circuit,
    patterns: &[Pattern],
) -> Result<PackedNetValues, NetlistError> {
    let expected = circuit.inputs().len();
    for (i, p) in patterns.iter().enumerate() {
        if p.len() != expected {
            return Err(NetlistError::WrongPatternWidth {
                expected,
                got: p.len(),
                pattern: i,
            });
        }
    }
    let set = PackedPatternSet::from_patterns(patterns)
        .expect("pattern widths checked against the circuit");
    // An empty set has the circuit width by convention.
    if patterns.is_empty() && expected > 0 {
        return Ok(PackedNetValues {
            num_patterns: 0,
            words: 1,
            planes: vec![PackedWord::splat(Lv::Zero, !0); circuit.num_nets()],
        });
    }
    packed_simulate(circuit, &set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::{CircuitBuilder, GateType, Library};
    use icd_logic::TruthTable;

    fn small_library() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    /// The scalar oracle: topo-order ternary evaluation, one pattern at a
    /// time.
    fn scalar_simulate(circuit: &Circuit, pattern: &Pattern) -> Vec<Lv> {
        let mut values = vec![Lv::U; circuit.num_nets()];
        for (pin, &net) in circuit.inputs().iter().enumerate() {
            values[net.index()] = pattern[pin];
        }
        for &gate in circuit.topo_order() {
            let ins: Vec<Lv> = circuit
                .gate_inputs(gate)
                .iter()
                .map(|n| values[n.index()])
                .collect();
            values[circuit.gate_output(gate).index()] = circuit.gate_type(gate).eval(&ins);
        }
        values
    }

    fn chain_circuit() -> Circuit {
        let lib = small_library();
        let mut b = CircuitBuilder::new("chain", &lib);
        let a = b.add_input("a");
        let c = b.add_input("c");
        let x = b.add_gate("NAND2", &[a, c], Some("U1")).unwrap();
        let y = b.add_gate("INV", &[x], Some("U2")).unwrap();
        let z = b.add_gate("NAND2", &[y, a], Some("U3")).unwrap();
        b.mark_output(z, "z");
        b.finish().unwrap()
    }

    #[test]
    fn packed_matches_scalar_on_all_ternary_vectors() {
        let circuit = chain_circuit();
        let all: Vec<Pattern> = (0..9)
            .map(|i| Pattern::new([Lv::ALL[i / 3], Lv::ALL[i % 3]]))
            .collect();
        let packed = packed_simulate_patterns(&circuit, &all).unwrap();
        for (t, p) in all.iter().enumerate() {
            let scalar = scalar_simulate(&circuit, p);
            for net in circuit.nets() {
                assert_eq!(packed.value(net, t), scalar[net.index()], "net {net:?}");
            }
        }
    }

    #[test]
    fn packed_matches_scalar_on_generated_circuit_with_tail() {
        // 70 patterns exercise the partially filled second word.
        let config = GeneratorConfig {
            name: "packed_diff".into(),
            gates: 120,
            primary_inputs: 8,
            primary_outputs: 6,
            flip_flops: 4,
            scan_chains: 1,
            seed: 7,
        };
        let circuit = generate(&config, &small_library()).unwrap();
        let width = circuit.inputs().len();
        let mut state = 0x243F6A8885A308D3u64;
        let patterns: Vec<Pattern> = (0..70)
            .map(|_| {
                Pattern::new((0..width).map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    match state >> 62 {
                        0 => Lv::U,
                        1 => Lv::One,
                        _ => Lv::Zero,
                    }
                }))
            })
            .collect();
        let packed = packed_simulate_patterns(&circuit, &patterns).unwrap();
        assert_eq!(packed.num_patterns(), 70);
        assert_eq!(packed.words_per_net(), 2);
        assert_eq!(packed.tail_mask(1), (1u64 << 6) - 1);
        for (t, p) in patterns.iter().enumerate() {
            let scalar = scalar_simulate(&circuit, p);
            for net in circuit.nets() {
                assert_eq!(packed.value(net, t), scalar[net.index()]);
            }
        }
    }

    #[test]
    fn width_mismatch_reports_offending_pattern() {
        let circuit = chain_circuit();
        let patterns = vec![
            Pattern::from_bits([true, false]),
            Pattern::from_bits([true]),
        ];
        assert!(matches!(
            packed_simulate_patterns(&circuit, &patterns),
            Err(NetlistError::WrongPatternWidth {
                expected: 2,
                got: 1,
                pattern: 1,
            })
        ));
    }

    #[test]
    fn packed_evaluators_are_compiled_once_per_circuit() {
        let circuit = chain_circuit();
        let first = std::sync::Arc::clone(circuit.packed_evaluators());
        let patterns = vec![Pattern::from_bits([true, false])];
        packed_simulate_patterns(&circuit, &patterns).unwrap();
        packed_simulate_patterns(&circuit, &patterns).unwrap();
        // Still the same compiled evaluators, not fresh per-call copies.
        assert!(std::sync::Arc::ptr_eq(&first, circuit.packed_evaluators()));
        assert_eq!(first.len(), circuit.library().len());
    }

    #[test]
    fn empty_pattern_set_simulates() {
        let circuit = chain_circuit();
        let packed = packed_simulate_patterns(&circuit, &[]).unwrap();
        assert_eq!(packed.num_patterns(), 0);
        assert_eq!(packed.tail_mask(0), 0);
    }
}
