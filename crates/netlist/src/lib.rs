//! Gate-level netlist substrate for the `icdiag` workspace.
//!
//! The intra-cell diagnosis flow of the paper operates on a *device under
//! test* described at gate level: a flattened network of single-output
//! standard-cell instances. This crate provides:
//!
//! * [`GateType`] / [`Library`] — the logic view of a standard-cell library
//!   (name, pin names, truth table). The transistor-level view lives in
//!   `icd-cells`.
//! * [`Circuit`] and [`CircuitBuilder`] — a compact, flat gate-graph
//!   representation that scales to the multi-million-gate circuits of the
//!   paper's Table 6, with levelization for event-driven simulation.
//! * [`generator`] — deterministic synthetic circuit generation used to
//!   reproduce the paper's circuits A, B (Table 1) and H, M, C (Table 6).
//! * [`format`](mod@format) — a small structural text format for circuits.
//!
//! Sequential elements are handled with the standard full-scan abstraction:
//! every flip-flop contributes one pseudo-primary input (its Q pin) and one
//! pseudo-primary output (its D pin); the stored circuit is purely
//! combinational and scan-chain structure is retained as metadata.
//!
//! # Example
//!
//! ```
//! use icd_logic::TruthTable;
//! use icd_netlist::{CircuitBuilder, GateType, Library};
//!
//! let mut lib = Library::new();
//! lib.insert(GateType::new("NAND2", ["A", "B"], TruthTable::from_fn(2, |b| !(b[0] & b[1])))?);
//!
//! let mut b = CircuitBuilder::new("demo", &lib);
//! let a = b.add_input("a");
//! let c = b.add_input("c");
//! let y = b.add_gate("NAND2", &[a, c], Some("U1"))?;
//! b.mark_output(y, "y");
//! let circuit = b.finish()?;
//! assert_eq!(circuit.num_gates(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod circuit;
pub mod cone;
mod error;
pub mod format;
pub mod generator;
mod ids;
mod library;
pub mod packed_sim;
mod stats;

pub use circuit::{Circuit, CircuitBuilder, ContentHash, ScanCell, ScanInfo, TesterCoordinate};
pub use cone::{ConeIndex, ConeSet, Levels};
pub use error::NetlistError;
pub use ids::{GateId, NetId, TypeId};
pub use library::{GateType, Library};
pub use packed_sim::{packed_simulate, packed_simulate_patterns, PackedNetValues};
pub use stats::CircuitStats;
