//! Transistor-level CPT benchmarks: backward trace vs brute-force oracle,
//! across cell complexity (the paper's "negligible computational time"
//! claim, §1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icd_cells::CellLibrary;
use icd_core::{critical_oracle, transistor_cpt};
use icd_logic::Lv;

fn inputs_for(cell: &icd_switch::CellNetlist) -> Vec<Lv> {
    (0..cell.num_inputs())
        .map(|i| Lv::from(i % 2 == 1))
        .collect()
}

fn bench_trace_vs_oracle(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let mut group = c.benchmark_group("cpt");
    for name in ["AO7SVTX1", "AO8DHVTX1", "AN2BHVTX8", "MUX21HVTX6"] {
        let cell = cells.get(name).expect("exists").netlist().clone();
        let inputs = inputs_for(&cell);
        group.bench_with_input(
            BenchmarkId::new("trace", name),
            &(&cell, &inputs),
            |b, (cell, inputs)| {
                b.iter(|| transistor_cpt(cell, inputs).expect("traces"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("oracle", name),
            &(&cell, &inputs),
            |b, (cell, inputs)| {
                b.iter(|| critical_oracle(cell, inputs).expect("enumerates"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_trace_vs_oracle
}
criterion_main!(benches);
