//! Inter-cell (gate-level) diagnosis benchmark: effect-cause candidate
//! extraction over circuit size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icd_bench::pattern_set_for;
use icd_cells::CellLibrary;
use icd_defects::{sample_defects, MixConfig};
use icd_faultsim::{run_test, FaultyGate};
use icd_intercell::diagnose;
use icd_netlist::generator;

fn bench_diagnose(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let mut group = c.benchmark_group("intercell_diagnose");
    group.sample_size(15);
    for divisor in [2000usize, 500] {
        let cfg = generator::circuit_b().scaled_down(divisor);
        let circuit = generator::generate(&cfg, &logic).expect("generates");
        let patterns = pattern_set_for(&circuit, 64, 1);
        // Inject one observable defect to obtain a realistic datalog.
        let gate = circuit
            .gates()
            .find(|&g| circuit.gate_type(g).name() == "AO7SVTX1")
            .or_else(|| circuit.gates().next())
            .expect("non-empty circuit");
        let cell = cells
            .get(circuit.gate_type(gate).name())
            .expect("library cell");
        let injected = sample_defects(cell.netlist(), 4, &MixConfig::default(), 5)
            .expect("samples")
            .into_iter()
            .find_map(|d| {
                let behavior = d.characterization.behavior.clone()?;
                let log = run_test(&circuit, &patterns, &FaultyGate::new(gate, behavior)).ok()?;
                (!log.all_pass()).then_some(log)
            });
        let Some(datalog) = injected else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.num_gates()),
            &(&circuit, &patterns, &datalog),
            |b, (circuit, patterns, datalog)| {
                b.iter(|| diagnose(circuit, patterns, datalog).expect("diagnoses"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_diagnose
}
criterion_main!(benches);
