//! The paper's §4.1 runtime claim: "the CPU time required for the
//! intra-cell diagnosis is lower than 1 sec". This benchmark measures the
//! complete diagnosis (CPT per pattern, intersections, vindication,
//! allocation) per cell with paper-sized local pattern sets (≈3 lfp,
//! ≈6 lpp).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icd_cells::{CellLibrary, TABLE5_CELL_NAMES};
use icd_core::{diagnose, LocalTest};

fn local_sets(inputs: usize) -> (Vec<LocalTest>, Vec<LocalTest>) {
    // Paper-sized sets: about 3 failing and 6 passing local patterns.
    let vector = |i: usize| -> Vec<bool> { (0..inputs).map(|k| (i >> k) & 1 == 1).collect() };
    let lfp = (0..3)
        .map(|i| LocalTest::static_vector(vector(i)))
        .collect();
    let lpp = (3..9)
        .map(|i| LocalTest::static_vector(vector(i % (1 << inputs))))
        .collect();
    (lfp, lpp)
}

fn bench_diagnose(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let mut group = c.benchmark_group("intracell_diagnose");
    for name in TABLE5_CELL_NAMES {
        let cell = cells.get(name).expect("exists").netlist().clone();
        let (lfp, lpp) = local_sets(cell.num_inputs());
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(&cell, &lfp, &lpp),
            |b, (cell, lfp, lpp)| {
                b.iter(|| diagnose(cell, lfp, lpp).expect("diagnoses"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_diagnose
}
criterion_main!(benches);
