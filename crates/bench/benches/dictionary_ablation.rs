//! The circuit-C comparison (Fig. 14) as a benchmark: effect-cause CPT
//! diagnosis (2 simulations per pattern, `O(1)` in the defect count)
//! versus building the defect/fault dictionaries (`O(n²)` serial
//! injections dominated by the bridging pairs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icd_cells::CellLibrary;
use icd_core::{diagnose, LocalTest};
use icd_defects::{build_defect_dictionary, build_fault_dictionary};

fn bench_ablation(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let mut group = c.benchmark_group("dictionary_ablation");
    group.sample_size(20);
    for name in ["AO7SVTX1", "AO8DHVTX1", "AO9SVTX1"] {
        let cell = cells.get(name).expect("exists").netlist().clone();
        let n = cell.num_inputs();
        let vector = |i: usize| -> Vec<bool> { (0..n).map(|k| (i >> k) & 1 == 1).collect() };
        let lfp: Vec<LocalTest> = (0..3)
            .map(|i| LocalTest::static_vector(vector(i)))
            .collect();
        let lpp: Vec<LocalTest> = (3..9)
            .map(|i| LocalTest::static_vector(vector(i % (1 << n))))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("cpt_diagnose", name),
            &(&cell, &lfp, &lpp),
            |b, (cell, lfp, lpp)| {
                b.iter(|| diagnose(cell, lfp, lpp).expect("diagnoses"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("defect_dictionary_build", name),
            &cell,
            |b, cell| {
                b.iter(|| build_defect_dictionary(cell).expect("builds"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fault_dictionary_build", name),
            &cell,
            |b, cell| {
                b.iter(|| build_fault_dictionary(cell).expect("builds"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_ablation
}
criterion_main!(benches);
