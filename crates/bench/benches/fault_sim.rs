//! Gate-level simulation benchmarks: bit-parallel good simulation
//! throughput and single-fault detection, over circuit size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use icd_bench::pattern_set_for;
use icd_cells::CellLibrary;
use icd_faultsim::{detects, good_simulate, GateFault};
use icd_netlist::generator;

fn bench_good_sim(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let mut group = c.benchmark_group("good_simulate");
    group.sample_size(20);
    for divisor in [2000usize, 500, 100] {
        let cfg = generator::circuit_b().scaled_down(divisor);
        let circuit = generator::generate(&cfg, &logic).expect("generates");
        let patterns = pattern_set_for(&circuit, 64, 1);
        group.throughput(Throughput::Elements(
            (circuit.num_gates() * patterns.len()) as u64,
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.num_gates()),
            &(&circuit, &patterns),
            |b, (circuit, patterns)| {
                b.iter(|| good_simulate(circuit, patterns).expect("simulates"));
            },
        );
    }
    group.finish();
}

fn bench_detects(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let cfg = generator::circuit_b().scaled_down(500);
    let circuit = generator::generate(&cfg, &logic).expect("generates");
    let patterns = pattern_set_for(&circuit, 64, 1);
    let good = good_simulate(&circuit, &patterns).expect("simulates");
    let fault = GateFault::stuck_at(circuit.gate_output(circuit.topo_order()[0]), true);
    c.bench_function("detects_single_fault", |b| {
        b.iter(|| detects(&circuit, &good, &fault));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_good_sim, bench_detects
}
criterion_main!(benches);
