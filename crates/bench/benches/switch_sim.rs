//! Switch-level simulator benchmarks: steady-state evaluation and
//! truth-table extraction across the standard cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icd_cells::CellLibrary;
use icd_switch::Forcing;

fn bench_solve(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let mut group = c.benchmark_group("switch_solve");
    for name in ["INVHVTX1", "AO8DHVTX1", "AN2BHVTX8", "MUX21HVTX6"] {
        let cell = cells.get(name).expect("exists").netlist().clone();
        let bits = vec![true; cell.num_inputs()];
        group.bench_with_input(BenchmarkId::from_parameter(name), &cell, |b, cell| {
            b.iter(|| cell.solve_bits(&bits, &Forcing::none()).expect("solves"));
        });
    }
    group.finish();
}

fn bench_truth_table(c: &mut Criterion) {
    let cells = CellLibrary::standard();
    let mut group = c.benchmark_group("switch_truth_table");
    for name in ["AO7SVTX1", "AO8DHVTX1", "AO9SVTX1"] {
        let cell = cells.get(name).expect("exists").netlist().clone();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cell, |b, cell| {
            b.iter(|| cell.truth_table().expect("extracts"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_solve, bench_truth_table
}
criterion_main!(benches);
