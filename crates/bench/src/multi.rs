//! Multiple simultaneous defects, diagnosed with **no assumptions on
//! failing pattern characteristics**: the inter-cell set cover names one
//! gate per defect without deciding up front which failing pattern
//! belongs to which defect, and each suspected gate receives its own
//! intra-cell diagnosis.

use std::fmt::Write as _;

use icd_defects::{sample_defects, InjectedDefect, MixConfig};
use icd_faultsim::{run_test_multi, FaultyGate};
use icd_netlist::GateId;

use crate::flow::{analyze_datalog, ground_truth_hit, ExperimentContext, FlowError};

/// Result of one multi-defect run.
#[derive(Debug, Clone)]
pub struct MultipletOutcome {
    /// Number of simultaneously injected defects.
    pub injected: usize,
    /// Failing patterns in the merged datalog.
    pub failing_patterns: usize,
    /// Size of the inter-cell set cover.
    pub multiplet_size: usize,
    /// Defective instances that were analyzed intra-cell.
    pub true_gates_analyzed: usize,
    /// Defective instances whose analysis implicated their own ground
    /// truth.
    pub localized: usize,
}

/// Injects `defects.len()` simultaneous defects (one per distinct gate)
/// and runs the full flow on the merged faulty machine.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn run_multiplet(
    ctx: &ExperimentContext,
    targets: &[(GateId, InjectedDefect)],
) -> Result<MultipletOutcome, FlowError> {
    let faulty: Vec<FaultyGate> = targets
        .iter()
        .map(|(gate, injected)| {
            injected
                .characterization
                .behavior
                .clone()
                .map(|b| FaultyGate::new(*gate, b))
                .ok_or(FlowError::NotObservable)
        })
        .collect::<Result<_, _>>()?;
    let datalog = run_test_multi(&ctx.circuit, &ctx.patterns, &faulty)?;
    let outcome = analyze_datalog(ctx, &datalog)?;

    let mut true_gates_analyzed = 0;
    let mut localized = 0;
    for (gate, injected) in targets {
        if let Some(analysis) = outcome.analysis_of(*gate) {
            true_gates_analyzed += 1;
            let cell = ctx
                .cells
                .get(ctx.circuit.gate_type(*gate).name())
                .expect("library cell")
                .netlist();
            if ground_truth_hit(
                cell,
                &analysis.report,
                &injected.characterization.ground_truth,
            ) {
                localized += 1;
            }
        }
    }
    Ok(MultipletOutcome {
        injected: targets.len(),
        failing_patterns: datalog.entries.len(),
        multiplet_size: outcome.analyses.len().min(
            // the set cover proper, not the extra ranked candidates
            targets.len().max(1),
        ),
        true_gates_analyzed,
        localized,
    })
}

/// The multiple-defect experiment: for 1, 2 and 3 simultaneous defects in
/// distinct cells of circuit A, report how many defective instances the
/// flow analyzed and localized.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn multiplet_report() -> Result<String, FlowError> {
    let ctx = ExperimentContext::circuit_a()?;
    let cell_names = ["AO7SVTX1", "AO6CHVTX4", "NR3ASVTX1"];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Multiple-defect diagnosis (circuit A, {} patterns, no failing-pattern assumptions)",
        ctx.patterns.len()
    );
    let _ = writeln!(
        out,
        "{:>9} {:>14} {:>15} {:>10} {:>10}",
        "#defects", "failing pats", "true analyzed", "localized", "verdict"
    );
    for count in 1..=3usize {
        let mut targets = Vec::new();
        for name in cell_names.iter().take(count) {
            if ctx.instances_of(name).is_empty() {
                return Err(FlowError::NoInstance((*name).to_owned()));
            }
            let cell = ctx.cells.get(name).expect("library cell");
            // A stuck-class defect per cell keeps the merged behaviour
            // crisp.
            let mix = MixConfig {
                stuck: 1.0,
                bridge: 0.0,
                delay: 0.0,
                ..MixConfig::default()
            };
            // Sample a small batch and keep the first (instance, defect)
            // pair the applied pattern set actually excites: a defect that
            // never produces a failing pattern is a test escape, not a
            // diagnosable device.
            let sample = sample_defects(cell.netlist(), 8, &mix, 0xdac + count as u64)?;
            let excited = ctx
                .instances_of(name)
                .into_iter()
                .flat_map(|gate| sample.iter().map(move |injected| (gate, injected)))
                .filter_map(|(gate, injected)| {
                    let behavior = injected.characterization.behavior.clone()?;
                    let log = icd_faultsim::run_test(
                        &ctx.circuit,
                        &ctx.patterns,
                        &FaultyGate::new(gate, behavior),
                    )
                    .ok()?;
                    (!log.all_pass()).then(|| (log.entries.len(), gate, injected.clone()))
                })
                .max_by_key(|&(fails, gate, _)| (fails, std::cmp::Reverse(gate)));
            let (_, gate, injected) = excited.ok_or(FlowError::NotObservable)?;
            targets.push((gate, injected));
        }
        let result = run_multiplet(&ctx, &targets)?;
        let _ = writeln!(
            out,
            "{:>9} {:>14} {:>15} {:>10} {:>10}",
            result.injected,
            result.failing_patterns,
            result.true_gates_analyzed,
            result.localized,
            if result.localized == result.injected {
                "all found"
            } else if result.localized > 0 {
                "partial"
            } else {
                "missed"
            }
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplet_report_runs_and_localizes_something() {
        let s = multiplet_report().unwrap();
        assert!(
            s.contains("all found") || s.contains("partial"),
            "no defect localized:\n{s}"
        );
    }
}
