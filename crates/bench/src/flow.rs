//! End-to-end diagnosis flow glue (the paper's Fig. 2).

use std::error::Error;
use std::fmt;

use icd_cells::CellLibrary;
use icd_core::{DiagnosisReport, LocalTest};
use icd_defects::{GroundTruth, InjectedDefect};
use icd_faultsim::{run_test, FaultSimError, FaultyGate};
use icd_intercell::{IntercellError, LocalPattern};
use icd_logic::Pattern;
use icd_netlist::{generator, Circuit, GateId, Library};

/// Errors of the end-to-end flow.
#[derive(Debug)]
pub enum FlowError {
    /// The injected defect has no observable behaviour model.
    NotObservable,
    /// The circuit contains no instance of the requested cell.
    NoInstance(String),
    /// A suspected gate has no local failing pattern — nothing for the
    /// intra-cell engine to work on. A per-gate degradation, never fatal.
    NoLocalFailures,
    /// Tester emulation failed.
    FaultSim(FaultSimError),
    /// Inter-cell diagnosis failed.
    Intercell(IntercellError),
    /// Intra-cell diagnosis failed.
    Core(icd_core::CoreError),
    /// Netlist construction failed.
    Netlist(icd_netlist::NetlistError),
    /// Defect sampling or characterization failed.
    Defect(icd_defects::DefectError),
    /// A batch-engine worker caught a panic while running this unit of
    /// work; the payload is the panic message. The job is poisoned, the
    /// worker and the rest of the batch are not.
    Panicked(String),
    /// The unit of work was cancelled cooperatively before it ran to
    /// completion — its request deadline expired or its submitter gave
    /// up (client disconnect, server drain). Cancellation is checked at
    /// job boundaries only: a job that already started runs to its end,
    /// and a cancelled job never poisons the worker pool.
    Cancelled,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NotObservable => write!(f, "defect has no observable behaviour"),
            FlowError::NoInstance(cell) => {
                write!(f, "circuit contains no instance of cell {cell:?}")
            }
            FlowError::NoLocalFailures => {
                write!(f, "suspected gate has no local failing pattern")
            }
            FlowError::FaultSim(e) => write!(f, "tester emulation failed: {e}"),
            FlowError::Intercell(e) => write!(f, "inter-cell diagnosis failed: {e}"),
            FlowError::Core(e) => write!(f, "intra-cell diagnosis failed: {e}"),
            FlowError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
            FlowError::Defect(e) => write!(f, "defect injection failed: {e}"),
            FlowError::Panicked(msg) => write!(f, "worker caught a panic: {msg}"),
            FlowError::Cancelled => write!(f, "job cancelled before completion"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::NotObservable
            | FlowError::NoInstance(_)
            | FlowError::NoLocalFailures
            | FlowError::Panicked(_)
            | FlowError::Cancelled => None,
            FlowError::FaultSim(e) => Some(e),
            FlowError::Intercell(e) => Some(e),
            FlowError::Core(e) => Some(e),
            FlowError::Netlist(e) => Some(e),
            FlowError::Defect(e) => Some(e),
        }
    }
}

impl From<FaultSimError> for FlowError {
    fn from(e: FaultSimError) -> Self {
        FlowError::FaultSim(e)
    }
}
impl From<IntercellError> for FlowError {
    fn from(e: IntercellError) -> Self {
        FlowError::Intercell(e)
    }
}
impl From<icd_core::CoreError> for FlowError {
    fn from(e: icd_core::CoreError) -> Self {
        FlowError::Core(e)
    }
}
impl From<icd_netlist::NetlistError> for FlowError {
    fn from(e: icd_netlist::NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}
impl From<icd_defects::DefectError> for FlowError {
    fn from(e: icd_defects::DefectError) -> Self {
        FlowError::Defect(e)
    }
}
impl From<icd_switch::SwitchError> for FlowError {
    fn from(e: icd_switch::SwitchError) -> Self {
        FlowError::Defect(icd_defects::DefectError::Switch(e))
    }
}

/// A circuit plus everything the experiments need around it.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The transistor-level cell library.
    pub cells: CellLibrary,
    /// Its gate-level view.
    pub logic: Library,
    /// The device under test.
    pub circuit: Circuit,
    /// The applied test set (ordered).
    pub patterns: Vec<Pattern>,
}

impl ExperimentContext {
    /// Builds a context from a generator preset, scaled by `divisor`, with
    /// `num_patterns` test patterns.
    ///
    /// # Errors
    ///
    /// Returns an error when circuit generation fails.
    pub fn from_preset(
        config: &generator::GeneratorConfig,
        divisor: usize,
        num_patterns: usize,
    ) -> Result<Self, FlowError> {
        let cells = CellLibrary::standard();
        let logic = cells.logic_library();
        let cfg = if divisor > 1 {
            config.scaled_down(divisor)
        } else {
            config.clone()
        };
        let circuit = generator::generate(&cfg, &logic)?;
        let patterns = pattern_set_for(&circuit, num_patterns, cfg.seed ^ 0x7e57);
        Ok(ExperimentContext {
            cells,
            logic,
            circuit,
            patterns,
        })
    }

    /// The paper's circuit A at full size with its 25-pattern transition
    /// test set.
    ///
    /// # Errors
    ///
    /// Returns an error when circuit generation fails.
    pub fn circuit_a() -> Result<Self, FlowError> {
        ExperimentContext::from_preset(&generator::circuit_a(), 1, 25)
    }

    /// Moves the context behind an [`Arc`](std::sync::Arc): the batch
    /// engine's shared immutable artifact (circuit, cell library, pattern
    /// set) borrowed by every worker.
    pub fn into_shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }

    /// All instances of a cell type in the circuit.
    pub fn instances_of(&self, cell_name: &str) -> Vec<GateId> {
        self.circuit
            .gates()
            .filter(|&g| self.circuit.gate_type(g).name() == cell_name)
            .collect()
    }

    /// The first instance of a cell type.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NoInstance`] when the circuit lacks the type.
    pub fn instance_of(&self, cell_name: &str) -> Result<GateId, FlowError> {
        self.instances_of(cell_name)
            .first()
            .copied()
            .ok_or_else(|| FlowError::NoInstance(cell_name.to_owned()))
    }
}

/// Generates an ordered test set sized for experiments: deterministic
/// ATPG (with PODEM top-off) on small circuits, seeded random patterns on
/// large ones — mirroring production practice.
pub fn pattern_set_for(circuit: &Circuit, count: usize, seed: u64) -> Vec<Pattern> {
    if circuit.num_gates() <= 2_000 {
        let cfg = icd_atpg::TestSetConfig {
            target_length: count,
            kind: icd_atpg::FaultKind::Transition,
            random_patterns: count,
            podem_topoff: true,
            max_faults: Some(600),
            seed,
        };
        icd_atpg::generate_test_set(circuit, &cfg)
    } else {
        icd_atpg::random_patterns(circuit, count, seed)
    }
}

/// Converts the DUT-simulation output into the intra-cell engine's input
/// type.
pub fn to_local_tests(local: &[LocalPattern]) -> Vec<LocalTest> {
    local
        .iter()
        .map(|p| LocalTest::two_pattern(p.previous.clone(), p.inputs.clone()))
        .collect()
}

/// The intra-cell analysis of one suspected gate.
#[derive(Debug, Clone)]
pub struct GateAnalysis {
    /// The analyzed gate instance.
    pub gate: GateId,
    /// Local failing pattern count.
    pub lfp: usize,
    /// Local passing pattern count.
    pub lpp: usize,
    /// The intra-cell diagnosis report.
    pub report: DiagnosisReport,
    /// The simulation-ranked refinement of the report.
    pub ranked: icd_core::RankedDiagnosis,
}

/// The result of one end-to-end run.
///
/// As in the paper's flow, "the intra-cell diagnosis is executed for each
/// Suspected Gate": the inter-cell front end returns a candidate list and
/// every top candidate is analyzed.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Failing patterns in the datalog.
    pub failing_patterns: usize,
    /// Intra-cell analyses, in inter-cell rank order.
    pub analyses: Vec<GateAnalysis>,
}

impl FlowOutcome {
    /// Whether the device passed every pattern (test escape).
    pub fn is_escape(&self) -> bool {
        self.failing_patterns == 0
    }

    /// The top-ranked suspected gate's analysis.
    pub fn best(&self) -> Option<&GateAnalysis> {
        self.analyses.first()
    }

    /// The analysis of a specific gate (e.g. the true defective
    /// instance), if it was among the suspects.
    pub fn analysis_of(&self, gate: GateId) -> Option<&GateAnalysis> {
        self.analyses.iter().find(|a| a.gate == gate)
    }
}

/// Whether the intra-cell report implicates the injected defect's
/// location.
pub fn ground_truth_hit(
    cell: &icd_switch::CellNetlist,
    report: &DiagnosisReport,
    truth: &GroundTruth,
) -> bool {
    let nets = report.suspect_nets(cell);
    let transistors = report.suspect_transistors();
    truth.nets.iter().any(|n| nets.contains(n))
        || truth.transistors.iter().any(|t| transistors.contains(t))
}

/// How many top inter-cell candidates receive an intra-cell analysis.
const MAX_ANALYZED_GATES: usize = 4;

/// The stage of the flow in which a per-gate failure occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStage {
    /// DUT simulation / local pattern extraction for a suspected gate.
    LocalExtraction,
    /// Looking the suspected gate's cell up in the transistor-level
    /// library.
    CellLookup,
    /// Intra-cell (switch-level) diagnosis.
    IntraCell,
    /// Simulation-based candidate ranking.
    Ranking,
    /// The whole per-suspect job, when a batch-engine worker had to
    /// contain a panic and could not attribute it to a finer stage.
    Worker,
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlowStage::LocalExtraction => "local pattern extraction",
            FlowStage::CellLookup => "cell lookup",
            FlowStage::IntraCell => "intra-cell diagnosis",
            FlowStage::Ranking => "candidate ranking",
            FlowStage::Worker => "worker execution",
        })
    }
}

/// One suspected gate the staged flow could not analyze, with the stage
/// and structured cause — the audit trail of a degraded diagnosis.
#[derive(Debug)]
pub struct SkippedGate {
    /// The suspected gate.
    pub gate: GateId,
    /// Where its analysis failed.
    pub stage: FlowStage,
    /// Why.
    pub error: FlowError,
}

/// The staged flow's result: every suspect that could be diagnosed plus a
/// structured record of every suspect that could not. One poisoned
/// suspect no longer aborts the whole diagnosis — its failure is recorded
/// in [`FlowReport::skipped`] and the flow continues.
#[derive(Debug)]
pub struct FlowReport {
    /// Failing patterns in the (sanitized) datalog.
    pub failing_patterns: usize,
    /// What datalog sanitation had to repair before diagnosis.
    pub sanitize: icd_faultsim::SanitizeLog,
    /// Intra-cell analyses, in inter-cell rank order.
    pub analyses: Vec<GateAnalysis>,
    /// Suspected gates whose analysis failed, with stage and cause.
    pub skipped: Vec<SkippedGate>,
    /// Failing patterns the inter-cell cover left unexplained.
    pub unexplained: Vec<usize>,
}

impl FlowReport {
    /// Whether the device passed every pattern (test escape).
    pub fn is_escape(&self) -> bool {
        self.failing_patterns == 0
    }

    /// The top-ranked suspected gate's analysis.
    pub fn best(&self) -> Option<&GateAnalysis> {
        self.analyses.first()
    }

    /// The analysis of a specific gate, if it was among the suspects.
    pub fn analysis_of(&self, gate: GateId) -> Option<&GateAnalysis> {
        self.analyses.iter().find(|a| a.gate == gate)
    }

    /// Whether anything was lost on the way: corrupt datalog entries
    /// repaired, suspects skipped on errors, or failing patterns no
    /// candidate explains. A clean run on a clean datalog is not
    /// degraded.
    pub fn is_degraded(&self) -> bool {
        !self.sanitize.is_clean() || !self.skipped.is_empty() || !self.unexplained.is_empty()
    }
}

/// Runs the complete Fig.-2 flow: tester emulation with the injected
/// defect, inter-cell diagnosis, then DUT simulation (local patterns) and
/// intra-cell diagnosis for each top suspected gate.
///
/// # Errors
///
/// Returns an error when the defect is unobservable or any stage fails
/// structurally (a passing device or an empty suspect list are *results*,
/// not errors).
pub fn run_flow(
    ctx: &ExperimentContext,
    target_gate: GateId,
    injected: &InjectedDefect,
) -> Result<FlowOutcome, FlowError> {
    let report = run_flow_report(ctx, target_gate, injected)?;
    outcome_from_report(report)
}

/// [`run_flow`] as a staged runner: per-suspect failures are recorded in
/// the report instead of aborting the flow.
///
/// # Errors
///
/// Returns an error only when a *whole-circuit* stage fails (tester
/// emulation, good-machine simulation, inter-cell diagnosis) — per-gate
/// failures degrade the report instead.
pub fn run_flow_report(
    ctx: &ExperimentContext,
    target_gate: GateId,
    injected: &InjectedDefect,
) -> Result<FlowReport, FlowError> {
    let behavior = injected
        .characterization
        .behavior
        .clone()
        .ok_or(FlowError::NotObservable)?;
    let faulty = FaultyGate::new(target_gate, behavior);
    let datalog = run_test(&ctx.circuit, &ctx.patterns, &faulty)?;
    analyze_datalog_report(ctx, &datalog)
}

/// The inter-cell + intra-cell back half of the flow, reusable for
/// datalogs that did not come from a cell-internal defect (the circuit-C
/// inter-cell case).
///
/// # Errors
///
/// Fails on the first per-gate error (fail-fast, classical behaviour);
/// use [`analyze_datalog_report`] for the graceful variant.
pub fn analyze_datalog(
    ctx: &ExperimentContext,
    datalog: &icd_faultsim::Datalog,
) -> Result<FlowOutcome, FlowError> {
    let report = analyze_datalog_report(ctx, datalog)?;
    outcome_from_report(report)
}

/// Demotes a [`FlowReport`] to the fail-fast [`FlowOutcome`]: the first
/// recorded per-gate *error* is re-raised (a suspect skipped merely for
/// lacking local failing evidence is not an error).
fn outcome_from_report(report: FlowReport) -> Result<FlowOutcome, FlowError> {
    if let Some(skip) = report
        .skipped
        .into_iter()
        .find(|s| !matches!(s.error, FlowError::NoLocalFailures))
    {
        return Err(skip.error);
    }
    Ok(FlowOutcome {
        failing_patterns: report.failing_patterns,
        analyses: report.analyses,
    })
}

/// The graceful, staged back half of the flow.
///
/// The datalog is sanitized first ([`icd_faultsim::Datalog::sanitize`]),
/// so corrupt-but-parseable tester output (duplicated, reordered,
/// out-of-range entries) is repaired and the repairs recorded. Each
/// suspected gate is then analyzed independently: a failure in its local
/// pattern extraction, cell lookup, intra-cell diagnosis or ranking is
/// recorded in [`FlowReport::skipped`] and the remaining suspects still
/// get their diagnosis.
///
/// # Errors
///
/// Returns an error only when a whole-circuit stage fails: good-machine
/// simulation or inter-cell diagnosis.
pub fn analyze_datalog_report(
    ctx: &ExperimentContext,
    datalog: &icd_faultsim::Datalog,
) -> Result<FlowReport, FlowError> {
    let (datalog, sanitize) = {
        let _s = icd_obs::stage("flow.sanitize");
        datalog.sanitize(ctx.circuit.outputs().len())
    };
    let escaped = {
        let _s = icd_obs::stage("flow.escape_check");
        datalog.all_pass()
    };
    if escaped {
        return Ok(FlowReport {
            failing_patterns: 0,
            sanitize,
            analyses: Vec::new(),
            skipped: Vec::new(),
            unexplained: Vec::new(),
        });
    }
    // One shared good simulation for every stage.
    let good = {
        let _s = icd_obs::stage("flow.good_simulate");
        icd_faultsim::good_simulate(&ctx.circuit, &ctx.patterns)?
    };
    let inter = {
        let _s = icd_obs::stage("flow.intercell");
        icd_intercell::diagnose_with_good(&ctx.circuit, &ctx.patterns, &datalog, &good)?
    };
    let gates = select_suspects(&inter);
    let mut analyses = Vec::with_capacity(gates.len());
    let mut skipped = Vec::new();
    for gate in gates {
        match analyze_suspect(ctx, &datalog, &inter, &good, gate, None) {
            Ok(analysis) => analyses.push(analysis),
            Err((stage, error)) => skipped.push(SkippedGate { gate, stage, error }),
        }
    }
    Ok(FlowReport {
        failing_patterns: datalog.entries.len(),
        sanitize,
        analyses,
        skipped,
        unexplained: inter.unexplained,
    })
}

/// The suspected gates the flow analyzes, in deterministic priority
/// order: the multiplet first, then remaining top-ranked candidates up to
/// the analysis budget. This is the flow's job list — the batch engine
/// fans one worker job out per returned gate.
pub fn select_suspects(inter: &icd_intercell::IntercellDiagnosis) -> Vec<GateId> {
    let _s = icd_obs::stage("flow.select_suspects");
    let mut gates: Vec<GateId> = inter.multiplet.clone();
    for c in &inter.candidates {
        if gates.len() >= MAX_ANALYZED_GATES {
            break;
        }
        if !gates.contains(&c.gate) {
            gates.push(c.gate);
        }
    }
    gates
}

/// The per-suspect pipeline: local pattern extraction, cell lookup,
/// intra-cell diagnosis, ranking. Errors carry the failing stage so the
/// staged runner can record exactly where a suspect was lost.
///
/// This is the unit of work of the batch engine: it only *reads* the
/// context, datalog, inter-cell result and good simulation, so jobs for
/// different suspects can run on different threads against the same
/// `Arc`-shared artifacts. `cache`, when provided, shares per-cell-type
/// truth tables and CPT traces across suspects; results are identical
/// with and without it.
///
/// # Errors
///
/// Returns the failing [`FlowStage`] with its cause, exactly as recorded
/// in [`FlowReport::skipped`] by the staged runner.
pub fn analyze_suspect(
    ctx: &ExperimentContext,
    datalog: &icd_faultsim::Datalog,
    inter: &icd_intercell::IntercellDiagnosis,
    good: &icd_faultsim::BitValues,
    gate: GateId,
    cache: Option<&icd_core::AnalysisCache>,
) -> Result<GateAnalysis, (FlowStage, FlowError)> {
    let _suspect = icd_obs::stage("flow.analyze_suspect");
    let local = {
        let _s = icd_obs::stage("flow.local_extraction");
        // Per-gate datalog view: only the failing patterns this gate
        // *explains* (it lies on their critical paths) are local failing
        // evidence; the other defects' failures become locally passing
        // candidates, subject to the observability check. With a single
        // defect this is the identity filter.
        let explained: std::collections::HashSet<usize> = inter
            .candidates
            .iter()
            .find(|c| c.gate == gate)
            .map(|c| c.explained.iter().copied().collect())
            .unwrap_or_default();
        let gate_view = icd_faultsim::Datalog {
            circuit_name: datalog.circuit_name.clone(),
            num_patterns: datalog.num_patterns,
            entries: datalog
                .entries
                .iter()
                .filter(|e| explained.contains(&e.pattern_index))
                .cloned()
                .collect(),
        };
        icd_intercell::extract_local_patterns_with_good(
            &ctx.circuit,
            &ctx.patterns,
            &gate_view,
            gate,
            good,
        )
    }
    .map_err(|e| (FlowStage::LocalExtraction, FlowError::Intercell(e)))?;
    let lfp = to_local_tests(&local.lfp);
    let lpp = to_local_tests(&local.lpp);
    if lfp.is_empty() {
        // This candidate never saw a failing pattern.
        return Err((FlowStage::LocalExtraction, FlowError::NoLocalFailures));
    }
    let cell = ctx
        .cells
        .get(ctx.circuit.gate_type(gate).name())
        .ok_or_else(|| {
            (
                FlowStage::CellLookup,
                FlowError::NoInstance(ctx.circuit.gate_type(gate).name().into()),
            )
        })?
        .netlist();
    let report = {
        let _s = icd_obs::stage("flow.intra_cell");
        icd_core::diagnose_with_cache(cell, &lfp, &lpp, cache)
    }
    .map_err(|e| (FlowStage::IntraCell, FlowError::Core(e)))?;
    let ranked = {
        let _s = icd_obs::stage("flow.ranking");
        icd_core::rank_candidates_with_cache(cell, &report, &lfp, &lpp, cache)
    }
    .map_err(|e| (FlowStage::Ranking, FlowError::Core(e)))?;
    Ok(GateAnalysis {
        gate,
        lfp: lfp.len(),
        lpp: lpp.len(),
        report,
        ranked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_defects::{sample_defects, MixConfig};

    #[test]
    fn circuit_a_flow_locates_an_injected_defect() {
        let ctx = ExperimentContext::circuit_a().unwrap();
        // Inject the first observable stuck-class defect on some AO7SVTX1
        // instance.
        let gate = ctx.instance_of("AO7SVTX1").unwrap();
        let cell = ctx.cells.get("AO7SVTX1").unwrap().netlist();
        let sample = sample_defects(cell, 8, &MixConfig::default(), 11).unwrap();
        let mut any_diagnosed = false;
        for injected in &sample {
            let outcome = run_flow(&ctx, gate, injected).unwrap();
            if outcome.is_escape() {
                continue;
            }
            if let Some(analysis) = outcome.analysis_of(gate) {
                if !analysis.report.is_empty() {
                    any_diagnosed = true;
                    // When the right gate is analyzed, the ground truth
                    // should usually be implicated; assert it for at least
                    // one run.
                    if ground_truth_hit(
                        cell,
                        &analysis.report,
                        &injected.characterization.ground_truth,
                    ) {
                        return;
                    }
                }
            }
        }
        assert!(any_diagnosed, "no defect produced a non-empty diagnosis");
        panic!("no run implicated its injected ground truth");
    }

    #[test]
    fn pattern_set_sizes_are_exact() {
        let ctx = ExperimentContext::circuit_a().unwrap();
        assert_eq!(ctx.patterns.len(), 25);
        assert_eq!(ctx.circuit.num_gates(), 258);
    }

    /// Picks, for `cell_name`, the (instance, defect) pair of a small
    /// stuck-class sample that excites the most failing patterns.
    fn excited_target(
        ctx: &ExperimentContext,
        cell_name: &str,
        seed: u64,
    ) -> (GateId, icd_defects::InjectedDefect) {
        let cell = ctx.cells.get(cell_name).unwrap();
        let mix = MixConfig {
            stuck: 1.0,
            bridge: 0.0,
            delay: 0.0,
            ..MixConfig::default()
        };
        let sample = sample_defects(cell.netlist(), 8, &mix, seed).unwrap();
        ctx.instances_of(cell_name)
            .into_iter()
            .flat_map(|gate| sample.iter().map(move |inj| (gate, inj)))
            .filter_map(|(gate, inj)| {
                let behavior = inj.characterization.behavior.clone()?;
                let log = run_test(
                    &ctx.circuit,
                    &ctx.patterns,
                    &FaultyGate::new(gate, behavior),
                )
                .ok()?;
                (!log.all_pass()).then(|| (log.entries.len(), gate, inj.clone()))
            })
            .max_by_key(|&(fails, gate, _)| (fails, std::cmp::Reverse(gate)))
            .map(|(_, gate, inj)| (gate, inj))
            .expect("some sampled defect is excited")
    }

    #[test]
    fn poisoned_suspect_degrades_but_does_not_abort() {
        // Two simultaneous defects in different cell types; then the
        // library loses one of the cell types. The staged flow must still
        // diagnose the other suspect and record the skip with its stage.
        let mut ctx = ExperimentContext::circuit_a().unwrap();
        let (g1, d1) = excited_target(&ctx, "AO7SVTX1", 0x9050);
        let (g2, d2) = excited_target(&ctx, "AO6CHVTX4", 0x9051);
        let faulty = vec![
            FaultyGate::new(g1, d1.characterization.behavior.clone().unwrap()),
            FaultyGate::new(g2, d2.characterization.behavior.clone().unwrap()),
        ];
        let datalog = icd_faultsim::run_test_multi(&ctx.circuit, &ctx.patterns, &faulty).unwrap();

        // Sanity: the un-poisoned staged flow analyzes both.
        let healthy = analyze_datalog_report(&ctx, &datalog).unwrap();
        assert!(healthy.analysis_of(g1).is_some());
        assert!(healthy.analysis_of(g2).is_some());

        assert!(ctx.cells.remove("AO6CHVTX4"));
        let report = analyze_datalog_report(&ctx, &datalog).unwrap();
        assert!(
            report.analysis_of(g1).is_some(),
            "healthy suspect lost: {:?}",
            report.skipped
        );
        assert!(report.analysis_of(g2).is_none());
        let skip = report
            .skipped
            .iter()
            .find(|s| s.gate == g2)
            .expect("poisoned suspect recorded");
        assert_eq!(skip.stage, FlowStage::CellLookup);
        assert!(matches!(&skip.error, FlowError::NoInstance(name) if name == "AO6CHVTX4"));
        assert!(report.is_degraded());

        // The fail-fast wrapper re-raises the recorded error.
        assert!(matches!(
            analyze_datalog(&ctx, &datalog),
            Err(FlowError::NoInstance(_))
        ));
    }

    #[test]
    fn noisy_datalog_is_sanitized_before_diagnosis() {
        let ctx = ExperimentContext::circuit_a().unwrap();
        let (gate, injected) = excited_target(&ctx, "AO7SVTX1", 0x5a11);
        let behavior = injected.characterization.behavior.clone().unwrap();
        let clean = run_test(
            &ctx.circuit,
            &ctx.patterns,
            &FaultyGate::new(gate, behavior),
        )
        .unwrap();

        // Corrupt the log: duplicate an entry, push one out of range and
        // reverse the order — the classic STDF-conversion mangling.
        let mut noisy = clean.clone();
        noisy.entries.push(noisy.entries[0].clone());
        noisy.entries.push(icd_faultsim::DatalogEntry {
            pattern_index: noisy.num_patterns + 7,
            failing_outputs: vec![0],
        });
        noisy.entries.reverse();

        let clean_report = analyze_datalog_report(&ctx, &clean).unwrap();
        let noisy_report = analyze_datalog_report(&ctx, &noisy).unwrap();
        assert!(!noisy_report.sanitize.is_clean());
        assert!(noisy_report.is_degraded());
        assert_eq!(
            noisy_report.failing_patterns, clean_report.failing_patterns,
            "sanitation restores the clean entry set"
        );
        assert_eq!(
            noisy_report.analysis_of(gate).is_some(),
            clean_report.analysis_of(gate).is_some()
        );
    }

    #[test]
    fn flow_report_on_all_pass_is_clean_escape() {
        let ctx = ExperimentContext::circuit_a().unwrap();
        let empty = icd_faultsim::Datalog {
            circuit_name: ctx.circuit.name().to_owned(),
            num_patterns: ctx.patterns.len(),
            entries: vec![],
        };
        let report = analyze_datalog_report(&ctx, &empty).unwrap();
        assert!(report.is_escape());
        assert!(!report.is_degraded());
        assert!(report.best().is_none());
    }
}
