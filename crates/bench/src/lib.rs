//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment has a binary under `src/bin` (`table1` … `table7`,
//! `circuit_m`, `circuit_c`, `fig1_defect_classes`, `fig4_taxonomy`,
//! `fig6_cpt_walkthrough`, `all_experiments`) and a function here that the
//! binaries, the benchmarks and the integration tests share.
//!
//! Experiments accept a [`RunScale`]: `quick()` shrinks the synthetic
//! circuits and campaign sizes so every experiment finishes in seconds;
//! `full()` uses the paper's circuit sizes and counts (minutes to hours).
//! Pass `--full` to any binary to switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod flow;
pub mod multi;
pub mod noise_sweep;
pub mod silicon;
pub mod tables;

pub use flow::{
    analyze_datalog, analyze_datalog_report, analyze_suspect, pattern_set_for, run_flow,
    run_flow_report, select_suspects, to_local_tests, ExperimentContext, FlowError, FlowOutcome,
    FlowReport, FlowStage, SkippedGate,
};

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Divisor applied to the paper's circuit sizes (1 = full size).
    pub circuit_divisor: usize,
    /// Number of test patterns applied (the paper: 25 for A, 500 for B/H,
    /// 1055 for M, 1000 for C).
    pub patterns: usize,
    /// Instances per cell in the Table-5 campaign (paper: 100).
    pub instances_per_cell: usize,
    /// Defects per instance in the Table-5 campaign (paper: 10).
    pub defects_per_instance: usize,
}

impl RunScale {
    /// Seconds-scale runs: scaled-down circuits, small campaigns.
    pub fn quick() -> Self {
        RunScale {
            circuit_divisor: 2000,
            patterns: 64,
            instances_per_cell: 3,
            defects_per_instance: 3,
        }
    }

    /// Paper-scale structure (still bounded to finish unattended: the
    /// multi-million-gate circuits are divided by 100; see DESIGN.md).
    pub fn full() -> Self {
        RunScale {
            circuit_divisor: 100,
            patterns: 500,
            instances_per_cell: 10,
            defects_per_instance: 10,
        }
    }

    /// Parses `--full` from command-line arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            RunScale::full()
        } else {
            RunScale::quick()
        }
    }
}
