//! Full-scale feasibility check: builds the paper's circuits at their
//! *published* sizes (Table 1/6), runs the 500-pattern good simulation,
//! injects one defect and times every stage of the diagnosis flow.
//!
//! Run with: `cargo run --release -p icd-bench --bin scale_check [--huge]`
//! (`--huge` adds the 2M-gate circuit C).

use std::time::Instant;

use icd_bench::flow::{analyze_datalog, ExperimentContext};
use icd_defects::{characterize, Defect};
use icd_faultsim::{good_simulate, run_test, FaultyGate};
use icd_netlist::generator;

fn check(config: &generator::GeneratorConfig, patterns: usize) {
    println!(
        "=== circuit {} ({} gates, {} FFs, {} chains) ===",
        config.name, config.gates, config.flip_flops, config.scan_chains
    );

    let t0 = Instant::now();
    let ctx = ExperimentContext::from_preset(config, 1, patterns).expect("builds");
    println!(
        "build + pattern generation : {:>8.2}s ({} gates, {} nets, {} patterns)",
        t0.elapsed().as_secs_f64(),
        ctx.circuit.num_gates(),
        ctx.circuit.num_nets(),
        ctx.patterns.len()
    );

    let t0 = Instant::now();
    let good = good_simulate(&ctx.circuit, &ctx.patterns).expect("simulates");
    let elapsed = t0.elapsed().as_secs_f64();
    let gate_evals = ctx.circuit.num_gates() as f64 * ctx.patterns.len() as f64;
    println!(
        "good simulation            : {:>8.2}s ({:.1} M gate-evaluations/s)",
        elapsed,
        gate_evals / elapsed / 1e6
    );
    drop(good);

    // Inject one observable defect into an AO7SVTX1 instance and run the
    // whole flow.
    let cell = ctx.cells.get("AO7SVTX1").expect("library cell").netlist();
    let gate = ctx
        .instance_of("AO7SVTX1")
        .expect("instantiated in a large random circuit");
    let a = cell.find_net("A").expect("input A");
    let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).expect("characterizes");
    let faulty = FaultyGate::new(gate, ch.behavior.expect("observable"));

    let t0 = Instant::now();
    let datalog = run_test(&ctx.circuit, &ctx.patterns, &faulty).expect("tests");
    println!(
        "tester emulation           : {:>8.2}s ({} failing patterns)",
        t0.elapsed().as_secs_f64(),
        datalog.entries.len()
    );
    if datalog.all_pass() {
        println!("defect escaped this random set; flow timing skipped");
        return;
    }

    let t0 = Instant::now();
    let outcome = analyze_datalog(&ctx, &datalog).expect("analyzes");
    println!(
        "inter-cell + intra-cell    : {:>8.2}s ({} gates analyzed)",
        t0.elapsed().as_secs_f64(),
        outcome.analyses.len()
    );
    if let Some(analysis) = outcome.analysis_of(gate) {
        println!(
            "defective instance analyzed: {} candidates over {} nets",
            analysis.report.resolution(),
            analysis.report.net_resolution(cell)
        );
    }
    println!();
}

fn main() {
    let huge = std::env::args().any(|a| a == "--huge");
    check(&generator::circuit_a(), 25);
    check(&generator::circuit_b(), 500);
    if huge {
        check(&generator::circuit_m(), 1055);
        check(&generator::circuit_c(), 1000);
    }
}
