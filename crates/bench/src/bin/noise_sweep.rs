//! Runs the noise-tolerance accuracy sweep (fail-memory truncation and
//! spurious-fail rates).
fn main() {
    match icd_bench::noise_sweep::noise_sweep_report() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("noise_sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
