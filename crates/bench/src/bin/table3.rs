//! Regenerates Table 3 (injected-defect diagnosis on circuit A).
fn main() {
    match icd_bench::tables::table3() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}
