//! Regenerates Table 6 (silicon circuit characteristics). Pass `--full`
//! for paper-scale sizes.
fn main() {
    let scale = icd_bench::RunScale::from_args();
    match icd_bench::tables::table6(scale) {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("table6 failed: {e}");
            std::process::exit(1);
        }
    }
}
