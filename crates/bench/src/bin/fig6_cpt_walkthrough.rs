//! Regenerates the Figs.-6-8 CPT walkthrough on AO8DHVTX1 under "0111".
fn main() {
    match icd_bench::figures::fig6_walkthrough() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
