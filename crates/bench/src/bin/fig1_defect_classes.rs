//! Regenerates the Fig.-1 defect behaviour classes (D1-D4 sweep).
fn main() {
    match icd_bench::figures::fig1_defect_classes() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig1 failed: {e}");
            std::process::exit(1);
        }
    }
}
