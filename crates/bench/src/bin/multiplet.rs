//! Runs the multiple-defect (no-assumptions) experiment.
fn main() {
    match icd_bench::multi::multiplet_report() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("multiplet failed: {e}");
            std::process::exit(1);
        }
    }
}
