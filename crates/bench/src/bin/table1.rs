//! Regenerates Table 1 (circuit characteristics). Pass `--full` for
//! paper-scale sizes.
fn main() {
    let scale = icd_bench::RunScale::from_args();
    match icd_bench::tables::table1(scale) {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
