//! Regenerates the circuit-M case study (Fig. 12: multiple open defect).
fn main() {
    let scale = icd_bench::RunScale::from_args();
    match icd_bench::silicon::circuit_m_report(scale) {
        Ok((s, _)) => print!("{s}"),
        Err(e) => {
            eprintln!("circuit_m failed: {e}");
            std::process::exit(1);
        }
    }
}
