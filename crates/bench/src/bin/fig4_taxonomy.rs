//! Regenerates the Fig.-4 local-pattern taxonomy demonstration.
fn main() {
    match icd_bench::figures::fig4_taxonomy() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
