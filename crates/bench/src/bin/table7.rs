//! Regenerates Table 7 (circuit H silicon case studies H1-H3). Pass
//! `--full` for paper-scale sizes.
fn main() {
    let scale = icd_bench::RunScale::from_args();
    match icd_bench::silicon::table7(scale) {
        Ok((s, _)) => print!("{s}"),
        Err(e) => {
            eprintln!("table7 failed: {e}");
            std::process::exit(1);
        }
    }
}
