//! Regenerates Table 5 (the extensive random defect campaign). Pass
//! `--full` for the larger campaign.
fn main() {
    let scale = icd_bench::RunScale::from_args();
    match icd_bench::tables::table5(scale) {
        Ok((s, _)) => print!("{s}"),
        Err(e) => {
            eprintln!("table5 failed: {e}");
            std::process::exit(1);
        }
    }
}
