//! Regenerates the circuit-C case studies (Fig. 13: inter-cell defect;
//! Fig. 14: dictionary comparison).
fn main() {
    let scale = icd_bench::RunScale::from_args();
    match icd_bench::silicon::circuit_c_report(scale) {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("circuit_c failed: {e}");
            std::process::exit(1);
        }
    }
}
