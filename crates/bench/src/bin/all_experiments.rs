//! Runs every experiment in sequence (the EXPERIMENTS.md source). Pass
//! `--full` for paper-scale sizes.
fn main() {
    let scale = icd_bench::RunScale::from_args();
    let mut failed = false;
    let mut run = |name: &str, result: Result<String, icd_bench::FlowError>| match result {
        Ok(s) => println!("{s}"),
        Err(e) => {
            eprintln!("{name} failed: {e}");
            failed = true;
        }
    };
    run("table1", icd_bench::tables::table1(scale));
    run("table2", icd_bench::tables::table2());
    run("table3", icd_bench::tables::table3());
    run("table4", icd_bench::tables::table4());
    run("table5", icd_bench::tables::table5(scale).map(|(s, _)| s));
    run("table6", icd_bench::tables::table6(scale));
    run("table7", icd_bench::silicon::table7(scale).map(|(s, _)| s));
    run(
        "circuit_m",
        icd_bench::silicon::circuit_m_report(scale).map(|(s, _)| s),
    );
    run("circuit_c", icd_bench::silicon::circuit_c_report(scale));
    run("fig1", icd_bench::figures::fig1_defect_classes());
    run("fig4", icd_bench::figures::fig4_taxonomy());
    run("fig6", icd_bench::figures::fig6_walkthrough());
    if failed {
        std::process::exit(1);
    }
}
