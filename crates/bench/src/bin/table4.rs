//! Regenerates Table 4 (injected-defect diagnosis on circuit A).
fn main() {
    match icd_bench::tables::table4() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("table4 failed: {e}");
            std::process::exit(1);
        }
    }
}
