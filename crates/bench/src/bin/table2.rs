//! Regenerates Table 2 (injected-defect diagnosis on circuit A).
fn main() {
    match icd_bench::tables::table2() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
