//! Regeneration of the paper's conceptual figures: the Fig.-1 defect
//! behaviour classes, the Fig.-4 pattern taxonomy and the Figs.-6–8 CPT
//! walkthrough.

use std::fmt::Write as _;

use icd_cells::CellLibrary;
use icd_core::{diagnose as intra_diagnose, transistor_cpt, LocalTest};
use icd_defects::{characterize, classify, Defect};
use icd_logic::Lv;
use icd_switch::Terminal;

use crate::flow::FlowError;

/// Fig. 1: the four example defects D1–D4 on the AO8DHVTX1 running
/// example, swept over resistance, showing how the behaviour class moves
/// through the bands (stuck / bridge / delay / benign).
///
/// # Errors
///
/// Returns an error when a characterization fails.
pub fn fig1_defect_classes() -> Result<String, FlowError> {
    let cells = CellLibrary::standard();
    let cell = cells.get("AO8DHVTX1").expect("exists").netlist();
    let net118 = cell.find_net("Net118").expect("Net118");
    let net88 = cell.find_net("Net88").expect("Net88");
    let net110 = cell.find_net("Net110").expect("Net110");
    let net106 = cell.find_net("Net106").expect("Net106");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 1 - defect modelling on AO8DHVTX1 (resistance sweep)"
    );
    let _ = writeln!(
        out,
        "{:<34} {:>12} {:>10} {:>12}",
        "defect", "R (ohm)", "class", "observable"
    );
    let gnd = cell.gnd();
    let vdd = cell.vdd();
    type DefectSweep<'a> = (&'a str, Box<dyn Fn(f64) -> Defect>);
    let defs: Vec<DefectSweep<'_>> = vec![
        (
            "D1: Net118-GND short",
            Box::new(move |r| Defect::Short {
                a: net118,
                b: gnd,
                resistance: r,
            }),
        ),
        (
            "D2: Net88-VDD short",
            Box::new(move |r| Defect::Short {
                a: net88,
                b: vdd,
                resistance: r,
            }),
        ),
        (
            "D3: Net110-Net106 short",
            Box::new(move |r| Defect::Short {
                a: net110,
                b: net106,
                resistance: r,
            }),
        ),
        (
            "D4: Net118 open",
            Box::new(move |r| Defect::OpenNet {
                net: net118,
                resistance: r,
            }),
        ),
    ];
    for (name, make) in &defs {
        for r in [50.0, 2_000.0, 200_000.0, 5e7] {
            let defect = make(r);
            let class = classify(cell, &defect)?;
            let ch = characterize(cell, &defect)?;
            let _ = writeln!(
                out,
                "{:<34} {:>12.0} {:>10} {:>12}",
                name,
                r,
                class.to_string(),
                if ch.observable { "yes" } else { "no" }
            );
        }
    }
    Ok(out)
}

/// Fig. 4: the local pattern taxonomy. A static defect keeps
/// `lfp ∩ lpp = ∅` (zones 1/2); a delay defect makes the same local vector
/// fail after a transition and pass when stable (zone 3 ⇒ Definition 3:
/// dynamic only).
///
/// # Errors
///
/// Returns an error when a characterization fails.
pub fn fig4_taxonomy() -> Result<String, FlowError> {
    let cells = CellLibrary::standard();
    let cell = cells.get("AO7NHVTX1").expect("exists").netlist();
    let good = cell.truth_table()?;
    let n = cell.num_inputs();
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4 - failing/passing local pattern taxonomy");

    // Case 1: static defect (input A net shorted to GND).
    let a = cell.find_net("A").expect("A");
    let ch = characterize(cell, &Defect::hard_short(a, cell.gnd()))?;
    let behavior = ch.behavior.expect("observable");
    let mut lfp = Vec::new();
    let mut lpp = Vec::new();
    for combo in 0..(1usize << n) {
        let bits: Vec<bool> = (0..n).map(|k| (combo >> k) & 1 == 1).collect();
        let g = good.eval_bits(&bits);
        let f = behavior.eval(&bits, &bits, g);
        if f.conflicts_with(g) {
            lfp.push(LocalTest::static_vector(bits));
        } else {
            lpp.push(LocalTest::static_vector(bits));
        }
    }
    let report = intra_diagnose(cell, &lfp, &lpp)?;
    let _ = writeln!(
        out,
        "static defect (A-GND short):  |lfp|={} |lpp|={} -> dynamic_only={}",
        lfp.len(),
        lpp.len(),
        report.dynamic_only
    );

    // Case 2: delay defect (resistive open) exercised with two-pattern
    // tests: the same capture vector appears in both sets.
    let n0 = cell.find_transistor("N0").expect("N0");
    let ch = characterize(cell, &Defect::resistive_open(n0, Terminal::Source))?;
    let behavior = ch.behavior.expect("observable");
    let mut lfp = Vec::new();
    let mut lpp = Vec::new();
    for prev in 0..(1usize << n) {
        for cur in 0..(1usize << n) {
            let pb: Vec<bool> = (0..n).map(|k| (prev >> k) & 1 == 1).collect();
            let cb: Vec<bool> = (0..n).map(|k| (cur >> k) & 1 == 1).collect();
            let prev_good = good.eval_bits(&pb);
            let raw = behavior.eval(&pb, &cb, prev_good);
            let eff = if raw == Lv::U { prev_good } else { raw };
            if eff.conflicts_with(good.eval_bits(&cb)) {
                lfp.push(LocalTest::two_pattern(pb, cb));
            } else {
                lpp.push(LocalTest::two_pattern(pb, cb));
            }
        }
    }
    let report = intra_diagnose(cell, &lfp, &lpp)?;
    let _ = writeln!(
        out,
        "delay defect (N0S open):      |lfp|={} |lpp|={} -> dynamic_only={}",
        lfp.len(),
        lpp.len(),
        report.dynamic_only
    );
    let _ = writeln!(
        out,
        "zone 3 (lfp ∩ lpp ≠ ∅) discards the static fault models, as in Definition 3"
    );
    Ok(out)
}

/// Figs. 6–8: the CPT walkthrough on AO8DHVTX1 under the stimulus "0111".
///
/// Prints the trace in marking order with each item's fault-free value.
/// Our AO8DHVTX1 is a reconstruction (see DESIGN.md): the vocabulary
/// matches the paper (T1…T10, Net88/106/110/118) while the exact critical
/// set differs where the paper's figure is inconsistent.
///
/// # Errors
///
/// Returns an error when the switch-level evaluation fails.
pub fn fig6_walkthrough() -> Result<String, FlowError> {
    let cells = CellLibrary::standard();
    let cell = cells.get("AO8DHVTX1").expect("exists").netlist();
    let inputs = [Lv::Zero, Lv::One, Lv::One, Lv::One]; // "0111"
    let outcome = transistor_cpt(cell, &inputs)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figs. 6-8 - transistor-level CPT on AO8DHVTX1, stimulus ABCD=0111"
    );
    let _ = writeln!(
        out,
        "cell: {} transistors, {} nets; output Z = {}",
        cell.num_transistors(),
        cell.num_nets(),
        outcome.values.value(cell.output())
    );
    let _ = writeln!(out, "trace order (item = fault-free value):");
    for item in &outcome.trace {
        let value = outcome
            .suspects
            .value(item)
            .expect("traced items are suspects");
        let _ = writeln!(out, "  {:<8} = {}", item.display(cell), value);
    }
    let _ = writeln!(
        out,
        "critical list ({} items): {}",
        outcome.suspects.len(),
        outcome
            .suspects
            .iter()
            .map(|(i, _)| i.display(cell))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shows_both_taxonomy_zones() {
        let s = fig4_taxonomy().unwrap();
        assert!(s.contains("dynamic_only=false"));
        assert!(s.contains("dynamic_only=true"));
    }

    #[test]
    fn fig6_walkthrough_contains_paper_vocabulary() {
        let s = fig6_walkthrough().unwrap();
        for token in ["Net118", "Net110", "Z", "T5G"] {
            assert!(s.contains(token), "missing {token} in walkthrough:\n{s}");
        }
    }
}
