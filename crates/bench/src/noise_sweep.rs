//! The noise-tolerance accuracy experiment: how well does inter-cell
//! candidate extraction survive a corrupted tester datalog?
//!
//! Two sweeps over seeded circuit/defect combos:
//!
//! * **fail-memory truncation** — testers commonly stop logging after N
//!   failing patterns; the sweep truncates the datalog to N ∈ {1, 5, 10}
//!   entries and checks whether the true defective gate survives in the
//!   ranked candidate set and in the set-cover multiplet;
//! * **spurious fails** — 1–10 % of passing patterns flip to failing on a
//!   random observe point; the sweep compares the exact set cover against
//!   the noise-tolerant options ([`DiagnoseOptions::noise_tolerant`]),
//!   which route isolated spurious fails to `unexplained` instead of
//!   drafting phantom suspects.

use std::fmt::Write as _;

use icd_defects::MixConfig;
use icd_faultsim::{run_test, Corruption, Datalog, FaultyGate, NoiseModel};
use icd_intercell::{diagnose_with_options, DiagnoseOptions};
use icd_netlist::{generator, GateId};

use crate::flow::{ExperimentContext, FlowError};

/// One seeded circuit/defect combo: a circuit, the defective gate, and the
/// clean (uncorrupted) datalog its injected defect produces.
struct Combo {
    ctx: ExperimentContext,
    gate: GateId,
    clean: Datalog,
    good: icd_faultsim::BitValues,
}

/// Per-truncation-depth retention counts.
#[derive(Debug, Clone, Copy)]
pub struct TruncationRow {
    /// Entries kept by the fail memory.
    pub keep: usize,
    /// Combos where the true gate stayed in the ranked candidate set.
    pub in_candidates: usize,
    /// Combos where the true gate stayed in the set-cover multiplet.
    pub in_multiplet: usize,
}

/// Per-spurious-rate comparison of exact vs. noise-tolerant covers.
#[derive(Debug, Clone, Copy)]
pub struct SpuriousRow {
    /// Fraction of passing patterns flipped to failing.
    pub rate: f64,
    /// Combos where the true gate stayed in the candidate set.
    pub in_candidates: usize,
    /// Total multiplet size under the exact cover, summed over combos.
    pub exact_multiplet: usize,
    /// Total multiplet size under the tolerant cover.
    pub tolerant_multiplet: usize,
    /// Failing patterns the tolerant cover declined to explain (the honest
    /// answer for isolated noise), summed over combos.
    pub tolerant_unexplained: usize,
}

/// The sweep's aggregate numbers, exposed for the acceptance test.
#[derive(Debug, Clone)]
pub struct NoiseSweepSummary {
    /// Seeded circuit/defect combos that entered the sweep.
    pub combos: usize,
    /// Truncation sweep, one row per fail-memory depth.
    pub truncation: Vec<TruncationRow>,
    /// Spurious-fail sweep, one row per rate.
    pub spurious: Vec<SpuriousRow>,
}

impl NoiseSweepSummary {
    /// The headline acceptance ratio: fraction of combos whose true gate
    /// survives in the candidate set when the fail memory keeps only 5
    /// entries.
    pub fn truncate_to_5_retention(&self) -> f64 {
        self.truncation
            .iter()
            .find(|r| r.keep == 5)
            .map_or(0.0, |r| r.in_candidates as f64 / self.combos as f64)
    }
}

/// Collects excited circuit/defect combos: `per_circuit` defective gates
/// from each of three seeded ~90-gate circuits, keeping only defects whose
/// clean datalog has at least `min_fails` failing patterns (so truncation
/// actually bites).
fn build_combos(per_circuit: usize, min_fails: usize) -> Result<Vec<Combo>, FlowError> {
    let mix = MixConfig {
        stuck: 1.0,
        bridge: 0.0,
        delay: 0.0,
        ..MixConfig::default()
    };
    let mut combos = Vec::new();
    for circuit_seed in [0xA1u64, 0xA2, 0xA3] {
        let ctx = ExperimentContext::from_preset(
            &generator::GeneratorConfig {
                name: format!("noise{circuit_seed:x}"),
                gates: 90,
                primary_inputs: 8,
                primary_outputs: 6,
                flip_flops: 4,
                scan_chains: 1,
                seed: circuit_seed,
            },
            1,
            32,
        )?;
        let mut found = 0usize;
        for gate in ctx.circuit.gates() {
            if found >= per_circuit {
                break;
            }
            let Some(cell) = ctx.cells.get(ctx.circuit.gate_type(gate).name()) else {
                continue;
            };
            let Ok(sample) = icd_defects::sample_defects(cell.netlist(), 4, &mix, 7) else {
                continue;
            };
            let excited = sample.iter().find_map(|injected| {
                let behavior = injected.characterization.behavior.clone()?;
                let log = run_test(
                    &ctx.circuit,
                    &ctx.patterns,
                    &FaultyGate::new(gate, behavior),
                )
                .ok()?;
                (log.entries.len() >= min_fails).then_some(log)
            });
            if let Some(clean) = excited {
                let good = icd_faultsim::good_simulate(&ctx.circuit, &ctx.patterns)?;
                combos.push(Combo {
                    ctx: ctx.clone(),
                    gate,
                    clean,
                    good,
                });
                found += 1;
            }
        }
    }
    Ok(combos)
}

/// Runs both sweeps and returns the aggregate numbers.
///
/// # Errors
///
/// Returns an error when circuit generation or diagnosis fails
/// structurally (corruption-induced degradation is the measurement, not an
/// error).
pub fn noise_sweep() -> Result<NoiseSweepSummary, FlowError> {
    let combos = build_combos(4, 6)?;

    let mut truncation = Vec::new();
    for keep in [1usize, 5, 10] {
        let mut row = TruncationRow {
            keep,
            in_candidates: 0,
            in_multiplet: 0,
        };
        for (i, combo) in combos.iter().enumerate() {
            let noisy = NoiseModel::single(i as u64, Corruption::TruncateAfter(keep))
                .apply(&combo.clean, combo.ctx.circuit.outputs().len());
            let diag = diagnose_with_options(
                &combo.ctx.circuit,
                &combo.ctx.patterns,
                &noisy,
                &combo.good,
                &DiagnoseOptions::default(),
            )?;
            if diag.candidates.iter().any(|c| c.gate == combo.gate) {
                row.in_candidates += 1;
            }
            if diag.multiplet.contains(&combo.gate) {
                row.in_multiplet += 1;
            }
        }
        truncation.push(row);
    }

    let mut spurious = Vec::new();
    for rate in [0.01f64, 0.05, 0.10] {
        let mut row = SpuriousRow {
            rate,
            in_candidates: 0,
            exact_multiplet: 0,
            tolerant_multiplet: 0,
            tolerant_unexplained: 0,
        };
        for (i, combo) in combos.iter().enumerate() {
            let num_outputs = combo.ctx.circuit.outputs().len();
            let noisy = NoiseModel::single(0x5eed ^ i as u64, Corruption::SpuriousFails { rate })
                .apply(&combo.clean, num_outputs);
            let (noisy, _) = noisy.sanitize(num_outputs);
            let exact = diagnose_with_options(
                &combo.ctx.circuit,
                &combo.ctx.patterns,
                &noisy,
                &combo.good,
                &DiagnoseOptions::default(),
            )?;
            let tolerant = diagnose_with_options(
                &combo.ctx.circuit,
                &combo.ctx.patterns,
                &noisy,
                &combo.good,
                &DiagnoseOptions::noise_tolerant(),
            )?;
            if tolerant.candidates.iter().any(|c| c.gate == combo.gate) {
                row.in_candidates += 1;
            }
            row.exact_multiplet += exact.multiplet.len();
            row.tolerant_multiplet += tolerant.multiplet.len();
            row.tolerant_unexplained += tolerant.unexplained.len();
        }
        spurious.push(row);
    }

    Ok(NoiseSweepSummary {
        combos: combos.len(),
        truncation,
        spurious,
    })
}

/// Renders the sweep as the EXPERIMENTS.md table.
///
/// # Errors
///
/// Same as [`noise_sweep`].
pub fn noise_sweep_report() -> Result<String, FlowError> {
    let s = noise_sweep()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Noise tolerance sweep ({} seeded circuit/defect combos, stuck class, >=6 failing patterns each)",
        s.combos
    );
    let _ = writeln!(out, "\nFail-memory truncation (true gate retention):");
    let _ = writeln!(
        out,
        "{:>8} {:>15} {:>14}",
        "keep N", "in candidates", "in multiplet"
    );
    for r in &s.truncation {
        let _ = writeln!(
            out,
            "{:>8} {:>12}/{:<2} {:>11}/{:<2}",
            r.keep, r.in_candidates, s.combos, r.in_multiplet, s.combos
        );
    }
    let _ = writeln!(out, "\nSpurious fails (exact vs. noise-tolerant cover):");
    let _ = writeln!(
        out,
        "{:>8} {:>15} {:>16} {:>19} {:>22}",
        "rate", "in candidates", "exact multiplet", "tolerant multiplet", "tolerant unexplained"
    );
    for r in &s.spurious {
        let _ = writeln!(
            out,
            "{:>7}% {:>12}/{:<2} {:>16} {:>19} {:>22}",
            (r.rate * 100.0).round() as usize,
            r.in_candidates,
            s.combos,
            r.exact_multiplet,
            r.tolerant_multiplet,
            r.tolerant_unexplained
        );
    }
    let retention = s.truncate_to_5_retention();
    let _ = writeln!(
        out,
        "\ntruncate-to-5 candidate retention: {:.0}% ({} required: >=90%)",
        retention * 100.0,
        if retention >= 0.9 { "PASS" } else { "FAIL" }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE acceptance criterion: under fail-memory truncation to 5
    /// entries the true defect stays in the candidate set on >=90% of
    /// seeded combos.
    #[test]
    fn truncation_to_5_retains_the_true_defect() {
        let s = noise_sweep().unwrap();
        assert!(s.combos >= 10, "sweep too small: {} combos", s.combos);
        assert!(
            s.truncate_to_5_retention() >= 0.9,
            "retention {:.2} below 0.9: {:?}",
            s.truncate_to_5_retention(),
            s.truncation
        );
    }
}
