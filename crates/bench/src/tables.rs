//! Regeneration of the paper's Tables 1–6.

use std::fmt::Write as _;

use icd_cells::TABLE5_CELL_NAMES;
use icd_defects::{sample_defects, BehaviorClass, MixConfig};
use icd_netlist::generator;

use crate::flow::{ground_truth_hit, run_flow, ExperimentContext, FlowError};
use crate::RunScale;

/// Table 1: circuit characteristics (A and B).
///
/// # Errors
///
/// Returns an error when circuit generation fails.
pub fn table1(scale: RunScale) -> Result<String, FlowError> {
    circuit_characteristics(
        "Table 1 - Circuit Characteristics",
        &[generator::circuit_a(), generator::circuit_b()],
        scale,
    )
}

/// Table 6: silicon circuit characteristics (H, M, C).
///
/// # Errors
///
/// Returns an error when circuit generation fails.
pub fn table6(scale: RunScale) -> Result<String, FlowError> {
    circuit_characteristics(
        "Table 6 - Circuit Characteristics (silicon)",
        &[
            generator::circuit_h(),
            generator::circuit_m(),
            generator::circuit_c(),
        ],
        scale,
    )
}

fn circuit_characteristics(
    title: &str,
    presets: &[generator::GeneratorConfig],
    scale: RunScale,
) -> Result<String, FlowError> {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} {:>11} | {:>14} {:>12}",
        "Circuit", "#Gate", "#FlipFlop", "#ScanChain", "built(#gate/d)", "divisor"
    );
    let cells = icd_cells::CellLibrary::standard();
    let logic = cells.logic_library();
    for preset in presets {
        // Paper-declared characteristics.
        let scaled = preset.scaled_down(scale.circuit_divisor);
        let built = generator::generate(&scaled, &logic)?;
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>11} | {:>14} {:>12}",
            preset.name,
            preset.gates,
            preset.flip_flops,
            preset.scan_chains,
            built.num_gates(),
            scale.circuit_divisor,
        );
    }
    let _ = writeln!(
        out,
        "(left: the paper's published characteristics; right: the synthetic\n reproduction actually built at this run's scale)"
    );
    // Shape details of the smallest preset's build, as a synthesis report
    // would show them.
    if let Some(first) = presets.first() {
        let scaled = first.scaled_down(scale.circuit_divisor);
        let built = generator::generate(&scaled, &logic)?;
        let stats = icd_netlist::CircuitStats::of(&built);
        let _ = writeln!(out, "\nshape of {}: {}", scaled.name, stats);
    }
    Ok(out)
}

/// One row of Tables 2–4.
#[derive(Debug, Clone)]
pub struct InjectionRow {
    /// Suspected gate (cell) name.
    pub cell: String,
    /// Cell input count.
    pub inputs: usize,
    /// Cell transistor count (the paper's complexity).
    pub complexity: usize,
    /// Description of the injected defect.
    pub injected: String,
    /// Diagnosis result summary (candidate descriptions).
    pub result: String,
    /// Whether the ground truth is among the candidates.
    pub hit: bool,
    /// Candidate resolution.
    pub resolution: usize,
}

/// Runs one Tables-2/3/4-style experiment: for each named cell, inject an
/// observable defect of `class` into an instance embedded in circuit A,
/// run the full flow and report the intra-cell candidates.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn injection_table(
    class: BehaviorClass,
    cell_names: &[&str],
    seed: u64,
) -> Result<Vec<InjectionRow>, FlowError> {
    let ctx = ExperimentContext::circuit_a()?;
    let mut rows = Vec::new();
    for name in cell_names {
        let cell = match ctx.cells.get(name) {
            Some(c) => c,
            None => continue,
        };
        let gate = match ctx.instance_of(name) {
            Ok(g) => g,
            Err(_) => continue,
        };
        let mix = match class {
            BehaviorClass::StuckLike => MixConfig {
                stuck: 1.0,
                bridge: 0.0,
                delay: 0.0,
                ..MixConfig::default()
            },
            BehaviorClass::BridgeLike => MixConfig {
                stuck: 0.0,
                bridge: 1.0,
                delay: 0.0,
                ..MixConfig::default()
            },
            _ => MixConfig {
                stuck: 0.0,
                bridge: 0.0,
                delay: 1.0,
                ..MixConfig::default()
            },
        };
        // Try sampled defects until one produces failures under the
        // circuit test set (an escape teaches nothing about diagnosis).
        let candidates = sample_defects(cell.netlist(), 12, &mix, seed ^ hash_name(name))?;
        let mut row = None;
        for injected in &candidates {
            let outcome = run_flow(&ctx, gate, injected)?;
            if outcome.is_escape() {
                continue;
            }
            // The paper analyzes every suspected cell; score the analysis
            // of the defective instance when the front end reported it,
            // the top-ranked one otherwise.
            let Some(analysis) = outcome.analysis_of(gate).or_else(|| outcome.best()) else {
                continue;
            };
            let hit = analysis.gate == gate
                && ground_truth_hit(
                    cell.netlist(),
                    &analysis.report,
                    &injected.characterization.ground_truth,
                );
            row = Some(InjectionRow {
                cell: (*name).to_owned(),
                inputs: cell.netlist().num_inputs(),
                complexity: cell.netlist().num_transistors(),
                injected: injected.defect.describe(cell.netlist()),
                result: analysis
                    .report
                    .candidates
                    .iter()
                    .map(|c| c.description.clone())
                    .collect::<Vec<_>>()
                    .join("; "),
                hit,
                resolution: analysis.report.resolution(),
            });
            break;
        }
        if let Some(r) = row {
            rows.push(r);
        }
    }
    Ok(rows)
}

fn hash_name(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31) ^ b as u64)
}

/// Formats Tables 2–4 rows like the paper.
pub fn format_injection_table(title: &str, rows: &[InjectionRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>10} | {:<28} | {:<60} | {:>4} {:>10}",
        "SuspectedGate", "Inputs", "Complexity", "Injected", "Results", "Hit", "Resolution"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>10} | {:<28} | {:<60} | {:>4} {:>10}",
            r.cell,
            r.inputs,
            r.complexity,
            r.injected,
            r.result,
            if r.hit { "yes" } else { "NO" },
            r.resolution,
        );
    }
    out
}

/// Table 2: defects leading to stuck-at faults.
///
/// # Errors
///
/// See [`injection_table`].
pub fn table2() -> Result<String, FlowError> {
    let rows = injection_table(
        BehaviorClass::StuckLike,
        &[
            "AO7SVTX1",
            "NR3ASVTX1",
            "AO6CHVTX4",
            "AO8DHVTX1",
            "AO5NHVTX1",
        ],
        0x7ab1e2,
    )?;
    Ok(format_injection_table(
        "Table 2 - Stuck-at-Faults Results",
        &rows,
    ))
}

/// Table 3: defects leading to bridging faults.
///
/// # Errors
///
/// See [`injection_table`].
pub fn table3() -> Result<String, FlowError> {
    let rows = injection_table(
        BehaviorClass::BridgeLike,
        &[
            "AO7SVTX1",
            "AO7NHVTX1",
            "AO6CHVTX4",
            "AO5NHVTX1",
            "AO9SVTX1",
        ],
        0x7ab1e3,
    )?;
    Ok(format_injection_table(
        "Table 3 - Bridging-Faults Results",
        &rows,
    ))
}

/// Table 4: defects leading to delay faults.
///
/// # Errors
///
/// See [`injection_table`].
pub fn table4() -> Result<String, FlowError> {
    let rows = injection_table(
        BehaviorClass::DelayLike,
        &["AO7NHVTX1", "AO8DHVTX1", "AO5NHVTX1", "AO9SVTX1"],
        0x7ab1e4,
    )?;
    Ok(format_injection_table(
        "Table 4 - Delay-Faults Results",
        &rows,
    ))
}

/// One row of the Table-5 campaign.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Cell name.
    pub cell: String,
    /// Cell input count.
    pub inputs: usize,
    /// Transistor count.
    pub complexity: usize,
    /// Diagnosis runs that produced failures.
    pub runs: usize,
    /// Runs where the injected location was implicated.
    pub hits: usize,
    /// Average location-level resolution over hit runs.
    pub avg_resolution: f64,
    /// Average net-level resolution over hit runs (the paper's
    /// granularity).
    pub avg_net_resolution: f64,
    /// Average simulation-ranked resolution over hit runs (our
    /// resolution-improvement extension).
    pub avg_ranked_resolution: f64,
    /// Test escapes (defect never observed under the test set).
    pub escapes: usize,
}

/// Table 5: the extensive random campaign — for each Table-5 cell,
/// `instances_per_cell` instances in circuit B (scaled), each injected
/// with `defects_per_instance` random defects with the paper's 30/30/40
/// behaviour mix.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn table5(scale: RunScale) -> Result<(String, Vec<CampaignRow>), FlowError> {
    let ctx = ExperimentContext::from_preset(
        &generator::circuit_b(),
        scale.circuit_divisor,
        scale.patterns,
    )?;
    let mut rows = Vec::new();
    for name in TABLE5_CELL_NAMES {
        let Some(cell) = ctx.cells.get(name) else {
            continue;
        };
        let instances = ctx.instances_of(name);
        if instances.is_empty() {
            continue;
        }
        let take = instances.len().min(scale.instances_per_cell);
        let mut runs = 0usize;
        let mut hits = 0usize;
        let mut resolutions = 0usize;
        let mut net_resolutions = 0usize;
        let mut ranked_resolutions = 0usize;
        let mut escapes = 0usize;
        for (i, &gate) in instances.iter().take(take).enumerate() {
            let sample = sample_defects(
                cell.netlist(),
                scale.defects_per_instance,
                &MixConfig::default(),
                0x5a_17 ^ hash_name(name) ^ (i as u64) << 8,
            )?;
            for injected in &sample {
                let outcome = run_flow(&ctx, gate, injected)?;
                if outcome.is_escape() {
                    escapes += 1;
                    continue;
                }
                runs += 1;
                if let Some(analysis) = outcome.analysis_of(gate) {
                    if ground_truth_hit(
                        cell.netlist(),
                        &analysis.report,
                        &injected.characterization.ground_truth,
                    ) {
                        hits += 1;
                        resolutions += analysis.report.resolution();
                        net_resolutions += analysis.report.net_resolution(cell.netlist());
                        ranked_resolutions += analysis.ranked.ranked_resolution();
                    }
                }
            }
        }
        rows.push(CampaignRow {
            cell: name.to_owned(),
            inputs: cell.netlist().num_inputs(),
            complexity: cell.netlist().num_transistors(),
            runs,
            hits,
            avg_resolution: if hits > 0 {
                resolutions as f64 / hits as f64
            } else {
                0.0
            },
            avg_net_resolution: if hits > 0 {
                net_resolutions as f64 / hits as f64
            } else {
                0.0
            },
            avg_ranked_resolution: if hits > 0 {
                ranked_resolutions as f64 / hits as f64
            } else {
                0.0
            },
            escapes,
        });
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 5 - Extensive campaign (circuit B / {}; {} patterns)",
        scale.circuit_divisor, scale.patterns
    );
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>10} {:>6} {:>6} {:>8} {:>12} {:>14} {:>12}",
        "SuspectedGate",
        "Inputs",
        "Complexity",
        "Runs",
        "Hits",
        "Escapes",
        "Resolution",
        "NetResolution",
        "RankedRes"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>10} {:>6} {:>6} {:>8} {:>12.2} {:>14.2} {:>12.2}",
            r.cell,
            r.inputs,
            r.complexity,
            r.runs,
            r.hits,
            r.escapes,
            r.avg_resolution,
            r.avg_net_resolution,
            r.avg_ranked_resolution
        );
    }
    Ok((out, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_paper_numbers() {
        let s = table1(RunScale::quick()).unwrap();
        assert!(s.contains("698804"));
        assert!(s.contains("56373"));
    }

    #[test]
    fn table6_reports_paper_numbers() {
        let s = table6(RunScale::quick()).unwrap();
        assert!(s.contains("1995419"));
        assert!(s.contains("219"));
    }
}
