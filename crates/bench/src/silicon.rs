//! The silicon case studies of §4.2: circuits H (Table 7, Fig. 11),
//! M (Fig. 12) and C (Figs. 13–14).
//!
//! On silicon the ground truth came from physical failure analysis (FIB
//! cross-sections); here the injected defect *is* the ground truth and the
//! "PFA" step is a programmatic check that the diagnosis implicated it.

use std::fmt::Write as _;
use std::time::Instant;

use icd_core::{diagnose as intra_diagnose, LocalTest};
use icd_defects::{
    build_defect_dictionary, build_fault_dictionary, characterize, dictionary_diagnose, Defect,
    GroundTruth, InjectedDefect, ObservedTest,
};
use icd_faultsim::{run_test_gate_fault, FaultyBehavior, FaultyGate, GateFault};
use icd_logic::Lv;
use icd_netlist::generator;
use icd_switch::{Forcing, Terminal};

use crate::flow::{ground_truth_hit, run_flow, ExperimentContext, FlowError};
use crate::RunScale;

/// One silicon-style case study result.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Sample name (H1, H2, H3, M, C1, C2).
    pub sample: String,
    /// What was physically injected (the "actual defect" of Table 7).
    pub actual_defect: String,
    /// The intra-cell diagnosis candidates.
    pub intra_result: String,
    /// Whether the candidates include the actual defect.
    pub pfa_confirms: bool,
}

fn case_from_flow(
    ctx: &ExperimentContext,
    sample: &str,
    cell_name: &str,
    injected: &InjectedDefect,
) -> Result<CaseStudy, FlowError> {
    let gate = ctx.instance_of(cell_name)?;
    let cell = ctx
        .cells
        .get(cell_name)
        .expect("cell exists in the standard library")
        .netlist();
    let outcome = run_flow(ctx, gate, injected)?;
    let analysis = outcome.analysis_of(gate).or_else(|| outcome.best());
    let (intra_result, pfa_confirms) = match analysis {
        None => ("device passed (escape)".to_owned(), false),
        Some(a) if a.report.is_empty() => ("empty list: defect outside the cell".to_owned(), false),
        Some(a) => (
            a.report
                .candidates
                .iter()
                .map(|c| c.description.clone())
                .collect::<Vec<_>>()
                .join("; "),
            a.gate == gate
                && ground_truth_hit(cell, &a.report, &injected.characterization.ground_truth),
        ),
    };
    Ok(CaseStudy {
        sample: sample.to_owned(),
        actual_defect: injected.defect.describe(cell),
        intra_result,
        pfa_confirms,
    })
}

/// Circuit H, sample H1: a metal bridge between input A and output Z of an
/// AOI cell (Fig. 11). Intra-cell diagnosis reports the A-aggressor bridge
/// couples.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn case_h1(ctx: &ExperimentContext) -> Result<CaseStudy, FlowError> {
    let cell = ctx.cells.get("AO7HVTX1").expect("exists").netlist();
    let z = cell.output();
    let a = cell.find_net("A").expect("input A exists");
    let defect = Defect::hard_short(z, a);
    let ch = characterize(cell, &defect)?;
    case_from_flow(
        ctx,
        "H1",
        "AO7HVTX1",
        &InjectedDefect {
            defect,
            characterization: ch,
        },
    )
}

/// Circuit H, sample H2: the internal pull-up node `Net61` shorted to GND
/// (metal-1 bridging with ground ⇒ stuck-at-0 behaviour).
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn case_h2(ctx: &ExperimentContext) -> Result<CaseStudy, FlowError> {
    let cell = ctx.cells.get("AO7HVTX1").expect("exists").netlist();
    let net61 = cell.find_net("Net61").expect("Net61 exists");
    let defect = Defect::hard_short(net61, cell.gnd());
    let ch = characterize(cell, &defect)?;
    case_from_flow(
        ctx,
        "H2",
        "AO7HVTX1",
        &InjectedDefect {
            defect,
            characterization: ch,
        },
    )
}

/// Circuit H, sample H3: a resistive metal-1 open at the source of `N0`
/// (slow-to-rise behaviour at input A of the suspected cell).
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn case_h3(ctx: &ExperimentContext) -> Result<CaseStudy, FlowError> {
    let cell = ctx.cells.get("AO7NHVTX1").expect("exists").netlist();
    let n0 = cell.find_transistor("N0").expect("N0 exists");
    let defect = Defect::resistive_open(n0, Terminal::Source);
    let ch = characterize(cell, &defect)?;
    case_from_flow(
        ctx,
        "H3",
        "AO7NHVTX1",
        &InjectedDefect {
            defect,
            characterization: ch,
        },
    )
}

/// Circuit M (Fig. 12): a *multiple* open defect — several deformed
/// contacts in one AO7HVTX1 instance. The single-defect diagnosis reports
/// equivalent opens whose locations include the real defect region.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn case_m(ctx: &ExperimentContext) -> Result<CaseStudy, FlowError> {
    let cell_name = "AO7HVTX1";
    let cell = ctx.cells.get(cell_name).expect("exists").netlist();
    // Several deformed contacts in one physical region: the whole
    // T2/T3 pull-up branch from Net61 to Z never conducts (paper Fig. 12:
    // 5 missing contacts on adjacent devices).
    let t2 = cell.find_transistor("T2").expect("T2");
    let t3 = cell.find_transistor("T3").expect("T3");
    let forcing = Forcing::none()
        .override_gate(t2, Lv::One) // pMOS stuck off
        .override_gate(t3, Lv::One); // pMOS stuck off
    let table = cell.truth_table_with(&forcing)?;
    // PFA-time leakage assumption: the output node, never pulled up with
    // its whole pull-up branch dead, leaks to ground — the floating
    // entries read as 0 on the tester.
    let table = icd_logic::TruthTable::from_entries(
        table.inputs(),
        table
            .entries()
            .iter()
            .map(|&v| if v == Lv::U { Lv::Zero } else { v })
            .collect(),
    )
    .expect("entry count unchanged");
    let behavior = FaultyBehavior::Static(table);
    let description = "multiple open (T2,T3 channel contacts)".to_owned();

    let gate = ctx.instance_of(cell_name)?;
    let faulty = FaultyGate::new(gate, behavior);
    let datalog = icd_faultsim::run_test(&ctx.circuit, &ctx.patterns, &faulty)?;
    let outcome = crate::flow::analyze_datalog(ctx, &datalog)?;
    let Some(analysis) = outcome.analysis_of(gate).or_else(|| outcome.best()) else {
        return Ok(CaseStudy {
            sample: "M".into(),
            actual_defect: description,
            intra_result: "device passed (escape)".into(),
            pfa_confirms: false,
        });
    };
    let truth = GroundTruth {
        nets: vec![cell.find_net("Net61").expect("Net61")],
        transistors: vec![t2, t3],
        description: description.clone(),
    };
    let hit = analysis.gate == gate && ground_truth_hit(cell, &analysis.report, &truth);
    Ok(CaseStudy {
        sample: "M".into(),
        actual_defect: description,
        intra_result: analysis
            .report
            .candidates
            .iter()
            .map(|c| c.description.clone())
            .collect::<Vec<_>>()
            .join("; "),
        pfa_confirms: hit,
    })
}

/// Circuit C, first case (Fig. 13): the actual defect is an *inter-cell*
/// bridge between two routing nets. The intra-cell diagnosis of the
/// suspected gate returns an **empty** list, redirecting PFA outside the
/// cell — which is the correct answer here, so `pfa_confirms` is true
/// exactly when the list is empty.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn case_c1(ctx: &ExperimentContext) -> Result<CaseStudy, FlowError> {
    // Pick two nets from different cones: an early gate output (victim)
    // and a far-away one (aggressor).
    let gates: Vec<_> = ctx.circuit.gates().collect();
    let victim = ctx.circuit.gate_output(gates[gates.len() / 3]);
    let aggressor = ctx.circuit.gate_output(gates[2 * gates.len() / 3]);
    let fault = GateFault::Bridging { victim, aggressor };
    let datalog = run_test_gate_fault(&ctx.circuit, &ctx.patterns, &fault)?;
    if datalog.all_pass() {
        return Ok(CaseStudy {
            sample: "C1".into(),
            actual_defect: "inter-cell bridge (never excited)".into(),
            intra_result: "device passed (escape)".into(),
            pfa_confirms: false,
        });
    }
    let outcome = crate::flow::analyze_datalog(ctx, &datalog)?;
    let Some(analysis) = outcome.best() else {
        return Ok(CaseStudy {
            sample: "C1".into(),
            actual_defect: "inter-cell bridge".into(),
            intra_result: "no inter-cell candidate".into(),
            pfa_confirms: false,
        });
    };
    let report = &analysis.report;
    Ok(CaseStudy {
        sample: "C1".into(),
        actual_defect: format!(
            "inter-cell bridge {}<-{}",
            ctx.circuit.net_name(victim),
            ctx.circuit.net_name(aggressor)
        ),
        intra_result: if report.is_empty() {
            "empty list: defect outside the cell".into()
        } else {
            report
                .candidates
                .iter()
                .map(|c| c.description.clone())
                .collect::<Vec<_>>()
                .join("; ")
        },
        pfa_confirms: report.is_empty(),
    })
}

/// Circuit C, second case (Fig. 14): comparison with the defect- and
/// fault-dictionary baselines on one cell. All approaches should implicate
/// the same short; the cost differs (`O(n²)` dictionary build vs two
/// simulations per pattern).
#[derive(Debug, Clone)]
pub struct DictionaryComparison {
    /// Candidate count from the effect-cause CPT diagnosis.
    pub cpt_candidates: usize,
    /// Candidate count from the defect dictionary.
    pub defect_dict_candidates: usize,
    /// Candidate count from the fault dictionary.
    pub fault_dict_candidates: usize,
    /// Entries simulated to build the defect dictionary.
    pub defect_dict_size: usize,
    /// Entries simulated to build the fault dictionary.
    pub fault_dict_size: usize,
    /// Wall-clock seconds: CPT diagnosis.
    pub cpt_seconds: f64,
    /// Wall-clock seconds: defect-dictionary build + look-up.
    pub defect_dict_seconds: f64,
    /// Wall-clock seconds: fault-dictionary build + look-up.
    pub fault_dict_seconds: f64,
    /// Whether all three implicate the injected location.
    pub all_hit: bool,
}

/// Runs the circuit-C dictionary comparison.
///
/// # Errors
///
/// Returns an error when a characterization fails.
pub fn case_c2() -> Result<DictionaryComparison, FlowError> {
    let cells = icd_cells::CellLibrary::standard();
    let cell = cells.get("AO6CHVTX4").expect("exists").netlist();
    // The actual defect: the first-stage output N125 shorted to the
    // stronger input-A routing (a dominant bridge between two nets, as in
    // Fig. 14).
    let n125 = cell.find_net("N125").expect("N125");
    let a_net = cell.find_net("A").expect("A");
    let defect = Defect::hard_short(n125, a_net);
    let ch = characterize(cell, &defect)?;
    let behavior = ch.behavior.clone().expect("observable short");

    // Cell-level observations: exhaustive two-pattern outcomes.
    let good = cell.truth_table()?;
    let n = cell.num_inputs();
    let mut observed = Vec::new();
    let mut lfp: Vec<LocalTest> = Vec::new();
    let mut lpp: Vec<LocalTest> = Vec::new();
    for prev in 0..(1usize << n) {
        for cur in 0..(1usize << n) {
            let pb: Vec<bool> = (0..n).map(|k| (prev >> k) & 1 == 1).collect();
            let cb: Vec<bool> = (0..n).map(|k| (cur >> k) & 1 == 1).collect();
            let prev_good = good.eval_bits(&pb);
            let raw = behavior.eval(&pb, &cb, prev_good);
            let eff = if raw == Lv::U { prev_good } else { raw };
            let failing = eff.conflicts_with(good.eval_bits(&cb));
            observed.push(ObservedTest {
                previous: pb.clone(),
                inputs: cb.clone(),
                failing,
            });
            if failing {
                lfp.push(LocalTest::two_pattern(pb.clone(), cb.clone()));
            } else {
                lpp.push(LocalTest::two_pattern(pb.clone(), cb.clone()));
            }
        }
    }

    // Effect-cause CPT diagnosis.
    let t0 = Instant::now();
    let report = intra_diagnose(cell, &lfp, &lpp)?;
    let cpt_seconds = t0.elapsed().as_secs_f64();

    // Defect dictionary.
    let t0 = Instant::now();
    let ddict = build_defect_dictionary(cell)?;
    let dd_hits = dictionary_diagnose(cell, &ddict, &observed);
    let defect_dict_seconds = t0.elapsed().as_secs_f64();

    // Fault dictionary.
    let t0 = Instant::now();
    let fdict = build_fault_dictionary(cell)?;
    let fd_hits = dictionary_diagnose(cell, &fdict, &observed);
    let fault_dict_seconds = t0.elapsed().as_secs_f64();

    let cpt_hit =
        report.suspect_nets(cell).contains(&n125) || report.suspect_nets(cell).contains(&a_net);
    let dd_hit = dd_hits.iter().any(|e| {
        e.characterization.ground_truth.nets.contains(&n125)
            || e.characterization.ground_truth.nets.contains(&a_net)
    });
    let fd_hit = fd_hits.iter().any(|e| {
        e.characterization.ground_truth.nets.contains(&n125)
            || e.characterization.ground_truth.nets.contains(&a_net)
    });

    Ok(DictionaryComparison {
        cpt_candidates: report.resolution(),
        defect_dict_candidates: dd_hits.len(),
        fault_dict_candidates: fd_hits.len(),
        defect_dict_size: ddict.len(),
        fault_dict_size: fdict.len(),
        cpt_seconds,
        defect_dict_seconds,
        fault_dict_seconds,
        all_hit: cpt_hit && dd_hit && fd_hit,
    })
}

/// Runs the whole Table-7 set on circuit H and formats it like the paper.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn table7(scale: RunScale) -> Result<(String, Vec<CaseStudy>), FlowError> {
    let ctx = ExperimentContext::from_preset(
        &generator::circuit_h(),
        scale.circuit_divisor,
        scale.patterns,
    )?;
    let cases = vec![case_h1(&ctx)?, case_h2(&ctx)?, case_h3(&ctx)?];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 7 - Logic diag vs intra-cell diag vs actual defect (circuit H/{}; {} patterns)",
        scale.circuit_divisor, scale.patterns
    );
    let _ = writeln!(
        out,
        "{:<7} | {:<34} | {:<60} | PFA confirms",
        "Sample", "Actual defect", "Intra-cell diagnosis"
    );
    for c in &cases {
        let _ = writeln!(
            out,
            "{:<7} | {:<34} | {:<60} | {}",
            c.sample,
            c.actual_defect,
            c.intra_result,
            if c.pfa_confirms { "yes" } else { "NO" }
        );
    }
    Ok((out, cases))
}

/// Formats the circuit-M case study.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn circuit_m_report(scale: RunScale) -> Result<(String, CaseStudy), FlowError> {
    let ctx = ExperimentContext::from_preset(
        &generator::circuit_m(),
        scale.circuit_divisor,
        scale.patterns,
    )?;
    let case = case_m(&ctx)?;
    let mut out = String::new();
    let _ = writeln!(out, "Circuit M (Fig. 12) - multiple open defect");
    let _ = writeln!(out, "actual defect : {}", case.actual_defect);
    let _ = writeln!(out, "intra-cell    : {}", case.intra_result);
    let _ = writeln!(
        out,
        "PFA check     : {} (single-defect diagnosis must still point into the defect region)",
        if case.pfa_confirms {
            "confirmed"
        } else {
            "NOT confirmed"
        }
    );
    Ok((out, case))
}

/// Formats the two circuit-C case studies.
///
/// # Errors
///
/// Returns an error when a stage fails structurally.
pub fn circuit_c_report(scale: RunScale) -> Result<String, FlowError> {
    let ctx = ExperimentContext::from_preset(
        &generator::circuit_c(),
        scale.circuit_divisor,
        scale.patterns,
    )?;
    let c1 = case_c1(&ctx)?;
    let cmp = case_c2()?;
    let mut out = String::new();
    let _ = writeln!(out, "Circuit C case 1 (Fig. 13) - inter-cell defect");
    let _ = writeln!(out, "actual defect : {}", c1.actual_defect);
    let _ = writeln!(out, "intra-cell    : {}", c1.intra_result);
    let _ = writeln!(
        out,
        "verdict       : {}",
        if c1.pfa_confirms {
            "empty suspect list redirects PFA outside the cell (correct)"
        } else {
            "unexpected non-empty list"
        }
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "Circuit C case 2 (Fig. 14) - dictionary comparison");
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>14} {:>12}",
        "approach", "candidates", "sims/entries", "seconds"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>14} {:>12.4}",
        "effect-cause CPT", cmp.cpt_candidates, "2/pattern", cmp.cpt_seconds
    );
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>14} {:>12.4}",
        "defect dictionary",
        cmp.defect_dict_candidates,
        cmp.defect_dict_size,
        cmp.defect_dict_seconds
    );
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>14} {:>12.4}",
        "fault dictionary", cmp.fault_dict_candidates, cmp.fault_dict_size, cmp.fault_dict_seconds
    );
    let _ = writeln!(
        out,
        "all approaches implicate the actual short: {}",
        if cmp.all_hit { "yes" } else { "NO" }
    );
    Ok(out)
}
