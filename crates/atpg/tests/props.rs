//! Property-based tests for test generation: PODEM's patterns must
//! actually detect their target faults under any completion of the
//! unspecified inputs.

use icd_atpg::{justify, podem, transition_pair};
use icd_cells::CellLibrary;
use icd_faultsim::{detects_any, good_simulate, ternary_simulate, GateFault};
use icd_logic::{Lv, Pattern};
use icd_netlist::{generator, Circuit};
use proptest::prelude::*;

fn random_circuit(seed: u64, gates: usize) -> Circuit {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let cfg = generator::GeneratorConfig {
        name: format!("p{seed}"),
        gates,
        primary_inputs: 5,
        primary_outputs: 5,
        flip_flops: 0,
        scan_chains: 0,
        seed,
    };
    generator::generate(&cfg, &logic).expect("generates")
}

fn fill(pattern: &Pattern, with: bool) -> Pattern {
    Pattern::new(
        pattern
            .iter()
            .map(|&v| if v == Lv::U { Lv::from(with) } else { v }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whenever PODEM produces a pattern, the pattern detects the fault —
    /// for both the all-zeros and all-ones completion of the unspecified
    /// positions (PODEM's success condition is completion-independent).
    #[test]
    fn podem_patterns_detect_their_fault(seed in any::<u64>(), gates in 5usize..40) {
        let circuit = random_circuit(seed, gates);
        // Test a handful of stuck-at faults on gate outputs.
        for g in circuit.gates().take(6) {
            let net = circuit.gate_output(g);
            for value in [false, true] {
                let fault = GateFault::stuck_at(net, value);
                if let Some(p) = podem(&circuit, &fault, 4000) {
                    for completion in [false, true] {
                        let filled = fill(&p, completion);
                        let good = good_simulate(&circuit, &[filled]).expect("simulates");
                        prop_assert!(
                            detects_any(&circuit, &good, &fault),
                            "{fault} not detected by {p} (fill {completion})"
                        );
                    }
                }
            }
        }
    }

    /// Whenever `justify` produces a pattern, the net really takes the
    /// requested value.
    #[test]
    fn justify_sets_the_requested_value(seed in any::<u64>(), gates in 5usize..40) {
        let circuit = random_circuit(seed, gates);
        for g in circuit.gates().take(6) {
            let net = circuit.gate_output(g);
            for value in [false, true] {
                if let Some(p) = justify(&circuit, net, value, 4000) {
                    let vals = ternary_simulate(&circuit, &p).expect("simulates");
                    prop_assert_eq!(
                        vals[net.index()],
                        Lv::from(value),
                        "justify({}, {}) produced {}",
                        circuit.net_name(net),
                        value,
                        p
                    );
                }
            }
        }
    }

    /// Whenever a transition pair is produced, applying (launch, capture)
    /// consecutively detects the transition fault.
    #[test]
    fn transition_pairs_detect_their_fault(seed in any::<u64>(), gates in 5usize..40) {
        let circuit = random_circuit(seed, gates);
        for g in circuit.gates().take(4) {
            let net = circuit.gate_output(g);
            for fault in [GateFault::SlowToRise { net }, GateFault::SlowToFall { net }] {
                if let Some((launch, capture)) = transition_pair(&circuit, &fault, 4000) {
                    let pats = vec![fill(&launch, false), fill(&capture, false)];
                    let good = good_simulate(&circuit, &pats).expect("simulates");
                    let det = icd_faultsim::detects(&circuit, &good, &fault);
                    prop_assert!(det[1], "{fault} not detected by its pair");
                }
            }
        }
    }
}
