use icd_faultsim::{good_simulate, GateFault};
use icd_logic::{Lv, Pattern};
use icd_netlist::Circuit;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{podem, transition_pair};

/// Which fault model a test set targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Single stuck-at faults.
    StuckAt,
    /// Transition (slow-to-rise / slow-to-fall) faults.
    Transition,
}

/// Configuration for [`generate_test_set`].
#[derive(Debug, Clone)]
pub struct TestSetConfig {
    /// Exact number of patterns to produce (the paper's test lengths: 25,
    /// 500, 1000, 1055).
    pub target_length: usize,
    /// Targeted fault model.
    pub kind: FaultKind,
    /// Random patterns generated before compaction / top-off.
    pub random_patterns: usize,
    /// Whether to run deterministic PODEM top-off for undetected faults.
    /// Disable on multi-million-gate circuits where random patterns are the
    /// realistic choice.
    pub podem_topoff: bool,
    /// Cap on the number of faults considered (seeded sample); `None`
    /// targets the full fault list.
    pub max_faults: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl TestSetConfig {
    /// A sensible configuration targeting transition faults — the paper's
    /// §4.1 setup ("test sets target transition fault models").
    pub fn transition(target_length: usize, seed: u64) -> Self {
        TestSetConfig {
            target_length,
            kind: FaultKind::Transition,
            random_patterns: target_length * 2,
            podem_topoff: true,
            max_faults: Some(4000),
            seed,
        }
    }

    /// A stuck-at-targeted configuration.
    pub fn stuck_at(target_length: usize, seed: u64) -> Self {
        TestSetConfig {
            target_length,
            kind: FaultKind::StuckAt,
            random_patterns: target_length * 2,
            podem_topoff: true,
            max_faults: Some(4000),
            seed,
        }
    }
}

/// Generates `count` uniformly random fully specified patterns.
pub fn random_patterns(circuit: &Circuit, count: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = circuit.inputs().len();
    (0..count)
        .map(|_| Pattern::from_bits((0..width).map(|_| rng.random_bool(0.5))))
        .collect()
}

fn fill_unknowns(pattern: &Pattern, rng: &mut StdRng) -> Pattern {
    Pattern::new(pattern.iter().map(|&v| {
        if v == Lv::U {
            Lv::from(rng.random_bool(0.5))
        } else {
            v
        }
    }))
}

fn fault_list(circuit: &Circuit, kind: FaultKind, cap: Option<usize>, seed: u64) -> Vec<GateFault> {
    let mut faults = match kind {
        // Structural equivalence collapsing: one representative per class.
        FaultKind::StuckAt => crate::collapse_stuck_at(circuit).representatives,
        FaultKind::Transition => icd_faultsim::enumerate_transitions(circuit),
    };
    if let Some(cap) = cap {
        if faults.len() > cap {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            faults.shuffle(&mut rng);
            faults.truncate(cap);
        }
    }
    faults
}

/// Fraction of `faults` detected by the ordered pattern sequence.
///
/// # Panics
///
/// Panics if the patterns are malformed for the circuit.
pub fn fault_coverage(circuit: &Circuit, patterns: &[Pattern], faults: &[GateFault]) -> f64 {
    if faults.is_empty() {
        return 1.0;
    }
    let good = good_simulate(circuit, patterns).expect("well-formed patterns");
    // Fault-dropping campaign: each fault simulates only until its first
    // detection.
    let detected = icd_faultsim::first_detections(circuit, &good, faults)
        .iter()
        .filter(|d| d.is_some())
        .count();
    detected as f64 / faults.len() as f64
}

/// Generates an ordered test set of exactly `config.target_length` fully
/// specified patterns: a seeded random phase, greedy useless-pattern
/// removal (stuck-at only — dropping patterns would change the transition
/// pairing of an ordered sequence), deterministic PODEM top-off for the
/// remaining undetected faults, then padding/truncation to the target
/// length.
///
/// # Panics
///
/// Panics if the circuit has no inputs.
pub fn generate_test_set(circuit: &Circuit, config: &TestSetConfig) -> Vec<Pattern> {
    assert!(
        !circuit.inputs().is_empty(),
        "cannot generate tests for a circuit without inputs"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let faults = fault_list(circuit, config.kind, config.max_faults, config.seed);

    let mut patterns = random_patterns(circuit, config.random_patterns, config.seed ^ 0xabcd);
    let mut undetected: Vec<GateFault> = Vec::new();

    if patterns.is_empty() {
        undetected = faults.clone();
    } else {
        let good = good_simulate(circuit, &patterns).expect("random patterns are well-formed");
        match config.kind {
            FaultKind::StuckAt => {
                // Greedy selection: keep each pattern only if it is the
                // first detector of some fault. Only the first detection
                // matters, so detected faults are dropped mid-sweep.
                let mut keep = vec![false; patterns.len()];
                let firsts = icd_faultsim::first_detections(circuit, &good, &faults);
                for (fault, first) in faults.iter().zip(&firsts) {
                    match first {
                        Some(t) => keep[*t] = true,
                        None => undetected.push(*fault),
                    }
                }
                patterns = patterns
                    .into_iter()
                    .zip(keep)
                    .filter_map(|(p, k)| k.then_some(p))
                    .collect();
            }
            FaultKind::Transition => {
                // Ordered sequence: no compaction, only coverage analysis
                // (with fault dropping).
                let firsts = icd_faultsim::first_detections(circuit, &good, &faults);
                for (fault, first) in faults.iter().zip(&firsts) {
                    if first.is_none() {
                        undetected.push(*fault);
                    }
                }
            }
        }
    }

    if config.podem_topoff {
        for fault in &undetected {
            if patterns.len() >= config.target_length {
                break;
            }
            match config.kind {
                FaultKind::StuckAt => {
                    if let Some(p) = podem(circuit, fault, 2000) {
                        patterns.push(fill_unknowns(&p, &mut rng));
                    }
                }
                FaultKind::Transition => {
                    if let Some((launch, capture)) = transition_pair(circuit, fault, 2000) {
                        patterns.push(fill_unknowns(&launch, &mut rng));
                        patterns.push(fill_unknowns(&capture, &mut rng));
                    }
                }
            }
        }
    }

    // Normalize to the target length.
    patterns.truncate(config.target_length);
    let missing = config.target_length - patterns.len();
    if missing > 0 {
        patterns.extend(random_patterns(circuit, missing, config.seed ^ 0xffff));
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    /// A small tree of NAND gates.
    fn circuit(lib: &Library) -> Circuit {
        let mut bld = CircuitBuilder::new("tree", lib);
        let pis: Vec<_> = (0..4).map(|i| bld.add_input(&format!("a{i}"))).collect();
        let x = bld.add_gate("NAND2", &[pis[0], pis[1]], None).unwrap();
        let y = bld.add_gate("NAND2", &[pis[2], pis[3]], None).unwrap();
        let z = bld.add_gate("NAND2", &[x, y], None).unwrap();
        bld.mark_output(z, "z");
        bld.finish().unwrap()
    }

    #[test]
    fn random_patterns_are_deterministic_and_specified() {
        let lib = lib();
        let c = circuit(&lib);
        let a = random_patterns(&c, 10, 42);
        let b = random_patterns(&c, 10, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| p.is_fully_specified()));
    }

    #[test]
    fn stuck_at_set_reaches_full_coverage() {
        let lib = lib();
        let c = circuit(&lib);
        let cfg = TestSetConfig::stuck_at(16, 7);
        let pats = generate_test_set(&c, &cfg);
        assert_eq!(pats.len(), 16);
        let faults = icd_faultsim::enumerate_stuck_at(&c);
        let cov = fault_coverage(&c, &pats, &faults);
        assert!(
            cov > 0.99,
            "stuck-at coverage {cov} should be complete on this tree"
        );
    }

    #[test]
    fn transition_set_detects_most_transitions() {
        let lib = lib();
        let c = circuit(&lib);
        let cfg = TestSetConfig::transition(25, 3);
        let pats = generate_test_set(&c, &cfg);
        assert_eq!(pats.len(), 25);
        let faults = icd_faultsim::enumerate_transitions(&c);
        let cov = fault_coverage(&c, &pats, &faults);
        assert!(cov > 0.8, "transition coverage {cov} too low");
    }

    #[test]
    fn target_length_is_exact_even_without_topoff() {
        let lib = lib();
        let c = circuit(&lib);
        let cfg = TestSetConfig {
            target_length: 9,
            kind: FaultKind::StuckAt,
            random_patterns: 0,
            podem_topoff: false,
            max_faults: Some(10),
            seed: 1,
        };
        let pats = generate_test_set(&c, &cfg);
        assert_eq!(pats.len(), 9);
        assert!(pats.iter().all(|p| p.is_fully_specified()));
    }

    #[test]
    fn coverage_of_empty_fault_list_is_one() {
        let lib = lib();
        let c = circuit(&lib);
        assert_eq!(fault_coverage(&c, &random_patterns(&c, 4, 0), &[]), 1.0);
    }
}
