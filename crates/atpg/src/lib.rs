//! Test pattern generation — the "commercial ATPG tool" substitute.
//!
//! The paper generates its experiment test sets with a commercial ATPG
//! targeting transition faults (test lengths 25 and 500 for circuits A and
//! B, §4.1) and stuck-at/transition/bridging sets for the silicon circuits
//! (Table 6). This crate reproduces that capability:
//!
//! * [`podem`] — a complete (up to a backtrack limit) PODEM implementation
//!   for single stuck-at faults over arbitrary truth-table gates.
//! * [`justify`] — PODEM's justification half: find a pattern that sets one
//!   net to a value (used to build the launch half of transition pairs).
//! * [`transition_pair`] — a two-pattern (launch, capture) test for a
//!   transition fault, applied as consecutive patterns of the ordered
//!   sequence.
//! * [`generate_test_set`] — the production flow: random patterns, fault
//!   simulation to measure and compact, deterministic PODEM top-off for
//!   the hard faults, padded or truncated to the target length.
//!
//! # Example
//!
//! ```
//! use icd_atpg::podem;
//! use icd_faultsim::GateFault;
//! use icd_logic::TruthTable;
//! use icd_netlist::{CircuitBuilder, GateType, Library};
//!
//! let mut lib = Library::new();
//! lib.insert(GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1]))?)?;
//! let mut b = CircuitBuilder::new("c", &lib);
//! let a = b.add_input("a");
//! let c = b.add_input("c");
//! let y = b.add_gate("AND2", &[a, c], None)?;
//! b.mark_output(y, "y");
//! let circuit = b.finish()?;
//!
//! // y stuck-at-0 needs a=c=1.
//! let p = podem(&circuit, &GateFault::stuck_at(y, false), 1000).expect("testable");
//! assert_eq!(p.to_string(), "11");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod collapse;
mod podem;
mod testgen;

pub use collapse::{collapse_stuck_at, CollapsedFaults};
pub use podem::{justify, podem, transition_pair};
pub use testgen::{fault_coverage, generate_test_set, random_patterns, FaultKind, TestSetConfig};
