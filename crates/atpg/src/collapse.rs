//! Structural fault collapsing: equivalence and dominance over the
//! classical stuck-at fault list.
//!
//! Two stuck-at faults are *equivalent* when every test for one detects
//! the other; fault `f` *dominates* `g` when every test for `g` detects
//! `f`. ATPG only needs one representative per equivalence class and may
//! drop dominating faults. The classical structural rules per gate (for
//! fully specified, single-output cells) are applied through the truth
//! table, so they work for arbitrary complex gates:
//!
//! * input `i` stuck-at-`v` is equivalent to the output stuck-at-`w` when
//!   forcing input `i` to `v` makes the gate output constantly `w`
//!   regardless of the other inputs (the generalized controlling-value
//!   rule: a NAND input sa0 ≡ output sa1, …).
//!
//! Collapsing is applied fanout-free-region style: equivalences chain
//! through gates; each class keeps its topologically deepest
//! representative.

use std::collections::HashMap;

use icd_faultsim::GateFault;
use icd_logic::Lv;
use icd_netlist::{Circuit, NetId};

/// A collapsed stuck-at fault list.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    /// One representative fault per equivalence class.
    pub representatives: Vec<GateFault>,
    /// Class id for every (net, value) fault, indexed `net * 2 + value`.
    class_of: Vec<u32>,
    classes: usize,
}

impl CollapsedFaults {
    /// Number of equivalence classes (== `representatives.len()`).
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// The class a stuck-at fault belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range for the collapsed circuit.
    pub fn class_of(&self, net: NetId, value: bool) -> usize {
        self.class_of[net.index() * 2 + usize::from(value)] as usize
    }

    /// Whether two stuck-at faults are structurally equivalent.
    pub fn equivalent(&self, a: (NetId, bool), b: (NetId, bool)) -> bool {
        self.class_of(a.0, a.1) == self.class_of(b.0, b.1)
    }
}

/// Union-find with path compression.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Collapses the full stuck-at fault list of `circuit` by structural
/// equivalence.
///
/// The output-side fault of each equivalence relation is kept as the
/// class representative (deeper in the circuit, closer to the observe
/// points), except for classes containing an observe point, whose output
/// fault wins.
pub fn collapse_stuck_at(circuit: &Circuit) -> CollapsedFaults {
    let n = circuit.num_nets();
    let mut dsu = Dsu::new(n * 2);
    let id = |net: NetId, value: bool| (net.index() * 2 + usize::from(value)) as u32;

    for gate in circuit.gates() {
        let table = circuit.gate_type(gate).table();
        let inputs = circuit.gate_inputs(gate);
        let out = circuit.gate_output(gate);
        // Fanout-free chaining only: an input fault is equivalent to the
        // output fault when the input net has a single consumer.
        for (i, &input_net) in inputs.iter().enumerate() {
            if circuit.fanout(input_net).len() != 1 {
                continue;
            }
            for v in [false, true] {
                // Is the output constant when input i is forced to v?
                let mut constant: Option<Lv> = None;
                let mut is_constant = true;
                let k = inputs.len();
                for combo in 0..(1usize << k) {
                    if (combo >> i) & 1 != usize::from(v) {
                        continue;
                    }
                    let bits: Vec<bool> = (0..k).map(|j| (combo >> j) & 1 == 1).collect();
                    let o = table.eval_bits(&bits);
                    match constant {
                        None => constant = Some(o),
                        Some(prev) if prev == o => {}
                        Some(_) => {
                            is_constant = false;
                            break;
                        }
                    }
                }
                if is_constant {
                    if let Some(w) = constant.and_then(Lv::to_bool) {
                        dsu.union(id(input_net, v), id(out, w));
                    }
                }
            }
        }
    }

    // Build classes, keeping the representative with the greatest level
    // (closest to the outputs).
    let depth = |net: NetId| -> u32 {
        circuit
            .driver(net)
            .map(|g| circuit.gate_level(g) + 1)
            .unwrap_or(0)
    };
    let mut class_index: HashMap<u32, u32> = HashMap::new();
    let mut class_of = vec![0u32; n * 2];
    let mut best: Vec<(u32, NetId, bool)> = Vec::new();
    for net in circuit.nets() {
        for v in [false, true] {
            let root = dsu.find(id(net, v));
            let next = class_index.len() as u32;
            let class = *class_index.entry(root).or_insert(next);
            class_of[net.index() * 2 + usize::from(v)] = class;
            let d = depth(net);
            if class as usize == best.len() {
                best.push((d, net, v));
            } else if d > best[class as usize].0 {
                best[class as usize] = (d, net, v);
            }
        }
    }
    let representatives = best
        .iter()
        .map(|&(_, net, value)| GateFault::StuckAt { net, value })
        .collect();
    CollapsedFaults {
        representatives,
        class_of,
        classes: class_index.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new(
                "NAND2",
                ["A", "B"],
                TruthTable::from_fn(2, |b| !(b[0] & b[1])),
            )
            .unwrap(),
        )
        .unwrap();
        lib
    }

    #[test]
    fn inverter_chain_collapses_to_two_classes() {
        // a -> INV -> INV -> y: all faults collapse onto y's two faults.
        let lib = lib();
        let mut b = CircuitBuilder::new("c", &lib);
        let a = b.add_input("a");
        let m = b.add_gate("INV", &[a], None).unwrap();
        let y = b.add_gate("INV", &[m], None).unwrap();
        b.mark_output(y, "y");
        let c = b.finish().unwrap();
        let collapsed = collapse_stuck_at(&c);
        assert_eq!(collapsed.num_classes(), 2);
        // a sa0 ≡ m sa1 ≡ y sa0.
        assert!(collapsed.equivalent((a, false), (m, true)));
        assert!(collapsed.equivalent((a, false), (y, false)));
        assert!(!collapsed.equivalent((a, false), (y, true)));
    }

    #[test]
    fn nand_controlling_input_collapses_with_output() {
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let y = bld.add_gate("NAND2", &[a, b], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let collapsed = collapse_stuck_at(&c);
        // a sa0 ≡ b sa0 ≡ y sa1; a sa1, b sa1, y sa0 each alone.
        assert!(collapsed.equivalent((a, false), (b, false)));
        assert!(collapsed.equivalent((a, false), (y, true)));
        assert!(!collapsed.equivalent((a, true), (b, true)));
        assert_eq!(collapsed.num_classes(), 4);
    }

    #[test]
    fn fanout_stems_do_not_collapse() {
        // a feeds two inverters: a's faults must stay separate from the
        // branch faults.
        let lib = lib();
        let mut b = CircuitBuilder::new("c", &lib);
        let a = b.add_input("a");
        let y1 = b.add_gate("INV", &[a], None).unwrap();
        let y2 = b.add_gate("INV", &[a], None).unwrap();
        b.mark_output(y1, "y1");
        b.mark_output(y2, "y2");
        let c = b.finish().unwrap();
        let collapsed = collapse_stuck_at(&c);
        assert!(!collapsed.equivalent((a, false), (y1, true)));
        assert!(!collapsed.equivalent((a, false), (y2, true)));
        assert_eq!(collapsed.num_classes(), 6);
    }

    #[test]
    fn representatives_cover_every_class_once() {
        let lib = lib();
        let mut bld = CircuitBuilder::new("c", &lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let m = bld.add_gate("NAND2", &[a, b], None).unwrap();
        let y = bld.add_gate("INV", &[m], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let collapsed = collapse_stuck_at(&c);
        assert_eq!(collapsed.representatives.len(), collapsed.num_classes());
        let mut seen = std::collections::BTreeSet::new();
        for f in &collapsed.representatives {
            let GateFault::StuckAt { net, value } = *f else {
                panic!("collapsed list holds stuck-at faults");
            };
            assert!(seen.insert(collapsed.class_of(net, value)));
        }
    }

    #[test]
    fn collapsing_shrinks_realistic_circuits() {
        // Our flat net model has no separate fanout-branch faults (the
        // classical big win of collapsing), so only single-fanout chains
        // merge; the reduction is modest but must be real and sound.
        use icd_netlist::generator;
        let cells = icd_cells::CellLibrary::standard();
        let logic = cells.logic_library();
        let cfg = generator::circuit_a();
        let c = generator::generate(&cfg, &logic).unwrap();
        let collapsed = collapse_stuck_at(&c);
        let full = 2 * c.num_nets();
        assert!(
            collapsed.num_classes() < full,
            "no reduction: {} of {}",
            collapsed.num_classes(),
            full
        );
        assert_eq!(collapsed.representatives.len(), collapsed.num_classes());
    }

    #[test]
    fn collapsed_classes_are_behaviourally_equivalent() {
        // Soundness: faults merged into one class are detected by exactly
        // the same patterns.
        use icd_netlist::generator;
        let lib = lib();
        let cfg = generator::GeneratorConfig {
            name: "col".into(),
            gates: 40,
            primary_inputs: 5,
            primary_outputs: 5,
            flip_flops: 0,
            scan_chains: 0,
            seed: 77,
        };
        let c = generator::generate(&cfg, &lib).unwrap();
        let patterns: Vec<icd_logic::Pattern> = (0..32u32)
            .map(|i| icd_logic::Pattern::from_bits((0..5).map(move |k| (i >> k) & 1 == 1)))
            .collect();
        let good = icd_faultsim::good_simulate(&c, &patterns).unwrap();
        let collapsed = collapse_stuck_at(&c);
        // Group faults by class and compare detection vectors.
        let mut by_class: std::collections::HashMap<usize, Vec<Vec<bool>>> = Default::default();
        for net in c.nets() {
            for v in [false, true] {
                let det = icd_faultsim::detects(&c, &good, &GateFault::stuck_at(net, v));
                by_class
                    .entry(collapsed.class_of(net, v))
                    .or_default()
                    .push(det);
            }
        }
        for (class, dets) in by_class {
            for d in &dets[1..] {
                assert_eq!(d, &dets[0], "class {class} is not test-equivalent");
            }
        }
    }
}
