use icd_faultsim::GateFault;
use icd_logic::{Lv, Pattern};
use icd_netlist::{Circuit, NetId};

/// Simulates the circuit in three-valued logic under a primary-input
/// assignment, optionally forcing one net (the faulty machine).
fn simulate(circuit: &Circuit, pi_values: &[Lv], force: Option<(NetId, Lv)>) -> Vec<Lv> {
    let mut values = vec![Lv::U; circuit.num_nets()];
    for (i, &net) in circuit.inputs().iter().enumerate() {
        values[net.index()] = pi_values[i];
    }
    if let Some((net, v)) = force {
        values[net.index()] = v;
    }
    let mut ins: Vec<Lv> = Vec::with_capacity(8);
    for &gate in circuit.topo_order() {
        let out = circuit.gate_output(gate);
        if let Some((forced_net, _)) = force {
            if out == forced_net {
                continue; // the fault dominates its driver
            }
        }
        ins.clear();
        ins.extend(circuit.gate_inputs(gate).iter().map(|&n| values[n.index()]));
        values[out.index()] = circuit
            .gate_type(gate)
            .table()
            .eval(&ins)
            .expect("arity checked at construction");
    }
    values
}

/// Whether a difference at some D-frontier output can still reach an
/// output through not-yet-settled nets.
fn x_path_exists(circuit: &Circuit, good: &[Lv], faulty: &[Lv], from: &[NetId]) -> bool {
    let open = |n: NetId| good[n.index()] == Lv::U || faulty[n.index()] == Lv::U;
    let outputs: std::collections::HashSet<usize> =
        circuit.outputs().iter().map(|n| n.index()).collect();
    let mut seen = vec![false; circuit.num_nets()];
    let mut stack: Vec<NetId> = from.to_vec();
    for n in &stack {
        seen[n.index()] = true;
    }
    while let Some(net) = stack.pop() {
        if outputs.contains(&net.index()) {
            return true;
        }
        for &g in circuit.fanout(net) {
            let out = circuit.gate_output(g);
            if !seen[out.index()] && open(out) {
                seen[out.index()] = true;
                stack.push(out);
            }
        }
    }
    false
}

/// D-frontier: gates with a conflicting input whose output has not settled
/// to a (known, equal) pair yet.
fn d_frontier(circuit: &Circuit, good: &[Lv], faulty: &[Lv]) -> Vec<icd_netlist::GateId> {
    let mut frontier = Vec::new();
    for gate in circuit.gates() {
        let out = circuit.gate_output(gate);
        let go = good[out.index()];
        let fo = faulty[out.index()];
        let output_open = go == Lv::U || fo == Lv::U;
        if !output_open {
            continue;
        }
        let has_diff_input = circuit
            .gate_inputs(gate)
            .iter()
            .any(|&n| good[n.index()].conflicts_with(faulty[n.index()]));
        if has_diff_input {
            frontier.push(gate);
        }
    }
    frontier
}

/// Backtraces an objective `(net, value)` to a primary-input assignment.
fn backtrace(circuit: &Circuit, good: &[Lv], mut net: NetId, mut value: Lv) -> Option<(usize, Lv)> {
    loop {
        let Some(gate) = circuit.driver(net) else {
            // Reached a primary input.
            let pi = circuit.inputs().iter().position(|&n| n == net)?;
            return Some((pi, value));
        };
        let table = circuit.gate_type(gate).table();
        let inputs = circuit.gate_inputs(gate);
        let j = inputs.iter().position(|&n| good[n.index()] == Lv::U)?;
        // Choose the value for input j that makes `value` reachable.
        let mut chosen = None;
        let mut ins: Vec<Lv> = inputs.iter().map(|&n| good[n.index()]).collect();
        for w in [Lv::One, Lv::Zero] {
            ins[j] = w;
            let out = table.eval(&ins).expect("arity ok");
            if out == value {
                chosen = Some(w);
                break;
            }
            if out == Lv::U && chosen.is_none() {
                chosen = Some(w);
            }
        }
        let w = chosen.unwrap_or(Lv::One);
        net = inputs[j];
        value = w;
    }
}

enum Goal {
    DetectStuckAt { net: NetId, stuck: bool },
    Justify { net: NetId, value: Lv },
}

fn podem_engine(circuit: &Circuit, goal: &Goal, max_backtracks: usize) -> Option<Pattern> {
    let num_pis = circuit.inputs().len();
    let mut pi_values = vec![Lv::U; num_pis];
    // Decision stack: (pi index, value, already flipped).
    let mut stack: Vec<(usize, Lv, bool)> = Vec::new();
    let mut backtracks = 0usize;

    loop {
        let good = simulate(circuit, &pi_values, None);
        let (success, failed, objective) = match goal {
            Goal::Justify { net, value } => {
                let cur = good[net.index()];
                if cur == *value {
                    (true, false, None)
                } else if cur.conflicts_with(*value) {
                    (false, true, None)
                } else {
                    (false, false, Some((*net, *value)))
                }
            }
            Goal::DetectStuckAt { net, stuck } => {
                let stuck_lv = Lv::from(*stuck);
                let faulty = simulate(circuit, &pi_values, Some((*net, stuck_lv)));
                let detected = circuit
                    .outputs()
                    .iter()
                    .any(|&o| good[o.index()].conflicts_with(faulty[o.index()]));
                if detected {
                    (true, false, None)
                } else if good[net.index()] == stuck_lv {
                    (false, true, None) // can never excite on this branch
                } else if good[net.index()] == Lv::U {
                    (false, false, Some((*net, !stuck_lv)))
                } else {
                    // Excited: pick a D-frontier gate to propagate through.
                    let frontier = d_frontier(circuit, &good, &faulty);
                    if frontier.is_empty() {
                        (false, true, None)
                    } else {
                        let fronts: Vec<NetId> =
                            frontier.iter().map(|&g| circuit.gate_output(g)).collect();
                        if !x_path_exists(circuit, &good, &faulty, &fronts) {
                            (false, true, None)
                        } else {
                            let gate = frontier[0];
                            let table = circuit.gate_type(gate).table();
                            let inputs = circuit.gate_inputs(gate);
                            let j = inputs.iter().position(|&n| good[n.index()] == Lv::U);
                            match j {
                                None => (false, true, None),
                                Some(j) => {
                                    // Prefer the value that exposes the
                                    // difference at the gate output.
                                    let mut gi: Vec<Lv> =
                                        inputs.iter().map(|&n| good[n.index()]).collect();
                                    let mut fi: Vec<Lv> =
                                        inputs.iter().map(|&n| faulty[n.index()]).collect();
                                    let mut want = Lv::One;
                                    for w in [Lv::One, Lv::Zero] {
                                        gi[j] = w;
                                        fi[j] = w;
                                        let go = table.eval(&gi).expect("arity");
                                        let fo = table.eval(&fi).expect("arity");
                                        if go.conflicts_with(fo) {
                                            want = w;
                                            break;
                                        }
                                    }
                                    (false, false, Some((inputs[j], want)))
                                }
                            }
                        }
                    }
                }
            }
        };

        if success {
            return Some(Pattern::new(pi_values));
        }
        if failed {
            // Backtrack: flip the most recent unflipped decision.
            loop {
                match stack.pop() {
                    None => return None,
                    Some((pi, v, flipped)) => {
                        pi_values[pi] = Lv::U;
                        if !flipped {
                            backtracks += 1;
                            if backtracks > max_backtracks {
                                return None;
                            }
                            let nv = !v;
                            pi_values[pi] = nv;
                            stack.push((pi, nv, true));
                            break;
                        }
                    }
                }
            }
            continue;
        }

        let (net, value) = objective.expect("no success, no failure: objective exists");
        match backtrace(circuit, &simulate(circuit, &pi_values, None), net, value) {
            Some((pi, w)) => {
                pi_values[pi] = w;
                stack.push((pi, w, false));
            }
            None => {
                // Cannot backtrace: treat as failure.
                loop {
                    match stack.pop() {
                        None => return None,
                        Some((pi, v, flipped)) => {
                            pi_values[pi] = Lv::U;
                            if !flipped {
                                backtracks += 1;
                                if backtracks > max_backtracks {
                                    return None;
                                }
                                let nv = !v;
                                pi_values[pi] = nv;
                                stack.push((pi, nv, true));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// PODEM test generation for a single stuck-at fault.
///
/// Returns a (possibly partially specified) pattern that detects the fault
/// at some circuit output, or `None` when the fault is untestable or the
/// backtrack limit is exceeded.
///
/// # Panics
///
/// Panics if `fault` is not a stuck-at fault — transition tests are built
/// from stuck-at tests by [`transition_pair`].
#[allow(clippy::panic)] // documented API contract, not on the diagnosis path
pub fn podem(circuit: &Circuit, fault: &GateFault, max_backtracks: usize) -> Option<Pattern> {
    let GateFault::StuckAt { net, value } = *fault else {
        panic!("podem targets stuck-at faults; use transition_pair for delay faults");
    };
    podem_engine(
        circuit,
        &Goal::DetectStuckAt { net, stuck: value },
        max_backtracks,
    )
}

/// Finds a pattern that justifies `net = value` (no propagation
/// requirement), or `None` when impossible within the backtrack limit.
pub fn justify(
    circuit: &Circuit,
    net: NetId,
    value: bool,
    max_backtracks: usize,
) -> Option<Pattern> {
    podem_engine(
        circuit,
        &Goal::Justify {
            net,
            value: Lv::from(value),
        },
        max_backtracks,
    )
}

/// Builds a two-pattern (launch, capture) test for a transition fault:
/// the launch pattern sets the slow net to its initial value, the capture
/// pattern launches the transition and propagates the late value to an
/// output. Applied as consecutive patterns of the ordered test sequence.
///
/// # Panics
///
/// Panics if `fault` is not a transition fault.
#[allow(clippy::panic)] // documented API contract, not on the diagnosis path
pub fn transition_pair(
    circuit: &Circuit,
    fault: &GateFault,
    max_backtracks: usize,
) -> Option<(Pattern, Pattern)> {
    let (net, initial) = match *fault {
        GateFault::SlowToRise { net } => (net, false),
        GateFault::SlowToFall { net } => (net, true),
        _ => panic!("transition_pair targets transition faults"),
    };
    // Capture: detect net stuck-at-initial (sets net to !initial and
    // propagates it). Launch: justify net = initial.
    let capture = podem(circuit, &GateFault::stuck_at(net, initial), max_backtracks)?;
    let launch = justify(circuit, net, initial, max_backtracks)?;
    Some((launch, capture))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::TruthTable;
    use icd_netlist::{CircuitBuilder, GateType, Library};

    fn lib() -> Library {
        let mut lib = Library::new();
        lib.insert(GateType::new("INV", ["A"], TruthTable::from_fn(1, |b| !b[0])).unwrap())
            .unwrap();
        lib.insert(
            GateType::new("AND2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] & b[1])).unwrap(),
        )
        .unwrap();
        lib.insert(
            GateType::new("OR2", ["A", "B"], TruthTable::from_fn(2, |b| b[0] | b[1])).unwrap(),
        )
        .unwrap();
        lib
    }

    /// y = (a & b) | (!a & c) — a mux-like circuit with reconvergence.
    fn mux_circuit(lib: &Library) -> Circuit {
        let mut bld = CircuitBuilder::new("mux", lib);
        let a = bld.add_input("a");
        let b = bld.add_input("b");
        let c = bld.add_input("c");
        let an = bld.add_gate("INV", &[a], None).unwrap();
        let t1 = bld.add_gate("AND2", &[a, b], None).unwrap();
        let t2 = bld.add_gate("AND2", &[an, c], None).unwrap();
        let y = bld.add_gate("OR2", &[t1, t2], None).unwrap();
        bld.mark_output(y, "y");
        bld.finish().unwrap()
    }

    fn check_detects(circuit: &Circuit, fault: &GateFault, pattern: &Pattern) {
        // Fill unknowns with 0 and verify by simulation.
        let filled = Pattern::new(
            pattern
                .iter()
                .map(|&v| if v == Lv::U { Lv::Zero } else { v }),
        );
        let good = icd_faultsim::good_simulate(circuit, &[filled]).unwrap();
        assert!(
            icd_faultsim::detects_any(circuit, &good, fault),
            "pattern {pattern} does not detect {fault}"
        );
    }

    #[test]
    fn podem_finds_tests_for_all_stuck_at_faults() {
        let lib = lib();
        let c = mux_circuit(&lib);
        for fault in icd_faultsim::enumerate_stuck_at(&c) {
            let p = podem(&c, &fault, 10_000);
            // Every stuck-at fault in this small irredundant circuit is
            // testable.
            let p = p.unwrap_or_else(|| panic!("no test for {fault}"));
            check_detects(&c, &fault, &p);
        }
    }

    #[test]
    fn justify_sets_internal_net() {
        let lib = lib();
        let c = mux_circuit(&lib);
        // Justify the inverter output to 1 (needs a = 0).
        let an = c.gate_output(c.topo_order()[0]);
        let p = justify(&c, an, true, 1000).unwrap();
        assert_eq!(p[0], Lv::Zero);
    }

    #[test]
    fn transition_pair_launches_and_captures() {
        let lib = lib();
        let c = mux_circuit(&lib);
        let y = c.outputs()[0];
        let fault = GateFault::SlowToRise { net: y };
        let (launch, capture) = transition_pair(&c, &fault, 10_000).unwrap();
        // Simulate the two-pattern sequence and check detection.
        let fill =
            |p: &Pattern| Pattern::new(p.iter().map(|&v| if v == Lv::U { Lv::Zero } else { v }));
        let pats = vec![fill(&launch), fill(&capture)];
        let good = icd_faultsim::good_simulate(&c, &pats).unwrap();
        let det = icd_faultsim::detects(&c, &good, &fault);
        assert_eq!(det, vec![false, true]);
    }

    #[test]
    fn untestable_fault_returns_none() {
        let lib = lib();
        // y = a & !a  == constant 0: stuck-at-0 at y is untestable.
        let mut bld = CircuitBuilder::new("const", &lib);
        let a = bld.add_input("a");
        let an = bld.add_gate("INV", &[a], None).unwrap();
        let y = bld.add_gate("AND2", &[a, an], None).unwrap();
        bld.mark_output(y, "y");
        let c = bld.finish().unwrap();
        let y_net = c.outputs()[0];
        assert!(podem(&c, &GateFault::stuck_at(y_net, false), 10_000).is_none());
        // ... while stuck-at-1 is detected by any pattern.
        assert!(podem(&c, &GateFault::stuck_at(y_net, true), 10_000).is_some());
    }

    #[test]
    #[should_panic(expected = "stuck-at")]
    fn podem_rejects_transition_faults() {
        let lib = lib();
        let c = mux_circuit(&lib);
        let y = c.outputs()[0];
        let _ = podem(&c, &GateFault::SlowToRise { net: y }, 10);
    }
}
