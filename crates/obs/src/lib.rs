//! `icd-obs` — std-only observability for the diagnosis pipeline.
//!
//! The diagnosis stack (datalog sanitation → inter-cell diagnosis →
//! per-suspect intra-cell CPT analysis, parallelized by `icd-engine`) is
//! a multi-stage, multi-threaded system; this crate is the measurement
//! layer that makes it attributable:
//!
//! * **Spans** — [`span`] / [`stage`] open a [`SpanGuard`] with
//!   monotonic timing, a dense thread id and parent linkage via a
//!   thread-local stack; [`Collector::span_forest`] canonicalizes the
//!   finished spans into a forest ordered by job identity (datalog
//!   index, suspect slot), so traces are reproducible at any worker
//!   count.
//! * **Metrics** — [`counter`], [`gauge_set`] and latency histograms
//!   with fixed log₂ buckets ([`observe_us`]); every value carries a
//!   [`Stability`] class so [`MetricsSnapshot::redacted`] can strip the
//!   scheduling-dependent parts for byte-identical comparison.
//! * **A process-global collector** — instrumentation sites are free
//!   functions costing **two relaxed atomic loads** when no
//!   [`Collector`] is installed and no trace is entered, so the hot
//!   CPT/ranking paths can stay instrumented always.
//! * **Per-request traces** — a [`TraceContext`] entered on every
//!   thread serving one wire request records that request's span forest
//!   and point events ([`trace_event`]) independently of the
//!   process-global stream, for structured per-request logging.
//! * **Rolling windows** — [`WindowedHistogram`] keeps a ring of time
//!   slices so a live endpoint can report p50/p95/p99
//!   ([`HistogramSnapshot::percentile_us`]) over recent traffic.
//! * **Export** — [`MetricsSnapshot::to_json`], a human `Display`
//!   summary table, span-tree JSON with a redaction mode, a rotating
//!   JSONL [`EventLog`], and a minimal [`json`] parser for offline
//!   validation tooling.
//!
//! ```
//! use icd_obs::Collector;
//!
//! let collector = Collector::new();
//! {
//!     let _active = collector.install();
//!     let _outer = icd_obs::stage("example.outer");
//!     let _inner = icd_obs::span("example.inner");
//!     icd_obs::counter("example.count", 2, icd_obs::Stability::Stable);
//! }
//! let snapshot = collector.snapshot();
//! assert_eq!(snapshot.counters["example.count"].0, 2);
//! let forest = collector.span_forest();
//! assert_eq!(forest[0].children[0].name, "example.inner");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]

mod collector;
mod eventlog;
pub mod json;
mod metrics;
mod span;
mod trace;
mod window;

pub use collector::{
    counter, enabled, gauge_set, observe_us, observe_us_unstable, span, span_with, stage,
    Collector, InstallGuard, LocalInstallGuard, SpanGuard,
};
pub use eventlog::{EventLog, DEFAULT_MAX_BYTES};
pub use metrics::{
    bucket_index, bucket_lower_bound_us, HistogramSnapshot, MetricsSnapshot, Stability, BUCKETS,
};
pub use span::{forest_json, SpanNode};
pub use trace::{mint_trace_id, trace_event, TraceContext, TraceEvent, TraceGuard};
pub use window::WindowedHistogram;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Instant;

    /// The collector is process-global; tests that install (or measure
    /// the disabled path) serialize on this.
    static GLOBAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        match GLOBAL.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _serial = serial();
        let collector = Collector::new();
        // Not installed: everything is a no-op.
        counter("t.counter", 5, Stability::Stable);
        observe_us("t.hist", 10);
        drop(span("t.span"));
        let snap = collector.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(collector.span_forest().is_empty());
        assert!(!enabled());
    }

    #[test]
    fn install_guard_scopes_recording_and_nests() {
        let _serial = serial();
        let outer = Collector::new();
        let inner = Collector::new();
        {
            let _a = outer.install();
            counter("t.scope", 1, Stability::Stable);
            {
                let _b = inner.install();
                counter("t.scope", 10, Stability::Stable);
            }
            // Outer collector restored.
            counter("t.scope", 100, Stability::Stable);
        }
        counter("t.scope", 1000, Stability::Stable); // nothing installed
        assert_eq!(outer.snapshot().counters["t.scope"].0, 101);
        assert_eq!(inner.snapshot().counters["t.scope"].0, 10);
        assert!(!enabled());
    }

    #[test]
    fn spans_nest_by_thread_local_stack_and_cross_threads() {
        let _serial = serial();
        let collector = Collector::new();
        {
            let _active = collector.install();
            let _root = span_with("t.root", &[("datalog", 3)]);
            {
                let _child = stage("t.child");
                let _grandchild = span("t.grandchild");
            }
            let handle = std::thread::spawn(|| {
                // Fresh thread: empty stack, so this is a root.
                drop(span_with("t.other_root", &[("datalog", 1), ("slot", 2)]));
            });
            handle.join().unwrap();
        }
        let forest = collector.span_forest();
        assert_eq!(forest.len(), 2);
        // Job roots sort by datalog index, not completion order.
        assert_eq!(forest[0].name, "t.other_root");
        assert_eq!(forest[1].name, "t.root");
        assert_eq!(forest[1].children.len(), 1);
        assert_eq!(forest[1].children[0].name, "t.child");
        assert_eq!(forest[1].children[0].children[0].name, "t.grandchild");
        assert_eq!(forest[1].size(), 3);
        // The stage span recorded its latency histogram.
        assert_eq!(collector.snapshot().histograms["t.child"].count, 1);
    }

    #[test]
    fn install_local_scopes_recording_to_the_calling_thread() {
        let _serial = serial();
        let local = Collector::new();
        let global = Collector::new();
        {
            let _g = global.install();
            let _l = local.install_local();
            // This thread records into the local collector…
            counter("t.local", 1, Stability::Stable);
            // …while other threads still see the global one.
            std::thread::spawn(|| counter("t.local", 10, Stability::Stable))
                .join()
                .unwrap();
        }
        assert_eq!(local.snapshot().counters["t.local"].0, 1);
        assert_eq!(global.snapshot().counters["t.local"].0, 10);
        assert!(!enabled());
    }

    #[test]
    fn entered_traces_capture_spans_alongside_the_collector() {
        let _serial = serial();
        let collector = Collector::new();
        let trace = TraceContext::new(0xabc);
        {
            let _active = collector.install();
            let _entered = trace.enter();
            let _root = span("t.request");
            drop(stage("t.stage"));
        }
        let in_trace = trace.span_forest();
        assert_eq!(in_trace.len(), 1);
        assert_eq!(in_trace[0].name, "t.request");
        assert_eq!(in_trace[0].children[0].name, "t.stage");
        let in_collector = collector.span_forest();
        assert_eq!(in_collector.len(), 1);
        assert_eq!(in_collector[0].children[0].name, "t.stage");
        // Stage histograms stay a collector concern.
        assert_eq!(collector.snapshot().histograms["t.stage"].count, 1);
    }

    #[test]
    fn traces_record_spans_even_without_a_collector() {
        let _serial = serial();
        assert!(!enabled());
        let trace = TraceContext::new(1);
        {
            let _entered = trace.enter();
            drop(span("t.orphan"));
        }
        drop(span("t.after"));
        let forest = trace.span_forest();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "t.orphan");
    }

    #[test]
    fn trace_json_redaction_hides_timing_fields() {
        let _serial = serial();
        let collector = Collector::new();
        {
            let _active = collector.install();
            let _s = span_with("t.json", &[("datalog", 0)]);
        }
        let full = collector.trace_json(false);
        let redacted = collector.trace_json(true);
        assert!(full.contains("\"duration_us\""));
        assert!(full.contains("\"thread\""));
        assert!(!redacted.contains("\"duration_us\""));
        assert!(!redacted.contains("\"thread\""));
        assert!(redacted.contains("\"datalog\": 0"));
        // Both are valid JSON.
        json::parse(&full).expect("full trace parses");
        json::parse(&redacted).expect("redacted trace parses");
    }

    /// The disabled-overhead contract: an instrumented call site with no
    /// collector installed must cost no more than an atomic load and a
    /// branch. The bound is deliberately generous (debug builds, noisy
    /// CI): what it rules out is accidental locking, allocation or
    /// syscalls on the disabled path.
    #[test]
    fn disabled_span_site_costs_almost_nothing() {
        let _serial = serial();
        assert!(!enabled());
        let iterations: u64 = 200_000;

        // Baseline: the bare work.
        let t0 = Instant::now();
        let mut acc = 0u64;
        for i in 0..iterations {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        let baseline = t0.elapsed();
        std::hint::black_box(acc);

        // Instrumented: the same work under a (disabled) stage span plus
        // a counter site — the shape of the hot CPT/ranking paths.
        let t1 = Instant::now();
        let mut acc = 0u64;
        for i in 0..iterations {
            let _s = stage("t.overhead");
            counter("t.overhead.count", 1, Stability::Stable);
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        let instrumented = t1.elapsed();
        std::hint::black_box(acc);

        let extra = instrumented.saturating_sub(baseline);
        let per_call_ns = extra.as_nanos() as f64 / iterations as f64;
        assert!(
            per_call_ns < 1_000.0,
            "disabled instrumentation costs {per_call_ns:.1} ns/site \
             (baseline {baseline:?}, instrumented {instrumented:?})"
        );
    }
}
