//! Rolling-window latency histograms: a ring of time slices that is
//! merged into one [`HistogramSnapshot`] covering roughly the last
//! `window` of wall time.
//!
//! The server's live Stats endpoint needs percentiles over *recent*
//! traffic, not process lifetime, and must snapshot without pausing
//! service. A [`WindowedHistogram`] keeps `slices` fixed-duration
//! sub-histograms in a ring indexed by a slice epoch (`now / slice`);
//! recording into the current slice lazily evicts whatever stale slice
//! the ring position held, and a snapshot merges only the slices still
//! inside the window. Both operations are O(slices · BUCKETS) worst
//! case with no allocation after construction, so a brief mutex around
//! the whole structure is cheap enough for the request path.
//!
//! Time is passed in explicitly (microseconds since an arbitrary epoch,
//! e.g. server start) so tests can drive the clock deterministically.

use std::time::Duration;

use crate::metrics::{HistogramSnapshot, Stability};

/// One ring slot: the slice epoch it currently holds data for, plus the
/// samples recorded during that slice.
#[derive(Debug, Clone)]
struct Slice {
    /// `now_us / slice_us` at record time; `u64::MAX` = never written.
    epoch: u64,
    hist: HistogramSnapshot,
}

/// A latency histogram over a rolling wall-clock window.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    slice_us: u64,
    slices: Vec<Slice>,
    /// Lifetime totals, never evicted — the coherence anchor for
    /// "requests_total equals the sum of outcome counters".
    lifetime: HistogramSnapshot,
}

impl WindowedHistogram {
    /// A window of `window` wall time split into `slices` ring slots.
    /// `slices` must be at least 1; a zero-length window is clamped to
    /// one microsecond per slice.
    pub fn new(window: Duration, slices: usize) -> Self {
        let slices = slices.max(1);
        let slice_us = ((window.as_micros() as u64) / slices as u64).max(1);
        WindowedHistogram {
            slice_us,
            slices: vec![
                Slice {
                    epoch: u64::MAX,
                    hist: HistogramSnapshot::new(Stability::Timing),
                };
                slices
            ],
            lifetime: HistogramSnapshot::new(Stability::Timing),
        }
    }

    /// Records one sample (µs) observed at `now_us` (µs since the
    /// caller's epoch).
    pub fn record_at(&mut self, now_us: u64, value_us: u64) {
        let epoch = now_us / self.slice_us;
        let idx = (epoch % self.slices.len() as u64) as usize;
        let slot = &mut self.slices[idx];
        if slot.epoch != epoch {
            slot.epoch = epoch;
            slot.hist = HistogramSnapshot::new(Stability::Timing);
        }
        slot.hist.record(value_us);
        self.lifetime.record(value_us);
    }

    /// The merged histogram of every slice still inside the window at
    /// `now_us`. A slice is live when its epoch is within `slices - 1`
    /// of the current one, so the snapshot covers between
    /// `window - slice` and `window` of wall time.
    pub fn snapshot_at(&self, now_us: u64) -> HistogramSnapshot {
        let epoch = now_us / self.slice_us;
        let live_from = epoch.saturating_sub(self.slices.len() as u64 - 1);
        let mut merged = HistogramSnapshot::new(Stability::Timing);
        for slot in &self.slices {
            if slot.epoch != u64::MAX && slot.epoch >= live_from && slot.epoch <= epoch {
                merged.merge(&slot.hist);
            }
        }
        merged
    }

    /// Lifetime (never-evicted) totals across every sample ever
    /// recorded.
    pub fn lifetime(&self) -> &HistogramSnapshot {
        &self.lifetime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000;

    fn window() -> WindowedHistogram {
        // 10 ms window, 5 slices of 2 ms.
        WindowedHistogram::new(Duration::from_millis(10), 5)
    }

    #[test]
    fn recent_samples_are_visible_and_old_ones_expire() {
        let mut w = window();
        w.record_at(0, 100);
        w.record_at(MS, 200);
        let snap = w.snapshot_at(MS);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_us, 300);
        // 9 ms later the first slice (epoch 0) is still inside the
        // 5-slice window at epoch 4…
        assert_eq!(w.snapshot_at(9 * MS).count, 2);
        // …but at epoch 5 (10 ms) it has rolled out.
        assert_eq!(w.snapshot_at(10 * MS).count, 0);
    }

    #[test]
    fn ring_slots_are_lazily_reused() {
        let mut w = window();
        w.record_at(0, 1);
        // Same ring slot 5 slices later: the stale slice is evicted on
        // write, not read.
        w.record_at(10 * MS, 7);
        let snap = w.snapshot_at(10 * MS);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_us, 7);
    }

    #[test]
    fn lifetime_totals_never_expire() {
        let mut w = window();
        w.record_at(0, 5);
        w.record_at(100 * MS, 6);
        assert_eq!(w.lifetime().count, 2);
        assert_eq!(w.lifetime().sum_us, 11);
        assert_eq!(w.lifetime().max_us, 6);
        assert_eq!(w.snapshot_at(100 * MS).count, 1);
    }

    #[test]
    fn percentiles_come_from_the_window_not_the_lifetime() {
        let mut w = window();
        for _ in 0..100 {
            w.record_at(0, 10_000);
        }
        // The slow burst expires; only the fast recent traffic counts.
        for i in 0..10 {
            w.record_at(20 * MS + i, 100);
        }
        let snap = w.snapshot_at(20 * MS);
        let p99 = snap.percentile_us(0.99).unwrap();
        assert!(p99 < 1_000, "p99 {p99} should reflect recent traffic");
    }
}
