//! The collector: a process-global, installable sink for spans and
//! metrics.
//!
//! Instrumentation sites call the free functions ([`counter`],
//! [`gauge_set`], [`observe_us`], [`span`], [`stage`], …). When no
//! collector is installed and no trace is entered they cost **two
//! relaxed atomic loads** and return immediately — the overhead budget
//! of the hot CPT/ranking paths, enforced by
//! `disabled_span_site_costs_almost_nothing`. When a [`Collector`] is
//! installed (see [`Collector::install`]) the calls record into it from
//! any thread; when the thread has additionally entered a per-request
//! [`TraceContext`](crate::TraceContext), finished spans are *also*
//! recorded into that trace.
//!
//! The active collector is process-global state: installing from two
//! threads at once stacks (last install wins until its guard drops,
//! which restores the previous collector). The batch engine installs a
//! collector around one run; concurrent runs therefore share whichever
//! collector was installed last — acceptable for a diagnosis CLI, and
//! documented here rather than hidden. Tests that need isolation from
//! concurrently running instrumented code use
//! [`Collector::install_local`], which scopes recording to the calling
//! thread.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, Stability};
use crate::span::{build_forest, SpanNode};

/// Count of live installs (global + thread-local, process-wide). The
/// disabled fast path is exactly one relaxed load of this.
static INSTALLS: AtomicUsize = AtomicUsize::new(0);
static ACTIVE: RwLock<Option<Arc<Inner>>> = RwLock::new(None);
/// Small dense per-thread ids (worker threads of one process), assigned
/// on first use.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
/// Process-global span id / start-order counters, shared by the
/// collector and per-request traces so one open span can record into
/// both with consistent parent linkage. Only *relative* order matters
/// downstream, so a global counter preserves every canonicalization
/// guarantee.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
    /// Ids of the spans currently open on this thread, innermost last —
    /// the parent linkage of new spans.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// A thread-scoped collector installed by
    /// [`Collector::install_local`]; shadows the global one on this
    /// thread. Used by unit tests that must not observe (or pollute)
    /// concurrently running instrumented code on other threads.
    static LOCAL: RefCell<Option<Arc<Inner>>> = const { RefCell::new(None) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|c| match c.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(Some(id));
            id
        }
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One finished span as recorded, before canonicalization.
#[derive(Debug, Clone)]
pub(crate) struct RawSpan {
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) name: &'static str,
    pub(crate) attrs: Vec<(&'static str, u64)>,
    pub(crate) thread: u64,
    /// Global start-order sequence number; orders siblings (which run
    /// sequentially on one thread) deterministically.
    pub(crate) seq: u64,
    pub(crate) start_us: u64,
    pub(crate) duration_us: u64,
}

#[derive(Debug, Default)]
struct MetricsStore {
    counters: std::collections::BTreeMap<&'static str, (u64, Stability)>,
    gauges: std::collections::BTreeMap<&'static str, (u64, Stability)>,
    histograms: std::collections::BTreeMap<&'static str, HistogramSnapshot>,
}

#[derive(Debug)]
pub(crate) struct Inner {
    epoch: Instant,
    metrics: Mutex<MetricsStore>,
    spans: Mutex<Vec<RawSpan>>,
}

impl Inner {
    fn counter(&self, name: &'static str, delta: u64, stability: Stability) {
        let mut m = lock(&self.metrics);
        let entry = m.counters.entry(name).or_insert((0, stability));
        entry.0 += delta;
        entry.1 = entry.1.merge(stability);
    }

    fn gauge_set(&self, name: &'static str, value: u64, stability: Stability) {
        let mut m = lock(&self.metrics);
        let entry = m.gauges.entry(name).or_insert((value, stability));
        entry.0 = value;
        entry.1 = entry.1.merge(stability);
    }

    fn observe_us(&self, name: &'static str, us: u64, count_stability: Stability) {
        let mut m = lock(&self.metrics);
        m.histograms
            .entry(name)
            .or_insert_with(|| HistogramSnapshot::new(count_stability))
            .record(us);
    }
}

fn active() -> Option<Arc<Inner>> {
    if INSTALLS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    if let Some(local) = LOCAL.with(|l| l.borrow().clone()) {
        return Some(local);
    }
    match ACTIVE.read() {
        Ok(g) => g.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

/// Whether any collector is currently installed (globally or
/// thread-locally anywhere in the process). Instrumentation sites do
/// not need to call this — every recording function checks it first —
/// but callers can use it to skip building expensive labels.
pub fn enabled() -> bool {
    INSTALLS.load(Ordering::Relaxed) > 0
}

/// Adds `delta` to the named counter (no-op when disabled).
pub fn counter(name: &'static str, delta: u64, stability: Stability) {
    if let Some(inner) = active() {
        inner.counter(name, delta, stability);
    }
}

/// Sets the named gauge (last write wins; no-op when disabled).
pub fn gauge_set(name: &'static str, value: u64, stability: Stability) {
    if let Some(inner) = active() {
        inner.gauge_set(name, value, stability);
    }
}

/// Records one sample (µs) into the named histogram (no-op when
/// disabled). The histogram's *count* is declared scheduling-stable; use
/// [`observe_us_unstable`] when even the sample count varies with the
/// worker count.
pub fn observe_us(name: &'static str, us: u64) {
    if let Some(inner) = active() {
        inner.observe_us(name, us, Stability::Stable);
    }
}

/// [`observe_us`] for histograms whose sample count is itself
/// scheduling-dependent (e.g. one sample per worker thread).
pub fn observe_us_unstable(name: &'static str, us: u64) {
    if let Some(inner) = active() {
        inner.observe_us(name, us, Stability::Timing);
    }
}

/// An open span; finishing (dropping) it records the span and,
/// for [`stage`] spans, a latency histogram sample. `None` inside when
/// the collector is disabled — the whole guard is then a no-op.
#[derive(Debug)]
pub struct SpanGuard(Option<OpenSpan>);

#[derive(Debug)]
struct OpenSpan {
    inner: Option<Arc<Inner>>,
    trace: Option<Arc<crate::trace::TraceInner>>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    attrs: Vec<(&'static str, u64)>,
    seq: u64,
    start: Instant,
    /// Start offset relative to the *collector's* epoch (the trace sink
    /// recomputes its own offset from `start`).
    start_us: u64,
    record_histogram: bool,
}

fn open_span(
    name: &'static str,
    attrs: &[(&'static str, u64)],
    record_histogram: bool,
) -> SpanGuard {
    // The disabled fast path: two relaxed loads, no further work.
    if INSTALLS.load(Ordering::Relaxed) == 0 && !crate::trace::any_entered() {
        return SpanGuard(None);
    }
    let inner = active();
    let trace = crate::trace::current();
    if inner.is_none() && trace.is_none() {
        return SpanGuard(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let start = Instant::now();
    SpanGuard(Some(OpenSpan {
        start_us: inner
            .as_ref()
            .map(|i| start.duration_since(i.epoch).as_micros() as u64)
            .unwrap_or(0),
        inner,
        trace,
        id,
        parent,
        name,
        attrs: attrs.to_vec(),
        seq,
        start,
        record_histogram,
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else {
            return;
        };
        let duration_us = open.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Defensive: only unwind our own frame (guards drop LIFO in
            // well-formed code, but a leaked guard must not corrupt the
            // stack for unrelated spans).
            if s.last() == Some(&open.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&id| id == open.id) {
                s.truncate(pos);
            }
        });
        let raw = RawSpan {
            id: open.id,
            parent: open.parent,
            name: open.name,
            attrs: open.attrs,
            thread: thread_id(),
            seq: open.seq,
            start_us: open.start_us,
            duration_us,
        };
        if let Some(trace) = open.trace {
            trace.record_span(raw.clone(), open.start);
        }
        if let Some(inner) = open.inner {
            if open.record_histogram {
                inner.observe_us(open.name, duration_us, Stability::Stable);
            }
            lock(&inner.spans).push(raw);
        }
    }
}

/// Builds a finished root-level span record for work measured outside
/// the guard machinery — e.g. the frame decode that *produces* a
/// request's trace id, which necessarily completes before the trace
/// exists. Only the trace sink injects these.
pub(crate) fn external_raw_span(name: &'static str, duration_us: u64) -> RawSpan {
    RawSpan {
        id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
        parent: None,
        name,
        attrs: Vec::new(),
        thread: thread_id(),
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        start_us: 0,
        duration_us,
    }
}

/// Opens a span named `name` as a child of the thread's innermost open
/// span. One atomic load when disabled.
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, &[], false)
}

/// [`span`] with structured attributes (e.g. the datalog index and
/// suspect slot of a batch job).
pub fn span_with(name: &'static str, attrs: &[(&'static str, u64)]) -> SpanGuard {
    open_span(name, attrs, false)
}

/// A *stage* span: like [`span`], and additionally records the span
/// duration into the latency histogram of the same name on close — the
/// per-stage latency metric of the diagnosis flow.
pub fn stage(name: &'static str) -> SpanGuard {
    open_span(name, &[], true)
}

/// A handle to one run's recorded observability data. Create one, pass
/// it to an instrumented driver (or [`install`](Collector::install) it
/// around arbitrary code), then export with [`snapshot`](Collector::
/// snapshot) / [`span_forest`](Collector::span_forest) /
/// [`trace_json`](Collector::trace_json).
#[derive(Debug, Clone)]
pub struct Collector {
    inner: Arc<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// A fresh, empty collector (not yet installed).
    pub fn new() -> Self {
        Collector {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                metrics: Mutex::default(),
                spans: Mutex::default(),
            }),
        }
    }

    /// Makes this collector the process-global recording target until
    /// the returned guard drops (which restores the previously installed
    /// collector, if any).
    #[must_use = "recording stops when the guard drops"]
    pub fn install(&self) -> InstallGuard {
        let prev = {
            let mut slot = match ACTIVE.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.replace(Arc::clone(&self.inner))
        };
        INSTALLS.fetch_add(1, Ordering::Relaxed);
        InstallGuard { prev }
    }

    /// Makes this collector the recording target for the **current
    /// thread only** until the returned guard drops. A thread-local
    /// install shadows any global one on this thread and is invisible to
    /// other threads — the isolation unit tests need to count metrics
    /// deterministically while sibling tests run instrumented code
    /// concurrently.
    #[must_use = "recording stops when the guard drops"]
    pub fn install_local(&self) -> LocalInstallGuard {
        let prev = LOCAL.with(|l| l.borrow_mut().replace(Arc::clone(&self.inner)));
        INSTALLS.fetch_add(1, Ordering::Relaxed);
        LocalInstallGuard {
            prev,
            _not_send: PhantomData,
        }
    }

    /// An immutable capture of every metric recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = lock(&self.inner.metrics);
        MetricsSnapshot {
            counters: m.counters.clone(),
            gauges: m.gauges.clone(),
            histograms: m.histograms.clone(),
        }
    }

    /// The finished spans as a canonical forest: roots ordered by their
    /// job identity (`datalog`/`slot` attributes) rather than completion
    /// order, children by start order — reproducible at any worker
    /// count.
    pub fn span_forest(&self) -> Vec<SpanNode> {
        build_forest(&lock(&self.inner.spans))
    }

    /// The span forest as JSON. With `redact`, timing- and
    /// scheduling-dependent fields (thread, start, duration) are
    /// omitted, leaving the structurally deterministic tree.
    pub fn trace_json(&self, redact: bool) -> String {
        crate::span::forest_json(&self.span_forest(), redact)
    }
}

/// Uninstalls the collector on drop, restoring the previous one.
#[derive(Debug)]
pub struct InstallGuard {
    prev: Option<Arc<Inner>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        {
            let mut slot = match ACTIVE.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            *slot = self.prev.take();
        }
        INSTALLS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Uninstalls a thread-local collector on drop, restoring the thread's
/// previous one. `!Send`: must drop on the installing thread.
#[derive(Debug)]
pub struct LocalInstallGuard {
    prev: Option<Arc<Inner>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for LocalInstallGuard {
    fn drop(&mut self) {
        LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
        INSTALLS.fetch_sub(1, Ordering::Relaxed);
    }
}
