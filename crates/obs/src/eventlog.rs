//! A size-rotated JSONL event log: one line per record, appended under
//! a mutex, rolled to `<path>.1` when the active file would exceed its
//! budget.
//!
//! The server writes one record per completed wire request (trace id,
//! outcome, timings, span forest); a long-running daemon must bound the
//! disk it consumes, so the log keeps at most two generations — the
//! active file and one rotated predecessor — for a worst case of
//! roughly `2 × max_bytes` on disk.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// Default rotation budget: 64 MiB per generation.
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

#[derive(Debug)]
struct EventLogInner {
    file: File,
    written: u64,
}

/// A shared, size-rotated append-only JSONL file.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<EventLogInner>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl EventLog {
    /// Opens (appending) or creates the log at `path`, rotating once a
    /// generation exceeds `max_bytes` (clamped to at least 4 KiB so a
    /// tiny budget cannot rotate on every record).
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<EventLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(EventLog {
            path,
            max_bytes: max_bytes.max(4096),
            inner: Mutex::new(EventLogInner { file, written }),
        })
    }

    /// The path of the active generation.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Appends one record (a single line, no trailing newline needed —
    /// one is added; embedded newlines would corrupt the JSONL framing
    /// and are replaced with spaces). Rotates first when the record
    /// would push the active generation past the budget.
    pub fn write_line(&self, line: &str) -> io::Result<()> {
        let clean;
        let line = if line.contains('\n') {
            clean = line.replace('\n', " ");
            clean.as_str()
        } else {
            line
        };
        let mut inner = lock(&self.inner);
        let record_len = line.len() as u64 + 1;
        if inner.written > 0 && inner.written + record_len > self.max_bytes {
            inner.file.flush()?;
            std::fs::rename(&self.path, self.rotated_path())?;
            inner.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            inner.written = 0;
        }
        inner.file.write_all(line.as_bytes())?;
        inner.file.write_all(b"\n")?;
        inner.file.flush()?;
        inner.written += record_len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("icd-obs-eventlog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn appends_lines_and_survives_reopen() {
        let dir = temp_dir("append");
        let path = dir.join("events.jsonl");
        {
            let log = EventLog::open(&path, DEFAULT_MAX_BYTES).unwrap();
            log.write_line("{\"a\":1}").unwrap();
            log.write_line("{\"b\":2}").unwrap();
        }
        let log = EventLog::open(&path, DEFAULT_MAX_BYTES).unwrap();
        log.write_line("{\"c\":3}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotates_to_dot_one_when_over_budget() {
        let dir = temp_dir("rotate");
        let path = dir.join("events.jsonl");
        let log = EventLog::open(&path, 4096).unwrap();
        let record = format!("{{\"pad\":\"{}\"}}", "x".repeat(1000));
        for _ in 0..8 {
            log.write_line(&record).unwrap();
        }
        let rotated = std::fs::read_to_string(log.rotated_path()).unwrap();
        let active = std::fs::read_to_string(&path).unwrap();
        assert!(!rotated.is_empty(), "rotation must have happened");
        // No record is lost or split across the boundary.
        let total = rotated.lines().count() + active.lines().count();
        assert_eq!(total, 8);
        for line in rotated.lines().chain(active.lines()) {
            assert_eq!(line.len(), record.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn embedded_newlines_cannot_break_framing() {
        let dir = temp_dir("newline");
        let path = dir.join("events.jsonl");
        let log = EventLog::open(&path, DEFAULT_MAX_BYTES).unwrap();
        log.write_line("bad\nrecord").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "bad record\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
