//! Canonical span trees: turning the unordered stream of finished spans
//! into a forest whose *structure* is identical for any worker count.
//!
//! Spans finish in scheduling order, so the raw record is
//! nondeterministic. Canonicalization restores determinism:
//!
//! * roots carrying a `datalog` attribute (batch jobs) are ordered by
//!   `(datalog, name, slot)` — the same key the batch engine merges
//!   reports by;
//! * other roots (coordinator-side setup like the good-machine
//!   simulation) keep their mutual start order, ahead of the jobs;
//! * children of one span run sequentially on one thread, so start
//!   order is already deterministic.
//!
//! Timings, thread ids and start offsets remain scheduling-dependent;
//! [`forest_json`]'s redaction mode omits them, and
//! `tests/tests/obs_determinism.rs` asserts the redacted JSON is
//! byte-identical at 1 and 8 workers.

use std::collections::BTreeMap;

use crate::collector::RawSpan;
use crate::json;

/// One span in the canonical forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span name (a static site label, e.g. `flow.intra_cell`).
    pub name: &'static str,
    /// Structured attributes recorded at open time.
    pub attrs: Vec<(&'static str, u64)>,
    /// Dense per-process id of the recording thread.
    pub thread: u64,
    /// Start offset from collector creation (µs).
    pub start_us: u64,
    /// Wall-clock duration (µs).
    pub duration_us: u64,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Total spans in this subtree including itself.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }
}

fn build_node(raw: &RawSpan, children_of: &BTreeMap<u64, Vec<&RawSpan>>) -> SpanNode {
    let mut children: Vec<&RawSpan> = children_of.get(&raw.id).cloned().unwrap_or_default();
    children.sort_by_key(|c| c.seq);
    SpanNode {
        name: raw.name,
        attrs: raw.attrs.clone(),
        thread: raw.thread,
        start_us: raw.start_us,
        duration_us: raw.duration_us,
        children: children
            .into_iter()
            .map(|c| build_node(c, children_of))
            .collect(),
    }
}

pub(crate) fn build_forest(raws: &[RawSpan]) -> Vec<SpanNode> {
    let ids: std::collections::BTreeSet<u64> = raws.iter().map(|r| r.id).collect();
    let mut children_of: BTreeMap<u64, Vec<&RawSpan>> = BTreeMap::new();
    let mut roots: Vec<&RawSpan> = Vec::new();
    for raw in raws {
        match raw.parent {
            // A parent that never finished (open guard at export time)
            // is treated as absent: the child is promoted to a root.
            Some(p) if ids.contains(&p) => children_of.entry(p).or_default().push(raw),
            _ => roots.push(raw),
        }
    }
    // Canonical root order: setup roots (no datalog attribute) first in
    // start order, then job roots by (datalog, name, slot).
    let mut keyed: Vec<(RootKey, SpanNode)> = roots
        .into_iter()
        .map(|r| {
            let node = build_node(r, &children_of);
            (root_key(&node, r.seq), node)
        })
        .collect();
    keyed.sort_by_key(|&(key, _)| key);
    keyed.into_iter().map(|(_, n)| n).collect()
}

type RootKey = (u8, u64, &'static str, u64, u64);

fn root_key(node: &SpanNode, seq: u64) -> RootKey {
    match node.attr("datalog") {
        // Setup roots run sequentially on the coordinator: their mutual
        // seq order is deterministic even though absolute values are not.
        None => (0, 0, node.name, 0, seq),
        Some(datalog) => (1, datalog, node.name, node.attr("slot").unwrap_or(0), 0),
    }
}

fn node_json(out: &mut String, node: &SpanNode, redact: bool, indent: usize) {
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push_str("{ \"name\": ");
    json::write_string(out, node.name);
    if !node.attrs.is_empty() {
        out.push_str(", \"attrs\": {");
        for (i, (k, v)) in node.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            } else {
                out.push(' ');
            }
            json::write_string(out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str(" }");
    }
    if !redact {
        out.push_str(&format!(
            ", \"thread\": {}, \"start_us\": {}, \"duration_us\": {}",
            node.thread, node.start_us, node.duration_us
        ));
    }
    if node.children.is_empty() {
        out.push_str(" }");
    } else {
        out.push_str(", \"children\": [\n");
        for (i, child) in node.children.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            node_json(out, child, redact, indent + 1);
        }
        out.push('\n');
        out.push_str(&pad);
        out.push_str("] }");
    }
}

/// Serializes a canonical forest as `{"trace": [...]}`. With `redact`,
/// thread ids, start offsets and durations are omitted so the output is
/// byte-identical for any scheduling of the same input.
pub fn forest_json(forest: &[SpanNode], redact: bool) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{ \"trace\": [\n");
    for (i, node) in forest.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        node_json(&mut out, node, redact, 1);
    }
    out.push_str("\n] }\n");
    out
}
