//! Minimal JSON support: an escaping writer used by the exporters and a
//! small recursive-descent parser used by validation tooling (`icdiag
//! check-metrics`) and tests — the workspace is offline, so no serde.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys ordered.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What was expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document (one value, optionally surrounded by
/// whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not reassembled; replace.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(|a| a[0].as_u64()),
            Some(Some(1))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")).and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("e")), Some(&Value::Null));
    }

    #[test]
    fn escaping_round_trips() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = parse(&out).expect("escaped string parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("[1, x]").expect_err("malformed");
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
