//! Typed metrics: counters, gauges and fixed-bucket log-scale
//! histograms, snapshotted into an immutable, exportable value.
//!
//! Every recorded value carries a [`Stability`] class so a snapshot can
//! be *redacted* into its scheduling-independent core: [`Stability::
//! Timing`] values (durations, contention counters, anything that
//! legitimately varies with the worker count or the host) are zeroed by
//! [`MetricsSnapshot::redacted`], while [`Stability::Stable`] values
//! (job counts, cache lookup totals, set-cover iterations) must be
//! byte-identical for any scheduling of the same input — the property
//! `tests/tests/obs_determinism.rs` enforces end to end.

use std::collections::BTreeMap;
use std::fmt;

use crate::json;

/// How a recorded value behaves under rescheduling of the same input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Deterministic for a given input, independent of worker count,
    /// scheduling order and host speed (e.g. jobs executed, cache
    /// *lookup* totals, set-cover iterations).
    Stable,
    /// Timing- or contention-dependent (e.g. latencies, steal counts,
    /// cache hit/miss *splits*, which race on cold keys). Redaction
    /// zeroes these.
    Timing,
}

impl Stability {
    fn as_str(self) -> &'static str {
        match self {
            Stability::Stable => "stable",
            Stability::Timing => "timing",
        }
    }

    /// The less stable of two classes wins when a metric is recorded
    /// with inconsistent declarations.
    pub(crate) fn merge(self, other: Stability) -> Stability {
        if self == Stability::Timing || other == Stability::Timing {
            Stability::Timing
        } else {
            Stability::Stable
        }
    }
}

/// Number of histogram buckets: bucket `i < BUCKETS - 1` counts values
/// `v` (in microseconds) with `2^i <= v < 2^(i+1)` (bucket 0 also takes
/// `v = 0`); the last bucket is the overflow bucket.
pub const BUCKETS: usize = 22;

/// The inclusive lower bound (µs) of histogram bucket `i`.
pub fn bucket_lower_bound_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i.min(BUCKETS - 1)
    }
}

/// The bucket index a value (µs) falls into.
pub fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// One histogram's accumulated state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values (µs).
    pub sum_us: u64,
    /// Largest single recorded value (µs); always [`Stability::Timing`],
    /// zeroed by redaction like the rest of the distribution.
    pub max_us: u64,
    /// Per-bucket sample counts (see [`bucket_lower_bound_us`]).
    pub buckets: [u64; BUCKETS],
    /// Whether the *count* is scheduling-independent. The value
    /// distribution (sum, max, buckets) is always [`Stability::Timing`].
    pub count_stability: Stability,
}

impl HistogramSnapshot {
    /// A fresh, empty histogram whose sample *count* has the given
    /// stability class.
    pub fn new(count_stability: Stability) -> Self {
        HistogramSnapshot {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: [0; BUCKETS],
            count_stability,
        }
    }

    /// Records one sample (µs). The sum saturates rather than wrapping:
    /// a long-lived daemon must not be able to panic a histogram.
    pub fn record(&mut self, us: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Folds another histogram into this one (bucket-wise sum, max of
    /// maxes). Used by windowed aggregation to merge time slices.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count_stability = self.count_stability.merge(other.count_stability);
    }

    /// Mean sample value in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 < q <= 1.0`) in microseconds
    /// from the log₂ buckets, `None` when the histogram is empty.
    ///
    /// The rank-`r` sample (`r = ceil(q·count)`, clamped to
    /// `[1, count]`) lives in some bucket `[lower, upper)`; the estimate
    /// interpolates linearly between `lower` and `upper − 1` by the
    /// sample's position inside that bucket, so it always falls inside
    /// the value range the bucket can actually hold (error strictly less
    /// than one bucket width). The overflow bucket has no upper bound
    /// and clamps to its lower bound; a recorded [`max_us`](Self::
    /// max_us) additionally caps every estimate. Estimates are monotone
    /// in `q` by construction.
    pub fn percentile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 || cum + in_bucket < rank {
                cum += in_bucket;
                continue;
            }
            let lower = bucket_lower_bound_us(i);
            let est = if i + 1 >= BUCKETS {
                // Overflow bucket: unbounded above, clamp to the floor.
                lower
            } else if in_bucket == 1 {
                lower
            } else {
                let upper = bucket_lower_bound_us(i + 1);
                let pos = rank - cum; // 1..=in_bucket
                lower + (upper - 1 - lower) * (pos - 1) / (in_bucket - 1)
            };
            return Some(est.min(self.max_us));
        }
        // Unreachable when buckets sum to count; be conservative for
        // hand-built histograms that violate the invariant.
        None
    }
}

/// An immutable capture of every metric a [`Collector`](crate::Collector)
/// accumulated, ordered deterministically by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, (u64, Stability)>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<&'static str, (u64, Stability)>,
    /// Latency histograms.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a named counter, `None` when it was never recorded.
    /// Convenience for callers (CLI summaries, server health endpoints,
    /// tests) that surface a handful of counters without walking the map.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).map(|&(v, _)| v)
    }

    /// The value of a named gauge, `None` when it was never recorded.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).map(|&(v, _)| v)
    }

    /// The scheduling-independent core of the snapshot: every
    /// [`Stability::Timing`] counter/gauge value is zeroed, histogram
    /// distributions (sum, buckets) are zeroed, and histogram counts
    /// survive only when declared stable. The key set is untouched, so
    /// two redacted snapshots of the same input are byte-identical in
    /// JSON regardless of worker count — the contract behind
    /// `tests/tests/obs_determinism.rs`.
    pub fn redacted(&self) -> MetricsSnapshot {
        let scrub = |m: &BTreeMap<&'static str, (u64, Stability)>| {
            m.iter()
                .map(|(&k, &(v, st))| {
                    let v = if st == Stability::Timing { 0 } else { v };
                    (k, (v, st))
                })
                .collect()
        };
        MetricsSnapshot {
            counters: scrub(&self.counters),
            gauges: scrub(&self.gauges),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| {
                    let mut r = HistogramSnapshot::new(h.count_stability);
                    if h.count_stability == Stability::Stable {
                        r.count = h.count;
                    }
                    (k, r)
                })
                .collect(),
        }
    }

    /// Machine-readable JSON: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` with deterministic key order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        let scalar = |out: &mut String, m: &BTreeMap<&'static str, (u64, Stability)>| {
            let mut first = true;
            for (name, (value, st)) in m {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    ");
                json::write_string(out, name);
                out.push_str(&format!(
                    ": {{ \"value\": {value}, \"stability\": \"{}\" }}",
                    st.as_str()
                ));
            }
            if !first {
                out.push_str("\n  ");
            }
        };
        scalar(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        scalar(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            json::write_string(&mut out, name);
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                ": {{ \"count\": {}, \"count_stability\": \"{}\", \"sum_us\": {}, \
                 \"max_us\": {}, \"buckets\": [{}] }}",
                h.count,
                h.count_stability.as_str(),
                h.sum_us,
                h.max_us,
                buckets.join(", ")
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    /// A human summary table: counters and gauges as `name value`,
    /// histograms as `name count total mean`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max(6);
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, (value, _)) in &self.counters {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, (value, _)) in &self.gauges {
                writeln!(f, "  {name:<width$}  {value}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "histograms:\n  {:<width$}  {:>8}  {:>12}  {:>10}",
                "name", "count", "total_us", "mean_us"
            )?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "  {name:<width$}  {:>8}  {:>12}  {:>10.1}",
                    h.count,
                    h.sum_us,
                    h.mean_us()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_lower_bound_us(0), 0);
        assert_eq!(bucket_lower_bound_us(1), 2);
        assert_eq!(bucket_lower_bound_us(4), 16);
        // 0 and 1 land in the first bucket; boundary values start a new
        // bucket; everything past the last boundary lands in overflow.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Exhaustively: every bucket's lower bound maps back to itself.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound_us(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_accumulates_and_means() {
        let mut h = HistogramSnapshot::new(Stability::Stable);
        for us in [0, 1, 2, 1024] {
            h.record(us);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum_us, 1027);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[10], 1);
        assert!((h.mean_us() - 1027.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate_within_bucket_bounds() {
        let mut h = HistogramSnapshot::new(Stability::Timing);
        assert_eq!(h.percentile_us(0.5), None);
        h.record(100);
        // A single sample: every quantile is that sample's bucket floor,
        // capped by the sample itself.
        assert_eq!(h.percentile_us(0.5), Some(64));
        assert_eq!(h.percentile_us(0.99), Some(64));
        for us in [0, 10, 1000, 100_000] {
            h.record(us);
        }
        let p50 = h.percentile_us(0.50).unwrap();
        let p95 = h.percentile_us(0.95).unwrap();
        let p99 = h.percentile_us(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // p99 of 5 samples is the rank-5 sample (100_000), whose bucket
        // is [65536, 131072); the estimate stays inside it.
        assert!((65_536..131_072).contains(&p99), "{p99}");
        // All samples in the overflow bucket clamp to its floor.
        let mut top = HistogramSnapshot::new(Stability::Timing);
        for _ in 0..3 {
            top.record(u64::MAX / 2);
        }
        assert_eq!(
            top.percentile_us(0.99),
            Some(bucket_lower_bound_us(BUCKETS - 1))
        );
        // All-zero samples report zero, not the bucket's upper edge.
        let mut zeros = HistogramSnapshot::new(Stability::Timing);
        for _ in 0..8 {
            zeros.record(0);
        }
        assert_eq!(zeros.percentile_us(0.99), Some(0));
    }

    #[test]
    fn merge_folds_counts_sums_and_maxes() {
        let mut a = HistogramSnapshot::new(Stability::Stable);
        a.record(10);
        let mut b = HistogramSnapshot::new(Stability::Timing);
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum_us, 5010);
        assert_eq!(a.max_us, 5000);
        assert_eq!(a.buckets.iter().sum::<u64>(), 2);
        assert_eq!(a.count_stability, Stability::Timing);
    }

    #[test]
    fn redaction_zeroes_timing_values_but_keeps_keys() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.stable", (7, Stability::Stable));
        snap.counters.insert("b.timing", (9, Stability::Timing));
        snap.gauges.insert("g", (3, Stability::Timing));
        let mut stable_h = HistogramSnapshot::new(Stability::Stable);
        stable_h.record(100);
        snap.histograms.insert("h.stable_count", stable_h);
        let mut timing_h = HistogramSnapshot::new(Stability::Timing);
        timing_h.record(100);
        snap.histograms.insert("h.timing_count", timing_h);

        let r = snap.redacted();
        assert_eq!(r.counters["a.stable"], (7, Stability::Stable));
        assert_eq!(r.counters["b.timing"], (0, Stability::Timing));
        assert_eq!(r.gauges["g"], (0, Stability::Timing));
        let h = &r.histograms["h.stable_count"];
        assert_eq!((h.count, h.sum_us, h.max_us), (1, 0, 0));
        assert_eq!(h.buckets, [0; BUCKETS]);
        assert_eq!(r.histograms["h.timing_count"].count, 0);
        // Same key set as the original.
        assert_eq!(
            snap.counters.keys().collect::<Vec<_>>(),
            r.counters.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("jobs", (42, Stability::Stable));
        snap.gauges.insert("workers", (8, Stability::Timing));
        let mut h = HistogramSnapshot::new(Stability::Stable);
        h.record(5);
        snap.histograms.insert("stage.x", h);
        let text = snap.to_json();
        let v = json::parse(&text).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("jobs"))
                .and_then(|j| j.get("value"))
                .and_then(json::Value::as_u64),
            Some(42)
        );
        assert_eq!(
            v.get("histograms")
                .and_then(|hs| hs.get("stage.x"))
                .and_then(|h| h.get("count"))
                .and_then(json::Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn display_renders_a_table() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("jobs", (42, Stability::Stable));
        let text = snap.to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("jobs"));
        assert!(text.contains("42"));
    }
}
