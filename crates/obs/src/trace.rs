//! Per-request traces: a second, request-scoped span sink that rides
//! the same instrumentation sites as the process collector.
//!
//! The server mints (or accepts from the client) a 64-bit trace id per
//! wire request and creates a [`TraceContext`]. Every thread that does
//! work for the request — the connection thread around frame decode and
//! response encode, each engine worker inside the request's jobs —
//! [`enter`](TraceContext::enter)s the context for the duration of that
//! work. While entered, every span opened by [`span`](crate::span) /
//! [`stage`](crate::stage) is recorded into the trace *in addition to*
//! whatever collector is installed, so one request's full span forest
//! (frame decode → engine job → flow stages) can be serialized as a
//! single structured event-log record, without fishing it back out of
//! the process-global stream.
//!
//! Timestamped point events (retries, degradations, per-device
//! progress) attach to the trace via [`TraceContext::event`] or, from
//! code that only knows "the current request", [`trace_event`].
//!
//! Cost model: the disabled instrumentation fast path is two relaxed
//! atomic loads (collector installs, entered traces); entering a trace
//! is a thread-local swap. Contexts are `Send + Sync` and cheap to
//! clone (an `Arc`).

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::collector::RawSpan;
use crate::span::{build_forest, SpanNode};

/// Count of entered trace guards process-wide; the disabled fast path
/// in the span sites loads this once, relaxed.
static ENTERED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The trace the current thread is doing work for, if any.
    static CURRENT: RefCell<Option<Arc<TraceInner>>> = const { RefCell::new(None) };
}

pub(crate) fn any_entered() -> bool {
    ENTERED.load(Ordering::Relaxed) > 0
}

pub(crate) fn current() -> Option<Arc<TraceInner>> {
    CURRENT.with(|c| c.borrow().clone())
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One timestamped point event on a trace (a retry, a degradation, a
/// per-device completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the trace was created.
    pub at_us: u64,
    /// A static site label, e.g. `retry.panic`.
    pub kind: &'static str,
    /// Free-form detail, kept short (one line).
    pub detail: String,
}

#[derive(Debug)]
pub(crate) struct TraceInner {
    trace_id: u64,
    epoch: Instant,
    spans: Mutex<Vec<RawSpan>>,
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceInner {
    pub(crate) fn record_span(&self, mut raw: RawSpan, start: Instant) {
        raw.start_us = start.duration_since(self.epoch).as_micros() as u64;
        lock(&self.spans).push(raw);
    }

    fn event(&self, kind: &'static str, detail: String) {
        let at_us = self.epoch.elapsed().as_micros() as u64;
        lock(&self.events).push(TraceEvent {
            at_us,
            kind,
            detail,
        });
    }
}

/// A handle to one request's trace. Clone it into every closure that
/// does work for the request and [`enter`](TraceContext::enter) it on
/// the executing thread.
#[derive(Debug, Clone)]
pub struct TraceContext {
    inner: Arc<TraceInner>,
}

impl TraceContext {
    /// A fresh trace with the given wire trace id.
    pub fn new(trace_id: u64) -> Self {
        TraceContext {
            inner: Arc::new(TraceInner {
                trace_id,
                epoch: Instant::now(),
                spans: Mutex::default(),
                events: Mutex::default(),
            }),
        }
    }

    /// The 64-bit wire trace id.
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// Microseconds since the trace was created.
    pub fn elapsed_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Makes this trace the current one for the calling thread until
    /// the guard drops (restoring whatever was current before). Spans
    /// opened while entered are recorded into the trace.
    #[must_use = "the trace detaches when the guard drops"]
    pub fn enter(&self) -> TraceGuard {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.inner)));
        ENTERED.fetch_add(1, Ordering::Relaxed);
        TraceGuard {
            prev,
            _not_send: PhantomData,
        }
    }

    /// Records a timestamped point event on the trace.
    pub fn event(&self, kind: &'static str, detail: impl Into<String>) {
        self.inner.event(kind, detail.into());
    }

    /// Records an already-measured root span into the trace — for work
    /// that finishes before the trace can exist, like the frame decode
    /// that produced the trace id. A `start` earlier than the trace's
    /// creation clamps to offset zero.
    pub fn record_span_external(
        &self,
        name: &'static str,
        start: Instant,
        duration: std::time::Duration,
    ) {
        let raw = crate::collector::external_raw_span(name, duration.as_micros() as u64);
        self.inner.record_span(raw, start);
    }

    /// The recorded point events, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.inner.events).clone()
    }

    /// The finished spans as a canonical forest (same ordering rules as
    /// [`Collector::span_forest`](crate::Collector::span_forest)).
    pub fn span_forest(&self) -> Vec<SpanNode> {
        build_forest(&lock(&self.inner.spans))
    }
}

/// Detaches the trace from the thread on drop, restoring the previous
/// one. `!Send`: must drop on the entering thread.
#[derive(Debug)]
pub struct TraceGuard {
    prev: Option<Arc<TraceInner>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        ENTERED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Records a point event on the calling thread's current trace, if any.
/// Two relaxed loads when no trace is entered anywhere.
pub fn trace_event(kind: &'static str, detail: impl Into<String>) {
    if !any_entered() {
        return;
    }
    if let Some(inner) = current() {
        inner.event(kind, detail.into());
    }
}

static NEXT_MINT: AtomicU64 = AtomicU64::new(0);

/// Mints a process-unique, non-zero trace id for requests that did not
/// supply one: a counter whose high bits are scrambled with a SplitMix64
/// finalizer so ids from different processes rarely collide visually.
pub fn mint_trace_id() -> u64 {
    let n = NEXT_MINT.fetch_add(1, Ordering::Relaxed);
    let mut z = n.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z | 1 // never zero: zero means "no trace id" on the wire
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn events_record_in_order_with_timestamps() {
        let trace = TraceContext::new(7);
        trace.event("first", "a");
        trace.event("second", "b");
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "first");
        assert_eq!(events[1].kind, "second");
        assert!(events[0].at_us <= events[1].at_us);
    }

    #[test]
    fn trace_event_without_an_entered_trace_is_a_noop() {
        trace_event("orphan", "nobody listening");
        let trace = TraceContext::new(1);
        {
            let _g = trace.enter();
            trace_event("attached", "x");
        }
        trace_event("detached", "y");
        let events = trace.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "attached");
    }

    #[test]
    fn external_spans_land_as_roots_with_clamped_start() {
        let trace = TraceContext::new(9);
        // Started "before" the trace existed: offset clamps to zero.
        let early = Instant::now() - std::time::Duration::from_millis(50);
        trace.record_span_external("t.decode", early, std::time::Duration::from_micros(123));
        let forest = trace.span_forest();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "t.decode");
        assert_eq!(forest[0].start_us, 0);
        assert_eq!(forest[0].duration_us, 123);
    }

    #[test]
    fn enter_nests_and_restores() {
        let outer = TraceContext::new(1);
        let inner = TraceContext::new(2);
        let _a = outer.enter();
        {
            let _b = inner.enter();
            trace_event("e", "inner wins");
        }
        trace_event("e", "outer restored");
        assert_eq!(inner.events().len(), 1);
        assert_eq!(outer.events().len(), 1);
        assert_eq!(outer.events()[0].detail, "outer restored");
    }
}
