//! Property tests for log₂-bucket percentile estimation — the math
//! behind the daemon's live p50/p95/p99 stats.
//!
//! The contract under test ([`HistogramSnapshot::percentile_us`]):
//!
//! * estimates are **monotone** in `q`;
//! * every estimate is **bounded** by the recorded max and sits inside
//!   the bucket of the true nearest-rank sample, so the absolute error
//!   is strictly less than one bucket width;
//! * the empty histogram yields `None`, a single sample pins every
//!   quantile, and the unbounded top bucket clamps to its floor.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_obs::{bucket_index, bucket_lower_bound_us, HistogramSnapshot, Stability, BUCKETS};
use proptest::prelude::*;

/// Samples spanning every magnitude: a uniform u64 right-shifted by a
/// uniform amount lands in all 22 buckets with meaningful probability
/// (plain uniform u64 would pile everything into the overflow bucket).
fn arb_samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        (any::<u64>(), 0usize..64).prop_map(|(v, shift)| v >> shift),
        1..=max_len,
    )
}

fn histogram_of(samples: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new(Stability::Timing);
    for &s in samples {
        h.record(s);
    }
    h
}

/// The exact nearest-rank quantile the estimate approximates.
fn true_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn percentiles_are_monotone_in_q(samples in arb_samples(200)) {
        let h = histogram_of(&samples);
        let qs = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0];
        let mut prev = 0u64;
        for q in qs {
            let est = h.percentile_us(q).unwrap();
            prop_assert!(
                est >= prev,
                "percentile_us({q}) = {est} dropped below {prev}"
            );
            prop_assert!(est <= h.max_us, "estimate exceeds the recorded max");
            prev = est;
        }
    }

    #[test]
    fn estimates_land_in_the_true_sample_bucket(
        samples in arb_samples(100),
        q_permille in 1u32..=1000,
    ) {
        let q = f64::from(q_permille) / 1000.0;
        let h = histogram_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let truth = true_nearest_rank(&sorted, q);
        let est = h.percentile_us(q).unwrap();
        // Same log₂ bucket as the true nearest-rank sample: the lower
        // bound is hard; the upper bound holds except where the global
        // max (which caps every estimate) lives in the same bucket.
        let bucket = bucket_index(truth);
        prop_assert!(
            est >= bucket_lower_bound_us(bucket),
            "estimate {est} fell below its bucket floor for truth {truth}"
        );
        if bucket + 1 < BUCKETS {
            prop_assert!(
                est < bucket_lower_bound_us(bucket + 1),
                "estimate {est} escaped the bucket of truth {truth}"
            );
        }
    }

    #[test]
    fn merged_histograms_estimate_like_the_union(
        a in arb_samples(60),
        b in arb_samples(60),
    ) {
        // Windowed stats merge per-slice histograms; merging then
        // estimating must equal recording the union directly.
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let direct = histogram_of(&union);
        for q in [0.50, 0.95, 0.99] {
            prop_assert_eq!(merged.percentile_us(q), direct.percentile_us(q));
        }
    }
}

#[test]
fn empty_histogram_has_no_percentiles() {
    let h = HistogramSnapshot::new(Stability::Timing);
    for q in [0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.percentile_us(q), None);
    }
}

#[test]
fn a_single_sample_pins_every_quantile() {
    for sample in [0u64, 1, 7, 1024, 123_456_789] {
        let mut h = HistogramSnapshot::new(Stability::Timing);
        h.record(sample);
        let floor = bucket_lower_bound_us(bucket_index(sample));
        for q in [0.01, 0.5, 0.99, 1.0] {
            let est = h.percentile_us(q).unwrap();
            assert_eq!(est, floor.min(sample), "sample {sample}, q {q}");
            assert!(est <= sample);
        }
    }
}

#[test]
fn all_samples_in_the_top_bucket_clamp_to_its_floor() {
    let mut h = HistogramSnapshot::new(Stability::Timing);
    let floor = bucket_lower_bound_us(BUCKETS - 1);
    for v in [floor, floor * 3, u64::MAX] {
        h.record(v);
    }
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(h.percentile_us(q), Some(floor));
    }
}
