//! Batch-engine throughput: 1 worker vs N workers over one batch of
//! failing devices on a scaled-down circuit B.
//!
//! Besides the criterion display, the worker sweep writes the
//! machine-readable `BENCH_engine.json` at the workspace root:
//! wall-clock seconds, patterns/s, suspect-jobs/s and speedup vs one
//! worker, plus the host's core count (speedup saturates at the physical
//! parallelism — a single-core CI container reports ~1.0×, by design not
//! a failure).
//!
//! Results are only comparable across equally-parallel hosts, so a run
//! on a *narrower* machine refuses to overwrite an existing
//! `BENCH_engine.json` recorded on a wider one (a laptop run must not
//! clobber the reference numbers from a 16-core box). Set
//! `ICD_BENCH_FORCE=1` to overwrite anyway.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use icd_bench::flow::ExperimentContext;
use icd_engine::{synthesize_batch, BatchConfig, BatchEngine, Collector, EngineConfig};
use icd_faultsim::Datalog;
use icd_netlist::generator;

const DIVISOR: usize = 400;
const PATTERNS: usize = 64;
const DATALOGS: usize = 8;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn build_input() -> (Arc<ExperimentContext>, Vec<Datalog>) {
    let ctx = ExperimentContext::from_preset(&generator::circuit_b(), DIVISOR, PATTERNS)
        .expect("circuit B builds at bench scale");
    let batch =
        synthesize_batch(&ctx, &BatchConfig::new(DATALOGS, 0xbe7c4)).expect("batch synthesizes");
    assert!(!batch.is_empty(), "bench needs failing devices");
    (ctx.into_shared(), batch)
}

struct SweepPoint {
    workers: usize,
    seconds: f64,
    patterns_per_s: f64,
    suspects_per_s: f64,
    /// (stage name, calls, cumulative CPU seconds over all calls, max
    /// single-call seconds), from the run's `flow.*`/`batch.*` latency
    /// histograms. Stage calls run concurrently across workers, so the
    /// cumulative figure is CPU attribution, not wall time — at 8
    /// workers it can exceed the batch's wall seconds several-fold.
    /// An earlier format wrote it as `"seconds"`, which read as wall
    /// time and looked like a regression as workers grew; it is now
    /// `"cpu_seconds"`, with `"max_call_s"` as the scheduling-free
    /// single-call bound.
    stages: Vec<(&'static str, u64, f64, f64)>,
}

fn sweep(ctx: &Arc<ExperimentContext>, batch: &[Datalog]) -> Vec<SweepPoint> {
    WORKER_SWEEP
        .iter()
        .map(|&workers| {
            let engine = BatchEngine::new(EngineConfig::with_workers(workers));
            // Warm-up run, then the timed + observed run.
            let _ = engine.diagnose_batch(ctx, batch).expect("batch runs");
            let collector = Collector::new();
            let t0 = Instant::now();
            let report = engine
                .diagnose_batch_observed(ctx, batch, Some(&collector))
                .expect("batch runs");
            let seconds = t0.elapsed().as_secs_f64().max(1e-9);
            let applied = (batch.len() * ctx.patterns.len()) as f64;
            let stages = collector
                .snapshot()
                .histograms
                .iter()
                .filter(|(name, _)| name.starts_with("flow.") || name.starts_with("batch."))
                .map(|(name, h)| (*name, h.count, h.sum_us as f64 / 1e6, h.max_us as f64 / 1e6))
                .collect();
            SweepPoint {
                workers,
                seconds,
                patterns_per_s: applied / seconds,
                suspects_per_s: report.stats.suspect_jobs as f64 / seconds,
                stages,
            }
        })
        .collect()
}

/// Whether overwriting the results at `path` would replace numbers from
/// a host wider than `cores` of parallelism. Unreadable or malformed
/// existing files never block (there is nothing trustworthy to protect).
fn would_clobber_wider_host(path: &str, cores: usize) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let root = icd_obs::json::parse(&text).ok()?;
    let recorded = root
        .get("host_cores")
        .or_else(|| root.get("cores"))
        .and_then(icd_obs::json::Value::as_u64)?;
    (recorded > cores as u64).then_some(recorded)
}

fn write_json(points: &[SweepPoint]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let base = points.first().map(|p| p.seconds).unwrap_or(1.0);
    let results: Vec<String> = points
        .iter()
        .map(|p| {
            let stages: Vec<String> = p
                .stages
                .iter()
                .map(|(name, calls, cpu_secs, max_call_s)| {
                    format!(
                        "\"{name}\": {{ \"calls\": {calls}, \"cpu_seconds\": {cpu_secs:.6}, \
                         \"max_call_s\": {max_call_s:.6} }}"
                    )
                })
                .collect();
            format!(
                "    {{ \"workers\": {}, \"seconds\": {:.6}, \"patterns_per_s\": {:.1}, \
                 \"suspects_per_s\": {:.2}, \"speedup\": {:.3},\n      \"stages\": {{ {} }} }}",
                p.workers,
                p.seconds,
                p.patterns_per_s,
                p.suspects_per_s,
                base / p.seconds,
                stages.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"circuit\": \"B/{DIVISOR}\",\n  \
         \"patterns\": {PATTERNS},\n  \"datalogs\": {DATALOGS},\n  \"host_cores\": {cores},\n  \
         \"single_core\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cores == 1,
        results.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let force = std::env::var("ICD_BENCH_FORCE").is_ok_and(|v| v == "1");
    if let Some(recorded) = would_clobber_wider_host(path, cores) {
        if !force {
            eprintln!(
                "not overwriting {path}: existing results are from a {recorded}-core host, \
                 this one has {cores} (set ICD_BENCH_FORCE=1 to overwrite)"
            );
            print!("{json}");
            return;
        }
        eprintln!(
            "ICD_BENCH_FORCE=1: overwriting {recorded}-core results in {path} \
             from a {cores}-core host"
        );
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    print!("{json}");
}

fn bench_engine(c: &mut Criterion) {
    let (ctx, batch) = build_input();

    // The machine-readable sweep first: one timed run per worker count.
    let points = sweep(&ctx, &batch);
    write_json(&points);

    // Criterion display: batch latency at each worker count.
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    for workers in WORKER_SWEEP {
        let engine = BatchEngine::new(EngineConfig::with_workers(workers));
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &(&ctx, &batch),
            |b, (ctx, batch)| {
                b.iter(|| engine.diagnose_batch(ctx, batch).expect("batch runs"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine
}
criterion_main!(benches);
