//! A std-only work-stealing thread pool with bounded queues.
//!
//! The build environment has no registry access, so instead of `rayon`
//! this is a small, purpose-built pool on `std::thread` +
//! `std::sync::{Mutex, Condvar}` (results travel back to the coordinator
//! over `std::sync::mpsc` channels owned by the submitted closures):
//!
//! * **per-worker deques + stealing** — submissions are distributed
//!   round-robin over per-worker queues; an idle worker first drains its
//!   own queue front, then steals from the *back* of the longest sibling
//!   queue, so one long-running datalog cannot starve the pool;
//! * **bounded queues with backpressure** — [`WorkerPool::submit`] blocks
//!   once `queue_capacity` jobs are waiting, so a producer enumerating a
//!   huge batch cannot buffer the whole batch in memory;
//! * **panic isolation** — every job runs under
//!   [`std::panic::catch_unwind`]; a poisoned job increments
//!   [`WorkerPool::caught_panics`] and the worker keeps serving. (The
//!   engine additionally catches panics *inside* its jobs so the failure
//!   is attributed to the right datalog; this pool-level net is the
//!   backstop that keeps the pool alive no matter what.)

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A unit of work. Jobs communicate results themselves (typically via an
/// `mpsc::Sender` captured by the closure).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queues: Vec<VecDeque<Job>>,
    /// Jobs currently waiting in any queue (not yet picked up).
    queued: usize,
    /// Round-robin cursor for submissions.
    next: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    work: Condvar,
    /// Signalled when a worker takes a job (queue space freed).
    space: Condvar,
    capacity: usize,
    panics: AtomicUsize,
}

fn lock(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    match shared.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The pool. Dropping it finishes all queued jobs, then joins the
/// workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) with room for
    /// `queue_capacity` waiting jobs before submissions block.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                queued: 0,
                next: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: queue_capacity.max(1),
            panics: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("icd-worker-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("spawning a diagnosis worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueues a job, blocking while the pool already holds
    /// `queue_capacity` waiting jobs (backpressure).
    pub fn submit(&self, job: Job) {
        let mut state = lock(&self.shared);
        while state.queued >= self.shared.capacity && !state.shutdown {
            state = match self.shared.space.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(job);
        state.queued += 1;
        drop(state);
        self.shared.work.notify_one();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs whose panic the pool-level net had to contain.
    pub fn caught_panics(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for h in self.handles.drain(..) {
            // A worker that itself panicked outside the catch (impossible
            // by construction) must not poison the drop.
            let _ = h.join();
        }
    }
}

/// Takes the next job for worker `me`: own queue first (FIFO), then a
/// steal from the back of the longest sibling queue (LIFO from the
/// victim's view — the classic stealing order, which takes the coarsest
/// not-yet-started work).
fn take_job(state: &mut PoolState, me: usize) -> Option<Job> {
    if let Some(job) = state.queues[me].pop_front() {
        state.queued -= 1;
        return Some(job);
    }
    let victim = (0..state.queues.len())
        .filter(|&i| i != me && !state.queues[i].is_empty())
        .max_by_key(|&i| state.queues[i].len())?;
    let job = state.queues[victim].pop_back()?;
    state.queued -= 1;
    Some(job)
}

fn worker_loop(me: usize, shared: &PoolShared) {
    loop {
        let job = {
            let mut state = lock(shared);
            loop {
                if let Some(job) = take_job(&mut state, me) {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = match shared.work.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        shared.space.notify_one();
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..100usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(2, 4);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(|| panic!("poisoned job")));
        for i in 0..10usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 10);
        // The panicking job may still be queued behind the counted ones.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.caught_panics() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.caught_panics(), 1);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        // One worker blocked on a gate; capacity 2. The third submit must
        // block until the gate opens.
        let pool = WorkerPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let pool = Arc::new(pool);
        let gate_holder = Arc::new(gate_rx);
        {
            let holder = Arc::clone(&gate_holder);
            pool.submit(Box::new(move || {
                let _ = lock_rx(&holder).recv();
            }));
        }
        // Fill the queue (worker busy on the gate job).
        pool.submit(Box::new(|| {}));
        pool.submit(Box::new(|| {}));
        let (done_tx, done_rx) = mpsc::channel();
        let p2 = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            p2.submit(Box::new(|| {}));
            done_tx.send(()).unwrap();
        });
        // The submit above must be blocked while the queue is full.
        assert!(done_rx.recv_timeout(Duration::from_millis(200)).is_err());
        gate_tx.send(()).unwrap();
        assert!(done_rx.recv_timeout(Duration::from_secs(5)).is_ok());
        t.join().unwrap();

        fn lock_rx(m: &Mutex<mpsc::Receiver<()>>) -> MutexGuard<'_, mpsc::Receiver<()>> {
            m.lock().unwrap()
        }
    }

    #[test]
    fn single_worker_preserves_submission_order() {
        let pool = WorkerPool::new(1, 64);
        let (tx, rx) = mpsc::channel();
        for i in 0..20usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let seen: Vec<usize> = rx.iter().collect();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }
}
