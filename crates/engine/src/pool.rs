//! A std-only work-stealing thread pool with bounded queues.
//!
//! The build environment has no registry access, so instead of `rayon`
//! this is a small, purpose-built pool on `std::thread` +
//! `std::sync::{Mutex, Condvar}` (results travel back to the coordinator
//! over `std::sync::mpsc` channels owned by the submitted closures):
//!
//! * **per-worker deques + stealing** — submissions are distributed
//!   round-robin over per-worker queues; an idle worker first drains its
//!   own queue front, then steals from the *back* of the longest sibling
//!   queue, so one long-running datalog cannot starve the pool;
//! * **bounded queues with backpressure** — [`WorkerPool::submit`] blocks
//!   once `queue_capacity` jobs are waiting, so a producer enumerating a
//!   huge batch cannot buffer the whole batch in memory;
//! * **panic isolation** — every job runs under
//!   [`std::panic::catch_unwind`]; a poisoned job increments
//!   [`WorkerPool::caught_panics`] and the worker keeps serving. (The
//!   engine additionally catches panics *inside* its jobs so the failure
//!   is attributed to the right datalog; this pool-level net is the
//!   backstop that keeps the pool alive no matter what.)

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of work. Jobs communicate results themselves (typically via an
/// `mpsc::Sender` captured by the closure).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queues: Vec<VecDeque<Job>>,
    /// Jobs currently waiting in any queue (not yet picked up).
    queued: usize,
    /// Jobs a worker is currently executing.
    active: usize,
    /// Round-robin cursor for submissions.
    next: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    work: Condvar,
    /// Signalled when a worker takes a job (queue space freed).
    space: Condvar,
    /// Signalled when the pool becomes idle (no queued or running job).
    idle: Condvar,
    capacity: usize,
    panics: AtomicUsize,
    /// Jobs run to completion (panicked or not).
    executed: AtomicU64,
    /// Jobs taken from a sibling's queue rather than the worker's own.
    steals: AtomicU64,
    /// Most jobs ever waiting at once — how hard backpressure worked.
    queue_high_water: AtomicU64,
    /// Per-worker time spent running jobs (ns).
    busy_ns: Vec<AtomicU64>,
    /// Per-worker time spent waiting for work (ns).
    idle_ns: Vec<AtomicU64>,
}

/// Health counters of one pool, captured by [`WorkerPool::metrics`].
/// Everything except `workers` and `jobs_executed` is
/// scheduling-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Worker thread count.
    pub workers: usize,
    /// Jobs run to completion (including contained panics).
    pub jobs_executed: u64,
    /// Jobs stolen from a sibling queue.
    pub steals: u64,
    /// Most jobs ever waiting at once.
    pub queue_high_water: u64,
    /// Panics the pool-level net contained.
    pub panics_contained: u64,
    /// Per-worker time spent running jobs (µs).
    pub busy_us: Vec<u64>,
    /// Per-worker time spent waiting for work (µs).
    pub idle_us: Vec<u64>,
}

fn lock(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    match shared.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The pool. Dropping it finishes all queued jobs, then joins the
/// workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) with room for
    /// `queue_capacity` waiting jobs before submissions block.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                queued: 0,
                active: 0,
                next: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            idle: Condvar::new(),
            capacity: queue_capacity.max(1),
            panics: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            idle_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("icd-worker-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("spawning a diagnosis worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueues a job, blocking while the pool already holds
    /// `queue_capacity` waiting jobs (backpressure).
    pub fn submit(&self, job: Job) {
        let mut state = lock(&self.shared);
        while state.queued >= self.shared.capacity && !state.shutdown {
            state = match self.shared.space.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        self.enqueue(state, job);
    }

    /// Tries to enqueue a job, waiting at most `wait` for queue space.
    ///
    /// Returns the job back (`Err`) when the queue stayed full for the
    /// whole wait or the pool is shutting down — the caller owns the
    /// retry policy (the diagnosis server retries with capped backoff
    /// and eventually degrades the response instead of blocking a
    /// connection thread forever).
    pub fn try_submit(&self, job: Job, wait: Duration) -> Result<(), Job> {
        let deadline = Instant::now() + wait;
        let mut state = lock(&self.shared);
        loop {
            if state.shutdown {
                return Err(job);
            }
            if state.queued < self.shared.capacity {
                self.enqueue(state, job);
                return Ok(());
            }
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                return Err(job);
            };
            state = match self.shared.space.wait_timeout(state, left) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn enqueue(&self, mut state: MutexGuard<'_, PoolState>, job: Job) {
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(job);
        state.queued += 1;
        self.shared
            .queue_high_water
            .fetch_max(state.queued as u64, Ordering::Relaxed);
        drop(state);
        self.shared.work.notify_one();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs not yet finished: waiting in a queue or running on a worker.
    pub fn pending_jobs(&self) -> usize {
        let state = lock(&self.shared);
        state.queued + state.active
    }

    /// Blocks until no job is queued or running, or `timeout` elapses.
    /// Returns whether the pool is idle — the drain primitive of a
    /// graceful shutdown (stop submitting, then `wait_idle` under the
    /// drain deadline).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared);
        loop {
            if state.queued == 0 && state.active == 0 {
                return true;
            }
            let now = Instant::now();
            let Some(left) = deadline.checked_duration_since(now) else {
                return false;
            };
            state = match self.shared.idle.wait_timeout(state, left) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Shuts the pool down in place: queued jobs still run, new
    /// `try_submit`s are refused, workers are joined. Idempotent — a
    /// second call (or the eventual drop) finds no workers left and
    /// returns immediately.
    pub fn shutdown(&mut self) {
        self.join_workers();
    }

    /// Jobs whose panic the pool-level net had to contain.
    pub fn caught_panics(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// A snapshot of the pool's health counters. Job counts are exact
    /// once the work they belong to has been joined (e.g. after the
    /// engine drained its result channels); busy/idle times are advisory
    /// — a worker currently inside a job has not yet banked that time.
    /// Use [`WorkerPool::into_metrics`] for final, exact counters.
    pub fn metrics(&self) -> PoolMetrics {
        self.snapshot_metrics(self.handles.len())
    }

    /// Shuts the pool down (queued jobs still finish), joins every
    /// worker, and returns the final health counters — exact, since no
    /// worker can still be banking time.
    pub fn into_metrics(mut self) -> PoolMetrics {
        let workers = self.handles.len();
        self.join_workers();
        self.snapshot_metrics(workers)
    }

    fn snapshot_metrics(&self, workers: usize) -> PoolMetrics {
        let to_us = |ns: &AtomicU64| ns.load(Ordering::Relaxed) / 1_000;
        PoolMetrics {
            workers,
            jobs_executed: self.shared.executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            queue_high_water: self.shared.queue_high_water.load(Ordering::Relaxed),
            panics_contained: self.shared.panics.load(Ordering::Relaxed) as u64,
            busy_us: self.shared.busy_ns.iter().map(to_us).collect(),
            idle_us: self.shared.idle_ns.iter().map(to_us).collect(),
        }
    }

    fn join_workers(&mut self) {
        {
            let mut state = lock(&self.shared);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for h in self.handles.drain(..) {
            // A worker that itself panicked outside the catch (impossible
            // by construction) must not poison the drop.
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// Takes the next job for worker `me`: own queue first (FIFO), then a
/// steal from the back of the longest sibling queue (LIFO from the
/// victim's view — the classic stealing order, which takes the coarsest
/// not-yet-started work). The flag reports whether the job was stolen.
fn take_job(state: &mut PoolState, me: usize) -> Option<(Job, bool)> {
    if let Some(job) = state.queues[me].pop_front() {
        state.queued -= 1;
        return Some((job, false));
    }
    let victim = (0..state.queues.len())
        .filter(|&i| i != me && !state.queues[i].is_empty())
        .max_by_key(|&i| state.queues[i].len())?;
    let job = state.queues[victim].pop_back()?;
    state.queued -= 1;
    Some((job, true))
}

fn worker_loop(me: usize, shared: &PoolShared) {
    loop {
        let idle_start = Instant::now();
        let job = {
            let mut state = lock(shared);
            loop {
                if let Some((job, stolen)) = take_job(&mut state, me) {
                    if stolen {
                        shared.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = match shared.work.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        shared.idle_ns[me].fetch_add(idle_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.space.notify_one();
        let busy_start = Instant::now();
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.busy_ns[me].fetch_add(busy_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.executed.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = lock(shared);
            state.active -= 1;
            if state.active == 0 && state.queued == 0 {
                drop(state);
                shared.idle.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..100usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(2, 4);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(|| panic!("poisoned job")));
        for i in 0..10usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 10);
        // The panicking job may still be queued behind the counted ones.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.caught_panics() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.caught_panics(), 1);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        // One worker blocked on a gate; capacity 2. The third submit must
        // block until the gate opens.
        let pool = WorkerPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let pool = Arc::new(pool);
        let gate_holder = Arc::new(gate_rx);
        {
            let holder = Arc::clone(&gate_holder);
            pool.submit(Box::new(move || {
                let _ = lock_rx(&holder).recv();
            }));
        }
        // Fill the queue (worker busy on the gate job).
        pool.submit(Box::new(|| {}));
        pool.submit(Box::new(|| {}));
        let (done_tx, done_rx) = mpsc::channel();
        let p2 = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            p2.submit(Box::new(|| {}));
            done_tx.send(()).unwrap();
        });
        // The submit above must be blocked while the queue is full.
        assert!(done_rx.recv_timeout(Duration::from_millis(200)).is_err());
        gate_tx.send(()).unwrap();
        assert!(done_rx.recv_timeout(Duration::from_secs(5)).is_ok());
        t.join().unwrap();

        fn lock_rx(m: &Mutex<mpsc::Receiver<()>>) -> MutexGuard<'_, mpsc::Receiver<()>> {
            m.lock().unwrap()
        }
    }

    #[test]
    fn metrics_count_executed_jobs_and_queue_high_water() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..25usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 25);
        // Joining makes the counters exact: no worker is still banking
        // the final job's timing after its send.
        let m = pool.into_metrics();
        assert_eq!(m.workers, 2);
        assert_eq!(m.jobs_executed, 25);
        assert_eq!(m.panics_contained, 0);
        assert!(m.queue_high_water >= 1);
        assert!(m.queue_high_water <= 16);
        assert_eq!(m.busy_us.len(), 2);
        assert_eq!(m.idle_us.len(), 2);
    }

    #[test]
    fn dropping_pool_with_queued_jobs_still_runs_them() {
        // One slow worker, many queued jobs; the drop must finish every
        // queued job before joining (queued work is never lost).
        let pool = WorkerPool::new(1, 64);
        let (tx, rx) = mpsc::channel();
        for i in 0..30usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                tx.send(i).unwrap();
            }));
        }
        drop(pool);
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn wait_idle_drains_with_a_panicked_job_in_flight() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(|| {
            std::thread::sleep(Duration::from_millis(5));
            panic!("in-flight poison");
        }));
        for i in 0..8usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        assert!(
            pool.wait_idle(Duration::from_secs(10)),
            "drain must complete despite the panicked job"
        );
        assert_eq!(pool.pending_jobs(), 0);
        assert_eq!(pool.caught_panics(), 1);
        drop(tx);
        assert_eq!(rx.iter().count(), 8);
        // The pool still accepts and runs work after the drain.
        let (tx2, rx2) = mpsc::channel();
        pool.submit(Box::new(move || {
            tx2.send(99usize).unwrap();
        }));
        assert_eq!(rx2.recv_timeout(Duration::from_secs(5)), Ok(99));
    }

    #[test]
    fn double_shutdown_is_idempotent() {
        let mut pool = WorkerPool::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..6usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        pool.shutdown();
        pool.shutdown(); // second explicit shutdown: no-op
        assert_eq!(rx.iter().count(), 6);
        // try_submit after shutdown is refused, not queued forever.
        assert!(pool
            .try_submit(Box::new(|| {}), Duration::from_millis(10))
            .is_err());
        let m = pool.into_metrics(); // third join via into_metrics + drop
        assert_eq!(m.jobs_executed, 6);
    }

    #[test]
    fn try_submit_times_out_on_a_full_queue_and_returns_the_job() {
        let pool = WorkerPool::new(1, 1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        pool.submit(Box::new(move || {
            let _ = match gate_rx.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
            .recv();
        }));
        // Worker busy on the gate; fill the single queue slot.
        pool.submit(Box::new(|| {}));
        let rejected = pool.try_submit(Box::new(|| {}), Duration::from_millis(50));
        assert!(rejected.is_err(), "full queue must bounce the job");
        gate_tx.send(()).unwrap();
        // Space frees up: the bounced job can be resubmitted (the retry
        // path of the server).
        let job = rejected.unwrap_err();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut job = Some(job);
        while let Some(j) = job.take() {
            match pool.try_submit(j, Duration::from_millis(100)) {
                Ok(()) => break,
                Err(j) => {
                    assert!(Instant::now() < deadline, "resubmission never succeeded");
                    job = Some(j);
                }
            }
        }
        assert!(pool.wait_idle(Duration::from_secs(10)));
    }

    #[test]
    fn single_worker_preserves_submission_order() {
        let pool = WorkerPool::new(1, 64);
        let (tx, rx) = mpsc::channel();
        for i in 0..20usize {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(i).unwrap();
            }));
        }
        drop(tx);
        let seen: Vec<usize> = rx.iter().collect();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }
}
