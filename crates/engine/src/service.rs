//! A long-lived streaming diagnosis service over one [`WorkerPool`].
//!
//! [`BatchEngine`](crate::BatchEngine) is batch-shaped: it builds a pool,
//! runs one directory's worth of datalogs, joins the pool. A daemon has
//! the opposite lifecycle — the pool, the good-machine simulation and the
//! analysis cache live for the whole process while requests come and go.
//! [`DiagnosisService`] is that long-lived form:
//!
//! * **shared artifacts once** — the [`ExperimentContext`], the
//!   good-machine simulation and the [`AnalysisCache`] are computed at
//!   construction and `Arc`-shared by every request;
//! * **streaming** — [`DiagnosisService::diagnose_streamed`] emits a
//!   [`StreamEvent`] when the front stage resolves the suspect list and
//!   one per completed per-suspect analysis, so a network server can
//!   push first results before the full report is merged;
//! * **cooperative cancellation** — the request's [`CancelToken`]
//!   (deadline or explicit) is checked at every job boundary; cancelled
//!   work surfaces as [`FlowError::Cancelled`] and never poisons the
//!   pool;
//! * **bounded admission** — job submission uses
//!   [`WorkerPool::try_submit`] with a bounded wait, surfacing
//!   [`ServiceError::Busy`] to the caller instead of blocking a
//!   connection thread behind an unbounded queue. The caller owns the
//!   retry policy.
//!
//! The merged [`FlowReport`] is byte-identical (including `Debug`
//! rendering) to what the sequential staged flow and the batch engine
//! produce for the same datalog — same front stage, same per-suspect
//! pipeline, same slot-ordered merge.

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use icd_bench::flow::{
    analyze_suspect, ExperimentContext, FlowError, FlowReport, FlowStage, GateAnalysis,
};
use icd_core::AnalysisCache;
use icd_faultsim::Datalog;
use icd_netlist::GateId;

use crate::cancel::CancelToken;
use crate::engine::{front_stage, panic_message, FrontOutput, JobError, Pending};
use crate::pool::WorkerPool;

/// Why a streamed request produced no report.
#[derive(Debug)]
pub enum ServiceError {
    /// The worker pool's queue stayed full for the whole bounded wait
    /// (or the pool is shutting down). Transient: the caller may retry
    /// with backoff or degrade the response.
    Busy,
    /// The request ran and failed as a whole (front-stage flow error or
    /// contained panic).
    Job(JobError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Busy => write!(f, "diagnosis queue is full"),
            ServiceError::Job(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Busy => None,
            ServiceError::Job(e) => Some(e),
        }
    }
}

/// Incremental progress of one streamed request.
#[derive(Debug)]
pub enum StreamEvent<'a> {
    /// The front stage finished: these suspects fan out for analysis,
    /// in inter-cell rank order (slot order of the final report).
    Suspects(&'a [GateId]),
    /// One suspect's analysis completed (events arrive in completion
    /// order; the final report is still merged in slot order).
    SuspectDone {
        /// The suspect's slot in the final report.
        slot: usize,
        /// The analyzed gate.
        gate: GateId,
        /// Whether the analysis succeeded (a failure becomes a
        /// [`SkippedGate`](icd_bench::flow::SkippedGate) in the report).
        ok: bool,
    },
}

/// One message of a streamed request's internal result channel.
enum StreamMessage {
    Front(Box<Result<FrontOutput, JobError>>),
    Suspect {
        slot: usize,
        result: Box<Result<GateAnalysis, (FlowStage, FlowError)>>,
    },
}

/// The long-lived diagnosis executor of the server: one pool, one good
/// simulation, one cache, many concurrent streamed requests.
pub struct DiagnosisService {
    ctx: Arc<ExperimentContext>,
    good: Arc<icd_faultsim::BitValues>,
    cache: Arc<AnalysisCache>,
    pool: Arc<WorkerPool>,
    submit_wait: Duration,
    /// Fault-injection seam: runs at the start of every front/suspect
    /// job, *inside* the panic net. A hook that panics emulates a
    /// worker dying mid-job — the chaos harness's handle on the pool.
    job_hook: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl fmt::Debug for DiagnosisService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiagnosisService")
            .field("workers", &self.pool.workers())
            .field("submit_wait", &self.submit_wait)
            .finish_non_exhaustive()
    }
}

impl DiagnosisService {
    /// Builds the service: runs the shared good-machine simulation once
    /// and spawns the worker pool (`workers` threads, `queue_capacity`
    /// waiting jobs, `submit_wait` bounded wait per submission).
    ///
    /// # Errors
    ///
    /// Returns an error when the good-machine simulation fails — nothing
    /// can be served without it.
    pub fn new(
        ctx: Arc<ExperimentContext>,
        workers: usize,
        queue_capacity: usize,
        submit_wait: Duration,
    ) -> Result<Self, FlowError> {
        let good = Arc::new(icd_faultsim::good_simulate(&ctx.circuit, &ctx.patterns)?);
        let pool = Arc::new(WorkerPool::new(workers, queue_capacity));
        Ok(DiagnosisService {
            ctx,
            good,
            cache: Arc::new(AnalysisCache::new()),
            pool,
            submit_wait,
            job_hook: None,
        })
    }

    /// Installs a hook that runs at the start of every front/suspect job,
    /// inside the worker's panic containment. This is the fault-injection
    /// seam of the chaos harness: a hook that panics at a seeded rate
    /// exercises exactly the contain-retry-degrade path a real worker
    /// bug would. Production servers leave it unset.
    #[must_use]
    pub fn with_job_hook(mut self, hook: Arc<dyn Fn() + Send + Sync>) -> Self {
        self.job_hook = Some(hook);
        self
    }

    /// The shared experiment context requests are diagnosed against.
    pub fn context(&self) -> &Arc<ExperimentContext> {
        &self.ctx
    }

    /// The underlying pool (for drain/health introspection).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Jobs queued or running right now.
    pub fn pending_jobs(&self) -> usize {
        self.pool.pending_jobs()
    }

    /// Waits until no job is queued or running (the drain step of a
    /// graceful shutdown). Returns whether the pool went idle in time.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.pool.wait_idle(timeout)
    }

    /// Diagnoses one datalog, streaming progress through `on_event`.
    ///
    /// Runs on the calling thread as the request's coordinator: the
    /// front job and every per-suspect job execute on the pool, results
    /// stream back over an internal channel, and the merged report is
    /// identical to the batch engine's for the same datalog. The token
    /// is checked at every job boundary; a request cancelled mid-fanout
    /// gets its already-finished analyses plus `Cancelled` skips for the
    /// rest — a *degraded partial* report, not an error.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Busy`] when the front job cannot be admitted
    /// within the bounded wait (transient — retry or degrade);
    /// [`ServiceError::Job`] when the request fails as a whole
    /// (front-stage flow error, contained panic, or cancellation before
    /// the front stage ran).
    pub fn diagnose_streamed(
        &self,
        datalog: &Datalog,
        token: &CancelToken,
        on_event: &mut dyn FnMut(StreamEvent<'_>),
    ) -> Result<FlowReport, ServiceError> {
        self.diagnose_streamed_traced(datalog, token, None, on_event)
    }

    /// [`diagnose_streamed`](Self::diagnose_streamed) with an optional
    /// per-request trace: every front/suspect job *enters* the trace on
    /// its worker thread, so the request's `service.front` /
    /// `service.suspect` spans — and the `flow.*` stage spans nested
    /// inside them — land in the trace's span forest even though they
    /// execute on pool threads the caller never sees.
    pub fn diagnose_streamed_traced(
        &self,
        datalog: &Datalog,
        token: &CancelToken,
        trace: Option<&icd_obs::TraceContext>,
        on_event: &mut dyn FnMut(StreamEvent<'_>),
    ) -> Result<FlowReport, ServiceError> {
        if token.is_cancelled() {
            return Err(ServiceError::Job(JobError::Flow(FlowError::Cancelled)));
        }
        let (tx, rx) = mpsc::channel::<StreamMessage>();

        // Front job.
        {
            let ctx = Arc::clone(&self.ctx);
            let good = Arc::clone(&self.good);
            let datalog = datalog.clone();
            let token = token.clone();
            let job_tx = tx.clone();
            let hook = self.job_hook.clone();
            let trace = trace.cloned();
            let job = Box::new(move || {
                let _trace = trace.as_ref().map(icd_obs::TraceContext::enter);
                let _span = icd_obs::stage("service.front");
                let output = if token.is_cancelled() {
                    Err(JobError::Flow(FlowError::Cancelled))
                } else {
                    match catch_unwind(AssertUnwindSafe(|| {
                        if let Some(hook) = &hook {
                            hook();
                        }
                        front_stage(&ctx, &good, &datalog)
                    })) {
                        Ok(r) => r,
                        Err(p) => Err(JobError::Panicked(panic_message(p))),
                    }
                };
                let _ = job_tx.send(StreamMessage::Front(Box::new(output)));
            });
            if self.pool.try_submit(job, self.submit_wait).is_err() {
                return Err(ServiceError::Busy);
            }
        }

        let front = loop {
            match rx.recv() {
                Ok(StreamMessage::Front(output)) => break *output,
                Ok(StreamMessage::Suspect { .. }) => continue, // unreachable: none submitted yet
                Err(_) => {
                    // Unreachable (we hold the master sender); degrade.
                    return Err(ServiceError::Job(JobError::Panicked(
                        "front job result missing".to_owned(),
                    )));
                }
            }
        };
        let (sanitize, failing_patterns, unexplained, shared, suspects) = match front {
            Ok(FrontOutput::Done(report)) => return Ok(*report),
            Ok(FrontOutput::Work {
                sanitize,
                failing_patterns,
                unexplained,
                shared,
                suspects,
            }) => (sanitize, failing_patterns, unexplained, shared, suspects),
            Err(e) => return Err(ServiceError::Job(e)),
        };
        on_event(StreamEvent::Suspects(&suspects));

        let mut pending = Pending {
            sanitize,
            failing_patterns,
            unexplained,
            suspects: suspects.clone(),
            slots: (0..suspects.len()).map(|_| None).collect(),
            filled: 0,
        };

        // Fan the suspect jobs out, largest cones first (same schedule as
        // the batch engine). Admission is bounded: when the pool refuses
        // a job within the wait — saturation or shutdown — or the token
        // cancels, the remaining slots become Cancelled skips and the
        // report degrades instead of blocking the connection thread.
        let mut order: Vec<usize> = (0..suspects.len()).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(self.ctx.circuit.cone_size(suspects[s])));
        for slot in order {
            let gate = suspects[slot];
            if token.is_cancelled() {
                pending.slots[slot] = Some(Err((FlowStage::Worker, FlowError::Cancelled)));
                pending.filled += 1;
                continue;
            }
            let ctx = Arc::clone(&self.ctx);
            let good = Arc::clone(&self.good);
            let cache = Arc::clone(&self.cache);
            let shared = Arc::clone(&shared);
            let token_job = token.clone();
            let job_tx = tx.clone();
            let hook = self.job_hook.clone();
            let trace_job = trace.cloned();
            let job = Box::new(move || {
                let _trace = trace_job.as_ref().map(icd_obs::TraceContext::enter);
                let _span = icd_obs::stage("service.suspect");
                let result = if token_job.is_cancelled() {
                    Err((FlowStage::Worker, FlowError::Cancelled))
                } else {
                    catch_unwind(AssertUnwindSafe(|| {
                        if let Some(hook) = &hook {
                            hook();
                        }
                        analyze_suspect(
                            &ctx,
                            &shared.datalog,
                            &shared.inter,
                            &good,
                            gate,
                            Some(&cache),
                        )
                    }))
                    .unwrap_or_else(|p| {
                        Err((FlowStage::Worker, FlowError::Panicked(panic_message(p))))
                    })
                };
                let _ = job_tx.send(StreamMessage::Suspect {
                    slot,
                    result: Box::new(result),
                });
            });
            if self.pool.try_submit(job, self.submit_wait).is_err() {
                pending.slots[slot] = Some(Err((FlowStage::Worker, FlowError::Cancelled)));
                pending.filled += 1;
            }
        }
        drop(tx);

        while pending.filled < pending.slots.len() {
            let Ok(msg) = rx.recv() else {
                // Every sender dropped with slots unfilled — a submitted
                // job was lost (pool shut down mid-request). Degrade the
                // missing slots to Cancelled instead of hanging.
                for slot in pending.slots.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err((FlowStage::Worker, FlowError::Cancelled)));
                    pending.filled += 1;
                }
                break;
            };
            let StreamMessage::Suspect { slot, result } = msg else {
                continue;
            };
            if pending.slots[slot].is_none() {
                pending.filled += 1;
                on_event(StreamEvent::SuspectDone {
                    slot,
                    gate: pending.suspects[slot],
                    ok: result.is_ok(),
                });
                pending.slots[slot] = Some(*result);
            }
        }
        Ok(pending.merge())
    }
}

/// Renders one [`FlowReport`] as the canonical single-line summary shown
/// by `icdiag run` and streamed back by the diagnosis server. Keeping the
/// rendering in one place is what makes "server response ≡ `icdiag run`
/// output" a byte-level contract the chaos soak test can assert.
pub fn summarize_report(ctx: &ExperimentContext, report: &FlowReport) -> String {
    if report.is_escape() {
        return "PASS (test escape)".to_owned();
    }
    let top = report
        .best()
        .map(|a| {
            format!(
                "g{}:{} ({} candidates)",
                a.gate.index(),
                ctx.circuit.gate_type(a.gate).name(),
                a.ranked.candidates.len()
            )
        })
        .unwrap_or_else(|| "none".to_owned());
    format!(
        "{} failing patterns, {} analyzed, {} skipped, {} unexplained, top suspect {top}{}",
        report.failing_patterns,
        report.analyses.len(),
        report.skipped.len(),
        report.unexplained.len(),
        if report.is_degraded() {
            " [degraded]"
        } else {
            ""
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize_batch, BatchConfig, BatchEngine, EngineConfig};
    use icd_netlist::generator;

    fn service_fixture() -> (DiagnosisService, Vec<Datalog>) {
        let ctx = ExperimentContext::from_preset(&generator::circuit_a(), 4, 16)
            .expect("scaled circuit A builds")
            .into_shared();
        let batch = synthesize_batch(&ctx, &BatchConfig::new(4, 0x5eed)).expect("batch");
        assert!(!batch.is_empty());
        let service =
            DiagnosisService::new(ctx, 2, 16, Duration::from_secs(5)).expect("service builds");
        (service, batch)
    }

    #[test]
    fn streamed_report_matches_the_batch_engine_byte_for_byte() {
        let (service, batch) = service_fixture();
        let engine = BatchEngine::new(EngineConfig::with_workers(1));
        let reference = engine
            .diagnose_batch(service.context(), &batch)
            .expect("batch runs");
        for (i, datalog) in batch.iter().enumerate() {
            let mut suspects_seen = 0usize;
            let mut done_seen = 0usize;
            let streamed = service
                .diagnose_streamed(datalog, &CancelToken::new(), &mut |ev| match ev {
                    StreamEvent::Suspects(s) => suspects_seen = s.len(),
                    StreamEvent::SuspectDone { .. } => done_seen += 1,
                })
                .expect("streamed run succeeds");
            let reference_report = reference.outcomes[i].report.as_ref().expect("reference ok");
            assert_eq!(
                format!("{streamed:?}"),
                format!("{reference_report:?}"),
                "datalog {i} diverged"
            );
            assert_eq!(done_seen, suspects_seen, "one completion event per suspect");
            assert_eq!(
                summarize_report(service.context(), &streamed),
                summarize_report(service.context(), reference_report)
            );
        }
    }

    #[test]
    fn cancelled_token_rejects_before_any_work() {
        let (service, batch) = service_fixture();
        let token = CancelToken::new();
        token.cancel();
        let err = service
            .diagnose_streamed(&batch[0], &token, &mut |_| {})
            .expect_err("cancelled request must not run");
        assert!(matches!(
            err,
            ServiceError::Job(JobError::Flow(FlowError::Cancelled))
        ));
    }

    #[test]
    fn expired_deadline_degrades_suspects_to_cancelled_skips() {
        let (service, batch) = service_fixture();
        // A deadline that expires somewhere between the front stage and
        // the fanout: cancel the token from the Suspects callback, which
        // fires exactly at that boundary.
        let token = CancelToken::new();
        let token_in_cb = token.clone();
        let report = service
            .diagnose_streamed(&batch[0], &token, &mut |ev| {
                if matches!(ev, StreamEvent::Suspects(_)) {
                    token_in_cb.cancel();
                }
            })
            .expect("boundary cancellation degrades, not errors");
        assert!(
            report
                .skipped
                .iter()
                .all(|s| matches!(s.error, FlowError::Cancelled)),
            "skips carry Cancelled: {:?}",
            report.skipped
        );
        assert!(
            !report.skipped.is_empty(),
            "at least one suspect was cancelled at the boundary"
        );
        assert!(report.is_degraded());
        // The pool survives: a fresh request still works.
        let fresh = service
            .diagnose_streamed(&batch[0], &CancelToken::new(), &mut |_| {})
            .expect("pool not poisoned");
        assert!(fresh
            .skipped
            .iter()
            .all(|s| !matches!(s.error, FlowError::Cancelled)));
    }
}
