//! The batch-diagnosis job graph: one front-end job per datalog, one
//! analysis job per (datalog × suspected gate), deterministic merging.

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use icd_bench::flow::{
    analyze_suspect, select_suspects, ExperimentContext, FlowError, FlowReport, FlowStage,
    GateAnalysis, SkippedGate,
};
use icd_core::{AnalysisCache, CacheStats};
use icd_faultsim::Datalog;
use icd_intercell::IntercellDiagnosis;
use icd_netlist::GateId;

use crate::cancel::CancelToken;
use crate::pool::WorkerPool;

/// Engine sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Jobs that may wait in the pool before submissions block
    /// (backpressure bound).
    pub queue_capacity: usize,
}

impl EngineConfig {
    /// A configuration with `workers` threads and a proportional queue
    /// bound.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        EngineConfig {
            workers,
            queue_capacity: (workers * 4).max(16),
        }
    }

    /// Reads `ICD_WORKERS` (the CI/test override), falling back to the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        let workers = std::env::var("ICD_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        EngineConfig::with_workers(workers)
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::from_env()
    }
}

/// Why a whole datalog produced no [`FlowReport`].
#[derive(Debug)]
pub enum JobError {
    /// A whole-datalog stage failed structurally (e.g. inter-cell
    /// diagnosis rejected the datalog).
    Flow(FlowError),
    /// The front-end job panicked; the payload is the panic message.
    Panicked(String),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Flow(e) => write!(f, "datalog stage failed: {e}"),
            JobError::Panicked(msg) => write!(f, "datalog job panicked: {msg}"),
        }
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JobError::Flow(e) => Some(e),
            JobError::Panicked(_) => None,
        }
    }
}

/// One datalog's merged result, at its input position.
pub struct BatchOutcome {
    /// Index of the datalog in the submitted batch.
    pub index: usize,
    /// The merged staged-flow report, or the whole-datalog failure.
    pub report: Result<FlowReport, JobError>,
    /// Cumulative worker time spent in this datalog's front and suspect
    /// jobs (µs). Jobs run concurrently, so this is CPU-style busy time,
    /// not wall latency — and it is scheduling-dependent, so it must
    /// never leak into a serialized report (volume reports stay
    /// byte-identical at any worker count).
    pub busy_us: u64,
}

/// `busy_us` is deliberately absent: the `Debug` rendering IS the
/// determinism contract (tests compare it byte-for-byte across worker
/// counts), and busy time is scheduling noise.
impl fmt::Debug for BatchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchOutcome")
            .field("index", &self.index)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// Engine-level counters of one batch run.
#[derive(Debug, Clone, Copy)]
pub struct BatchStats {
    /// Datalogs in the batch.
    pub datalogs: usize,
    /// Per-suspect jobs executed.
    pub suspect_jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the batch (including the shared good-machine
    /// simulation).
    pub elapsed: Duration,
    /// Truth-table cache counters (shared across all jobs).
    pub table_cache: CacheStats,
    /// Critical-path-trace cache counters.
    pub cpt_cache: CacheStats,
}

/// The merged result of a batch run: one outcome per input datalog, in
/// input order regardless of scheduling.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-datalog outcomes, ordered by input index.
    pub outcomes: Vec<BatchOutcome>,
    /// Run counters.
    pub stats: BatchStats,
}

impl BatchReport {
    /// The successfully merged reports, in input order.
    pub fn reports(&self) -> impl Iterator<Item = (usize, &FlowReport)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.report.as_ref().ok().map(|r| (o.index, r)))
    }

    /// Datalogs that failed as a whole, in input order.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &JobError)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.report.as_ref().err().map(|e| (o.index, e)))
    }
}

/// Immutable per-datalog artifacts shared by that datalog's suspect jobs.
pub(crate) struct FrontShared {
    pub(crate) datalog: Datalog,
    pub(crate) inter: IntercellDiagnosis,
}

/// What the front-end stage of one datalog produced.
pub(crate) enum FrontOutput {
    /// The report is already complete (test escape, or failing patterns
    /// without any analyzable suspect).
    Done(Box<FlowReport>),
    /// Suspects to fan out.
    Work {
        sanitize: icd_faultsim::SanitizeLog,
        failing_patterns: usize,
        unexplained: Vec<usize>,
        shared: Arc<FrontShared>,
        suspects: Vec<GateId>,
    },
}

enum Message {
    Front {
        index: usize,
        output: Result<FrontOutput, JobError>,
        busy_us: u64,
    },
    Suspect {
        index: usize,
        slot: usize,
        result: Box<Result<GateAnalysis, (FlowStage, FlowError)>>,
        busy_us: u64,
    },
}

/// In-flight merge state of one datalog.
pub(crate) struct Pending {
    pub(crate) sanitize: icd_faultsim::SanitizeLog,
    pub(crate) failing_patterns: usize,
    pub(crate) unexplained: Vec<usize>,
    pub(crate) suspects: Vec<GateId>,
    pub(crate) slots: Vec<Option<Result<GateAnalysis, (FlowStage, FlowError)>>>,
    pub(crate) filled: usize,
}

impl Pending {
    /// Merges the filled slots in suspect order — the exact order the
    /// sequential staged flow records analyses and skips, so the merged
    /// report is byte-identical to the single-threaded one.
    pub(crate) fn merge(self) -> FlowReport {
        let mut analyses = Vec::new();
        let mut skipped = Vec::new();
        for (gate, slot) in self.suspects.into_iter().zip(self.slots) {
            match slot {
                Some(Ok(analysis)) => analyses.push(analysis),
                Some(Err((stage, error))) => skipped.push(SkippedGate { gate, stage, error }),
                // Unreachable by construction (merge runs only when every
                // slot is filled); degrade rather than panic.
                None => skipped.push(SkippedGate {
                    gate,
                    stage: FlowStage::Worker,
                    error: FlowError::Panicked("suspect job result missing".to_owned()),
                }),
            }
        }
        FlowReport {
            failing_patterns: self.failing_patterns,
            sanitize: self.sanitize,
            analyses,
            skipped,
            unexplained: self.unexplained,
        }
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// The front half of the staged flow for one datalog: sanitation, escape
/// check, inter-cell diagnosis, suspect selection. Runs on a worker.
pub(crate) fn front_stage(
    ctx: &ExperimentContext,
    good: &icd_faultsim::BitValues,
    datalog: &Datalog,
) -> Result<FrontOutput, JobError> {
    let (datalog, sanitize) = {
        let _s = icd_obs::stage("flow.sanitize");
        datalog.sanitize(ctx.circuit.outputs().len())
    };
    let escaped = {
        let _s = icd_obs::stage("flow.escape_check");
        datalog.all_pass()
    };
    if escaped {
        return Ok(FrontOutput::Done(Box::new(FlowReport {
            failing_patterns: 0,
            sanitize,
            analyses: Vec::new(),
            skipped: Vec::new(),
            unexplained: Vec::new(),
        })));
    }
    let inter = {
        let _s = icd_obs::stage("flow.intercell");
        icd_intercell::diagnose_with_good(&ctx.circuit, &ctx.patterns, &datalog, good)
            .map_err(|e| JobError::Flow(FlowError::Intercell(e)))?
    };
    let suspects = select_suspects(&inter);
    if suspects.is_empty() {
        return Ok(FrontOutput::Done(Box::new(FlowReport {
            failing_patterns: datalog.entries.len(),
            sanitize,
            analyses: Vec::new(),
            skipped: Vec::new(),
            unexplained: inter.unexplained,
        })));
    }
    Ok(FrontOutput::Work {
        sanitize,
        failing_patterns: datalog.entries.len(),
        unexplained: inter.unexplained.clone(),
        shared: Arc::new(FrontShared { datalog, inter }),
        suspects,
    })
}

/// The parallel batch-diagnosis engine.
///
/// Wraps the staged flow of `icd-bench` in a job graph executed on a
/// [`WorkerPool`]: per datalog a front-end job (sanitize → escape check →
/// inter-cell diagnosis → suspect selection), then per suspected gate an
/// independent analysis job sharing the `Arc`-held context, good-machine
/// simulation and [`AnalysisCache`]. Results merge deterministically —
/// the produced [`FlowReport`]s are identical (including their `Debug`
/// rendering) for any worker count, because job outputs are placed by
/// (datalog index, suspect slot), never by completion order.
#[derive(Debug)]
pub struct BatchEngine {
    config: EngineConfig,
}

impl BatchEngine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        BatchEngine { config }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Diagnoses a batch of datalogs against one shared context.
    ///
    /// # Errors
    ///
    /// Returns an error only when the batch-wide good-machine simulation
    /// fails (nothing can be diagnosed without it); every per-datalog and
    /// per-suspect failure is contained in the returned outcomes.
    pub fn diagnose_batch(
        &self,
        ctx: &Arc<ExperimentContext>,
        datalogs: &[Datalog],
    ) -> Result<BatchReport, FlowError> {
        self.diagnose_batch_observed(ctx, datalogs, None)
    }

    /// [`diagnose_batch`](BatchEngine::diagnose_batch) with observability
    /// attached: when `collector` is given it is installed for the whole
    /// run, every job executes under a span carrying its merge identity
    /// (`batch.front` with a `datalog` attribute, `batch.suspect` with
    /// `datalog` and `slot`), and the run's cache, set-cover and pool
    /// health counters are recorded into it before the pool is joined.
    ///
    /// # Errors
    ///
    /// As [`diagnose_batch`](BatchEngine::diagnose_batch).
    pub fn diagnose_batch_observed(
        &self,
        ctx: &Arc<ExperimentContext>,
        datalogs: &[Datalog],
        collector: Option<&icd_obs::Collector>,
    ) -> Result<BatchReport, FlowError> {
        self.diagnose_batch_cancellable(ctx, datalogs, collector, &CancelToken::new())
    }

    /// [`diagnose_batch_observed`](BatchEngine::diagnose_batch_observed)
    /// under a cooperative [`CancelToken`]: the token is checked at every
    /// job boundary (before each datalog's front stage and before each
    /// per-suspect analysis). Once it reports cancelled — explicitly or
    /// through its deadline — not-yet-started front jobs resolve to
    /// [`JobError::Flow`]`(`[`FlowError::Cancelled`]`)`, not-yet-started
    /// suspect jobs become [`SkippedGate`]s carrying
    /// [`FlowError::Cancelled`], and already-running work finishes
    /// normally. A cancelled job never poisons the pool: the merge loop
    /// still drains every outstanding result, so the returned report
    /// accounts for every datalog.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Cancelled`] when the token is already
    /// cancelled before the batch-wide good-machine simulation starts;
    /// otherwise as [`diagnose_batch`](BatchEngine::diagnose_batch).
    pub fn diagnose_batch_cancellable(
        &self,
        ctx: &Arc<ExperimentContext>,
        datalogs: &[Datalog],
        collector: Option<&icd_obs::Collector>,
        token: &CancelToken,
    ) -> Result<BatchReport, FlowError> {
        self.diagnose_batch_with_cache(
            ctx,
            datalogs,
            collector,
            token,
            &Arc::new(AnalysisCache::new()),
        )
    }

    /// [`diagnose_batch_cancellable`](BatchEngine::diagnose_batch_cancellable)
    /// with a caller-owned [`AnalysisCache`] instead of a batch-private
    /// one. The cache is strictly transparent (identical reports warm or
    /// cold), so a volume run can carry one cache — possibly preloaded
    /// from an on-disk snapshot — across many batches of the same design
    /// and skip the per-cell-type truth-table derivations entirely.
    ///
    /// The reported [`BatchStats`] and observed `cache.*` counters cover
    /// the cache's whole lifetime, not just this batch.
    ///
    /// # Errors
    ///
    /// As [`diagnose_batch_cancellable`](BatchEngine::diagnose_batch_cancellable).
    pub fn diagnose_batch_with_cache(
        &self,
        ctx: &Arc<ExperimentContext>,
        datalogs: &[Datalog],
        collector: Option<&icd_obs::Collector>,
        token: &CancelToken,
        cache: &Arc<AnalysisCache>,
    ) -> Result<BatchReport, FlowError> {
        let _recording = collector.map(icd_obs::Collector::install);
        if token.is_cancelled() {
            return Err(FlowError::Cancelled);
        }
        let t0 = Instant::now();
        let good = {
            let _s = icd_obs::stage("batch.good_simulate");
            Arc::new(icd_faultsim::good_simulate(&ctx.circuit, &ctx.patterns)?)
        };
        let cache = Arc::clone(cache);
        let pool = WorkerPool::new(self.config.workers, self.config.queue_capacity);
        // Results flow back over one mpsc channel; the coordinator keeps
        // the master sender so `recv` can never observe an early close
        // while jobs are outstanding.
        let (tx, rx) = mpsc::channel::<Message>();

        for (index, datalog) in datalogs.iter().enumerate() {
            let ctx = Arc::clone(ctx);
            let good = Arc::clone(&good);
            let job_tx = tx.clone();
            let datalog = datalog.clone();
            let token = token.clone();
            pool.submit(Box::new(move || {
                let job_t0 = Instant::now();
                let _span = icd_obs::span_with("batch.front", &[("datalog", index as u64)]);
                let output = if token.is_cancelled() {
                    Err(JobError::Flow(FlowError::Cancelled))
                } else {
                    match catch_unwind(AssertUnwindSafe(|| front_stage(&ctx, &good, &datalog))) {
                        Ok(r) => r,
                        Err(p) => Err(JobError::Panicked(panic_message(p))),
                    }
                };
                let _ = job_tx.send(Message::Front {
                    index,
                    output,
                    busy_us: job_t0.elapsed().as_micros() as u64,
                });
            }));
        }

        let mut outcomes: Vec<Option<Result<FlowReport, JobError>>> =
            (0..datalogs.len()).map(|_| None).collect();
        let mut pending: Vec<Option<Pending>> = (0..datalogs.len()).map(|_| None).collect();
        let mut remaining = datalogs.len();
        let mut suspect_jobs = 0usize;
        let mut device_busy_us: Vec<u64> = vec![0; datalogs.len()];

        while remaining > 0 {
            let Ok(msg) = rx.recv() else {
                // Unreachable (the master sender lives in this scope);
                // degrade instead of hanging if it ever happens.
                break;
            };
            match msg {
                Message::Front {
                    index,
                    output,
                    busy_us,
                } => {
                    device_busy_us[index] += busy_us;
                    match output {
                        Ok(FrontOutput::Done(report)) => {
                            outcomes[index] = Some(Ok(*report));
                            remaining -= 1;
                        }
                        Ok(FrontOutput::Work {
                            sanitize,
                            failing_patterns,
                            unexplained,
                            shared,
                            suspects,
                        }) => {
                            pending[index] = Some(Pending {
                                sanitize,
                                failing_patterns,
                                unexplained,
                                suspects: suspects.clone(),
                                slots: (0..suspects.len()).map(|_| None).collect(),
                                filled: 0,
                            });
                            // Largest fanout cones first: the most expensive
                            // per-suspect resimulations start earliest, so no
                            // big cone straggles at the tail of the pool.
                            // Results merge by original slot, so the report is
                            // independent of submission order (the sort is
                            // stable, keeping the schedule deterministic too).
                            let mut order: Vec<usize> = (0..suspects.len()).collect();
                            order.sort_by_key(|&s| {
                                std::cmp::Reverse(ctx.circuit.cone_size(suspects[s]))
                            });
                            for slot in order {
                                let gate = suspects[slot];
                                suspect_jobs += 1;
                                let ctx = Arc::clone(ctx);
                                let good = Arc::clone(&good);
                                let cache = Arc::clone(&cache);
                                let shared = Arc::clone(&shared);
                                let job_tx = tx.clone();
                                let token = token.clone();
                                pool.submit(Box::new(move || {
                                    let job_t0 = Instant::now();
                                    let _span = icd_obs::span_with(
                                        "batch.suspect",
                                        &[("datalog", index as u64), ("slot", slot as u64)],
                                    );
                                    let result =
                                        if token.is_cancelled() {
                                            Err((FlowStage::Worker, FlowError::Cancelled))
                                        } else {
                                            catch_unwind(AssertUnwindSafe(|| {
                                                analyze_suspect(
                                                    &ctx,
                                                    &shared.datalog,
                                                    &shared.inter,
                                                    &good,
                                                    gate,
                                                    Some(&cache),
                                                )
                                            }))
                                            .unwrap_or_else(|p| {
                                                Err((
                                                    FlowStage::Worker,
                                                    FlowError::Panicked(panic_message(p)),
                                                ))
                                            })
                                        };
                                    let _ = job_tx.send(Message::Suspect {
                                        index,
                                        slot,
                                        result: Box::new(result),
                                        busy_us: job_t0.elapsed().as_micros() as u64,
                                    });
                                }));
                            }
                        }
                        Err(e) => {
                            outcomes[index] = Some(Err(e));
                            remaining -= 1;
                        }
                    }
                }
                Message::Suspect {
                    index,
                    slot,
                    result,
                    busy_us,
                } => {
                    device_busy_us[index] += busy_us;
                    let done = if let Some(p) = pending[index].as_mut() {
                        if p.slots[slot].is_none() {
                            p.filled += 1;
                        }
                        p.slots[slot] = Some(*result);
                        p.filled == p.slots.len()
                    } else {
                        false
                    };
                    if done {
                        if let Some(p) = pending[index].take() {
                            outcomes[index] = Some(Ok(p.merge()));
                            remaining -= 1;
                        }
                    }
                }
            }
        }
        drop(tx);

        // Join the workers first so the pool counters are final, then
        // export this run's metrics into the installed collector.
        let workers = pool.workers();
        let pool_metrics = pool.into_metrics();
        if icd_obs::enabled() {
            use icd_obs::Stability::{Stable, Timing};
            icd_obs::counter("batch.datalogs", datalogs.len() as u64, Stable);
            icd_obs::counter("batch.suspect_jobs", suspect_jobs as u64, Stable);
            cache.observe();
            icd_obs::counter("pool.jobs_executed", pool_metrics.jobs_executed, Stable);
            icd_obs::counter(
                "pool.panics_contained",
                pool_metrics.panics_contained,
                Stable,
            );
            icd_obs::counter("pool.steals", pool_metrics.steals, Timing);
            icd_obs::counter(
                "pool.busy_us",
                pool_metrics.busy_us.iter().sum::<u64>(),
                Timing,
            );
            icd_obs::counter(
                "pool.idle_us",
                pool_metrics.idle_us.iter().sum::<u64>(),
                Timing,
            );
            icd_obs::gauge_set(
                "pool.queue_high_water",
                pool_metrics.queue_high_water,
                Timing,
            );
            icd_obs::gauge_set("pool.workers", workers as u64, Timing);
        }

        let merged = outcomes
            .into_iter()
            .enumerate()
            .map(|(index, outcome)| BatchOutcome {
                index,
                report: outcome.unwrap_or_else(|| {
                    Err(JobError::Panicked("datalog result missing".to_owned()))
                }),
                busy_us: device_busy_us[index],
            })
            .collect();
        Ok(BatchReport {
            outcomes: merged,
            stats: BatchStats {
                datalogs: datalogs.len(),
                suspect_jobs,
                workers,
                elapsed: t0.elapsed(),
                table_cache: cache.table_stats(),
                cpt_cache: cache.cpt_stats(),
            },
        })
    }
}
