//! Parallel batch-diagnosis engine over the staged diagnosis flow.
//!
//! The paper's volume-diagnosis setting is inherently batch-shaped: one
//! design, one test set, thousands of failing-device datalogs. This crate
//! turns `icd_bench::flow`'s staged per-datalog flow into a job graph and
//! executes it on a std-only work-stealing thread pool (the build
//! environment has no registry access, so no `rayon`):
//!
//! * **job graph** — per datalog a *front* job (sanitize → test-escape
//!   check → inter-cell diagnosis → suspect selection), then per
//!   (datalog × suspected gate) an independent *analysis* job;
//! * **shared immutable artifacts** — the [`ExperimentContext`] (circuit,
//!   transistor-level cell library, pattern set) and the batch-wide
//!   good-machine simulation are computed once and `Arc`-shared by every
//!   job;
//! * **shared-artifact caching** — an [`icd_core::AnalysisCache`] shares
//!   per-cell-type truth tables and critical-path traces across jobs; the
//!   cache is transparent (identical results with and without);
//! * **panic isolation** — every job runs under `catch_unwind`; a
//!   poisoned suspect becomes a structured [`SkippedGate`] in its
//!   datalog's report, a poisoned front job becomes a
//!   [`JobError::Panicked`] outcome, and the rest of the batch is
//!   untouched;
//! * **deterministic merging** — results are placed by (datalog index,
//!   suspect slot), so the merged [`BatchReport`] is byte-identical for
//!   any worker count and any scheduling order;
//! * **cooperative cancellation** — a [`CancelToken`] (explicit or
//!   deadline-armed) threads through
//!   [`BatchEngine::diagnose_batch_cancellable`] and
//!   [`DiagnosisService::diagnose_streamed`]; it is checked at job
//!   boundaries only, so cancelled work surfaces as
//!   [`FlowError::Cancelled`] results and never poisons the pool;
//! * **a long-lived streaming form** — [`DiagnosisService`] keeps one
//!   pool, good simulation and cache alive across many requests and
//!   streams per-suspect completions incrementally (the execution core
//!   of the `icd-server` daemon);
//! * **observability** — [`BatchEngine::diagnose_batch_observed`]
//!   attaches an [`icd_obs`] [`Collector`] to a run: per-job spans keyed
//!   by merge identity, per-stage latency histograms, cache/set-cover
//!   counters and pool health (queue depth, steals, per-worker
//!   busy/idle). The span forest and the redacted metrics snapshot are
//!   byte-identical at any worker count.
//!
//! ```
//! use icd_bench::flow::ExperimentContext;
//! use icd_engine::{BatchEngine, EngineConfig};
//! use icd_netlist::generator;
//!
//! let ctx = ExperimentContext::from_preset(&generator::circuit_a(), 1, 25)
//!     .unwrap()
//!     .into_shared();
//! // An all-pass datalog: the batch engine reports a clean test escape.
//! let escape = icd_faultsim::Datalog {
//!     circuit_name: ctx.circuit.name().to_owned(),
//!     num_patterns: ctx.patterns.len(),
//!     entries: vec![],
//! };
//! let engine = BatchEngine::new(EngineConfig::with_workers(2));
//! let batch = engine.diagnose_batch(&ctx, &[escape]).unwrap();
//! assert!(batch.outcomes[0].report.as_ref().unwrap().is_escape());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]

mod batch;
mod cancel;
mod engine;
mod pool;
mod service;

pub use batch::{synthesize_batch, BatchConfig};
pub use cancel::CancelToken;
pub use engine::{BatchEngine, BatchOutcome, BatchReport, BatchStats, EngineConfig, JobError};
pub use pool::{Job, PoolMetrics, WorkerPool};
pub use service::{summarize_report, DiagnosisService, ServiceError, StreamEvent};

// Convenience re-exports: everything a caller needs to build a batch.
pub use icd_bench::flow::{ExperimentContext, FlowError, FlowReport, FlowStage, SkippedGate};
pub use icd_obs::{Collector, MetricsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;

    // The engine's whole design rests on the shared artifacts being
    // usable from worker threads.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_artifacts_are_send_and_sync() {
        assert_send_sync::<ExperimentContext>();
        assert_send_sync::<icd_core::AnalysisCache>();
        assert_send_sync::<icd_faultsim::BitValues>();
        assert_send_sync::<icd_faultsim::Datalog>();
        assert_send_sync::<icd_intercell::IntercellDiagnosis>();
        assert_send_sync::<BatchEngine>();
        assert_send_sync::<WorkerPool>();
    }

    #[test]
    fn config_from_env_respects_icd_workers_format() {
        // Only the pure parsing path: with_workers clamps to >= 1.
        assert_eq!(EngineConfig::with_workers(0).workers, 1);
        assert_eq!(EngineConfig::with_workers(8).workers, 8);
        assert!(EngineConfig::with_workers(1).queue_capacity >= 16);
    }
}
