//! Synthetic failing-device batches — the input side of the engine's
//! benches, the determinism tests and `icdiag gen`.
//!
//! A volume-diagnosis batch is many devices failing the *same* test set
//! on the *same* design. This module builds such a batch by sampling
//! observable defects over the circuit's cell population and emulating
//! the tester per device, mixing single- and multi-defect devices with no
//! assumption on how the failing patterns distribute over the defects.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use icd_bench::flow::{ExperimentContext, FlowError};
use icd_defects::{sample_defects, MixConfig};
use icd_faultsim::{run_test_multi, Datalog, FaultyGate};

/// How a synthesized batch is composed.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Devices in the batch.
    pub count: usize,
    /// Every n-th device carries two simultaneous defects (0 = never).
    pub multi_defect_every: usize,
    /// Defect samples drawn per cell type.
    pub samples_per_cell: usize,
    /// Master seed; every derived sample is a pure function of it.
    pub seed: u64,
}

impl BatchConfig {
    /// A batch of `count` devices with the default composition: every
    /// third device is a two-defect device.
    pub fn new(count: usize, seed: u64) -> Self {
        BatchConfig {
            count,
            multi_defect_every: 3,
            samples_per_cell: 4,
            seed,
        }
    }
}

fn mix_seed(seed: u64, name: &str) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    name.hash(&mut h);
    h.finish()
}

/// Synthesizes a batch of failing-device datalogs against `ctx`.
///
/// Deterministic in the configuration: the same `ctx` and [`BatchConfig`]
/// always produce the same datalogs. Every returned datalog has at least
/// one failing pattern (all-pass candidates are skipped — a test escape
/// never reaches volume diagnosis). The batch may be shorter than
/// `config.count` when the circuit's defect population cannot excite
/// enough distinct failing devices.
///
/// # Errors
///
/// Returns an error when defect sampling or tester emulation fails
/// structurally.
pub fn synthesize_batch(
    ctx: &ExperimentContext,
    config: &BatchConfig,
) -> Result<Vec<Datalog>, FlowError> {
    // The fault pool: every observable stuck/bridge-class sampled defect
    // on every instance of its cell type. Delay-class defects are left
    // out: their excitation depends on pattern pairing and would make
    // batch size vary wildly with the test set.
    let mix = MixConfig {
        stuck: 0.6,
        bridge: 0.4,
        delay: 0.0,
        ..MixConfig::default()
    };
    let mut pool: Vec<FaultyGate> = Vec::new();
    for cell in ctx.cells.iter() {
        let instances = ctx.instances_of(cell.name());
        if instances.is_empty() {
            continue;
        }
        let sample = sample_defects(
            cell.netlist(),
            config.samples_per_cell,
            &mix,
            mix_seed(config.seed, cell.name()),
        )?;
        for (k, injected) in sample.iter().enumerate() {
            let Some(behavior) = injected.characterization.behavior.clone() else {
                continue;
            };
            // Spread the samples over the instance population instead of
            // piling every defect onto instance 0.
            let gate = instances[k % instances.len()];
            pool.push(FaultyGate::new(gate, behavior));
        }
    }
    if pool.is_empty() {
        return Ok(Vec::new());
    }

    let mut batch = Vec::with_capacity(config.count);
    // Excitation is not guaranteed per candidate; budget a bounded number
    // of attempts beyond the requested count.
    let attempts = config.count.saturating_mul(8).max(pool.len());
    for attempt in 0..attempts {
        if batch.len() >= config.count {
            break;
        }
        let first = pool[attempt % pool.len()].clone();
        let mut faulty = vec![first];
        let multi =
            config.multi_defect_every > 0 && (batch.len() + 1) % config.multi_defect_every == 0;
        if multi {
            // A second defect from the other end of the pool, on a
            // different gate (run_test_multi rejects duplicates).
            let second = pool
                .iter()
                .cycle()
                .skip((attempt * 7 + pool.len() / 2) % pool.len())
                .take(pool.len())
                .find(|f| f.gate != faulty[0].gate)
                .cloned();
            if let Some(second) = second {
                faulty.push(second);
            }
        }
        let datalog = run_test_multi(&ctx.circuit, &ctx.patterns, &faulty)?;
        if !datalog.all_pass() {
            batch.push(datalog);
        }
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_netlist::generator;

    #[test]
    fn batch_is_deterministic_and_excited() {
        let ctx = ExperimentContext::from_preset(&generator::circuit_a(), 1, 25).unwrap();
        let cfg = BatchConfig::new(6, 0xb47c);
        let a = synthesize_batch(&ctx, &cfg).unwrap();
        let b = synthesize_batch(&ctx, &cfg).unwrap();
        assert_eq!(a, b, "same seed, same batch");
        assert!(!a.is_empty());
        assert!(a.iter().all(|d| !d.all_pass()));
    }
}
