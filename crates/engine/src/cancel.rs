//! Cooperative cancellation for diagnosis jobs.
//!
//! The batch engine and the diagnosis server both need to abandon work
//! that is no longer wanted — a request whose deadline expired, a client
//! that disconnected, a daemon draining for shutdown — without ever
//! interrupting a worker mid-computation. A [`CancelToken`] is the
//! `Arc`-shared flag that carries that intent: jobs check it at their
//! boundaries (before the front stage, before each per-suspect
//! analysis) and surface [`FlowError::Cancelled`] instead of running;
//! work that already started always runs to completion, so the pool is
//! never poisoned and shared caches stay consistent.
//!
//! A token can carry a deadline: [`CancelToken::is_cancelled`] reports
//! `true` once the deadline has passed even if nobody called
//! [`CancelToken::cancel`] — the per-request deadline and the explicit
//! abort share one code path.
//!
//! [`FlowError::Cancelled`]: icd_bench::flow::FlowError::Cancelled

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// A cancelled parent cancels this token too (but not vice versa):
    /// the server hangs every request token off its drain token so one
    /// `cancel()` at shutdown reaps all in-flight work.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        match &self.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }
}

/// A cloneable, thread-safe cancellation flag with an optional deadline.
///
/// Cloning is cheap (one `Arc` bump) and every clone observes the same
/// state: cancelling any clone cancels them all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never cancels on its own (no deadline).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that auto-cancels once `deadline` has elapsed from now.
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(deadline),
                parent: None,
            }),
        }
    }

    /// A child token that cancels when *either* its own flag/deadline
    /// fires or this (parent) token is cancelled. Cancelling the child
    /// never affects the parent — a request aborting must not drain the
    /// whole server.
    pub fn child_with_deadline(&self, deadline: Option<Duration>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: deadline.and_then(|d| Instant::now().checked_add(d)),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Requests cancellation. Idempotent; already-running work still
    /// finishes (cooperative, checked at job boundaries only).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token was cancelled, its deadline passed, or any
    /// ancestor token was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// Time left until the deadline; `None` when the token has no
    /// deadline, `Some(ZERO)` once it has passed. Useful for sizing
    /// bounded waits (e.g. a drain loop polling `wait_idle`).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_propagates_to_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        // Idempotent.
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_auto_cancels() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled(), "zero deadline is already expired");
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
        far.cancel();
        assert!(far.is_cancelled(), "explicit cancel overrides the deadline");
    }

    #[test]
    fn parent_cancel_reaches_children_but_not_vice_versa() {
        let drain = CancelToken::new();
        let req_a = drain.child_with_deadline(None);
        let req_b = drain.child_with_deadline(Some(Duration::from_secs(3600)));
        assert!(!req_a.is_cancelled() && !req_b.is_cancelled());

        // A request aborting leaves siblings and the parent alone.
        req_a.cancel();
        assert!(req_a.is_cancelled());
        assert!(!drain.is_cancelled());
        assert!(!req_b.is_cancelled());

        // Draining the server reaps every outstanding request token.
        drain.cancel();
        assert!(req_b.is_cancelled());
    }

    #[test]
    fn child_deadline_fires_independently_of_parent() {
        let drain = CancelToken::new();
        let req = drain.child_with_deadline(Some(Duration::from_millis(0)));
        assert!(req.is_cancelled(), "expired child deadline cancels it");
        assert!(!drain.is_cancelled());
    }
}
