//! `icdiag` — batch volume-diagnosis driver.
//!
//! ```text
//! icdiag gen <dir> [--devices N] [--seed S] [--divisor D] [--patterns P]
//! icdiag run <dir> [--workers N]
//! ```
//!
//! `gen` synthesizes a failing-device batch: a netlist (`netlist.txt`),
//! a manifest recording how to regenerate the test set (`manifest.txt`)
//! and one tester datalog per device (`device-NNN.log`).
//!
//! `run` diagnoses such a directory with the parallel batch engine and
//! prints one summary line per datalog plus an aggregate throughput
//! line. Worker count comes from `--workers`, else `ICD_WORKERS`, else
//! the machine's parallelism.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use icd_bench::flow::{pattern_set_for, ExperimentContext};
use icd_cells::CellLibrary;
use icd_engine::{synthesize_batch, BatchConfig, BatchEngine, EngineConfig};
use icd_faultsim::{datalog_text, Datalog};
use icd_netlist::generator;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  icdiag gen <dir> [--devices N] [--seed S] [--divisor D] [--patterns P]\n  \
         icdiag run <dir> [--workers N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "gen" => cmd_gen(&args[1..]),
        "run" => cmd_run(&args[1..]),
        _ => usage(),
    }
}

/// Parses `--flag value` pairs after the positional directory.
fn parse_flags(args: &[String]) -> Result<(PathBuf, Vec<(String, String)>), String> {
    let mut iter = args.iter();
    let dir = iter
        .next()
        .ok_or_else(|| "missing <dir>".to_owned())?
        .clone();
    let mut flags = Vec::new();
    while let Some(flag) = iter.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {flag:?}"))?;
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.push((name.to_owned(), value.clone()));
    }
    Ok((PathBuf::from(dir), flags))
}

fn flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.iter().find(|(n, _)| n == name) {
        None => Ok(default),
        Some((_, v)) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse {v:?}")),
    }
}

fn cmd_gen(args: &[String]) -> ExitCode {
    match gen(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("icdiag gen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gen(args: &[String]) -> Result<(), String> {
    let (dir, flags) = parse_flags(args)?;
    let devices: usize = flag(&flags, "devices", 8)?;
    let seed: u64 = flag(&flags, "seed", 0x1cd1a6)?;
    let divisor: usize = flag(&flags, "divisor", 400)?;
    let patterns: usize = flag(&flags, "patterns", 64)?;

    let ctx = ExperimentContext::from_preset(&generator::circuit_b(), divisor, patterns)
        .map_err(|e| format!("building circuit: {e}"))?;
    let batch = synthesize_batch(&ctx, &BatchConfig::new(devices, seed))
        .map_err(|e| format!("synthesizing batch: {e}"))?;
    if batch.is_empty() {
        return Err("no sampled defect produced a failing device at this scale".into());
    }

    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let write = |name: &str, text: &str| -> Result<(), String> {
        let path = dir.join(name);
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("netlist.txt", &icd_netlist::format::write(&ctx.circuit))?;
    // The test set is regenerated, not stored: record its recipe. The
    // pattern seed matches ExperimentContext::from_preset (config seed is
    // divisor-independent, the whitening constant is the context's).
    let cfg = generator::circuit_b();
    let pattern_seed = if divisor > 1 {
        cfg.scaled_down(divisor).seed ^ 0x7e57
    } else {
        cfg.seed ^ 0x7e57
    };
    write(
        "manifest.txt",
        &format!("patterns={patterns}\npattern_seed={pattern_seed}\n"),
    )?;
    for (i, datalog) in batch.iter().enumerate() {
        write(&format!("device-{i:03}.log"), &datalog_text::write(datalog))?;
    }
    println!(
        "generated {} devices in {} ({} gates, {} patterns)",
        batch.len(),
        dir.display(),
        ctx.circuit.num_gates(),
        ctx.patterns.len()
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> ExitCode {
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("icdiag run: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_manifest(dir: &Path) -> Result<(usize, u64), String> {
    let path = dir.join("manifest.txt");
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut patterns = None;
    let mut seed = None;
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key.trim() {
            "patterns" => patterns = value.trim().parse::<usize>().ok(),
            "pattern_seed" => seed = value.trim().parse::<u64>().ok(),
            _ => {}
        }
    }
    match (patterns, seed) {
        (Some(p), Some(s)) => Ok((p, s)),
        _ => Err(format!(
            "{}: needs `patterns=` and `pattern_seed=` lines",
            path.display()
        )),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (dir, flags) = parse_flags(args)?;
    let workers: usize = flag(&flags, "workers", 0)?;

    // Rebuild the context: parse the netlist against the standard
    // library, regenerate the recorded test set.
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let netlist_path = dir.join("netlist.txt");
    let netlist_text = std::fs::read_to_string(&netlist_path)
        .map_err(|e| format!("reading {}: {e}", netlist_path.display()))?;
    let circuit = icd_netlist::format::parse(&netlist_text, &logic)
        .map_err(|e| format!("parsing {}: {e}", netlist_path.display()))?;
    let (num_patterns, pattern_seed) = read_manifest(&dir)?;
    let patterns = pattern_set_for(&circuit, num_patterns, pattern_seed);
    let ctx = Arc::new(ExperimentContext {
        cells,
        logic,
        circuit,
        patterns,
    });

    // Every *.log in the directory, in name order (determinism).
    let mut log_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    log_files.sort();
    if log_files.is_empty() {
        return Err(format!("no *.log datalogs in {}", dir.display()));
    }
    let mut datalogs: Vec<Datalog> = Vec::with_capacity(log_files.len());
    for path in &log_files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        datalogs.push(datalog_text::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }

    let config = if workers > 0 {
        EngineConfig::with_workers(workers)
    } else {
        EngineConfig::from_env()
    };
    let engine = BatchEngine::new(config);
    let batch = engine
        .diagnose_batch(&ctx, &datalogs)
        .map_err(|e| format!("batch diagnosis: {e}"))?;

    for outcome in &batch.outcomes {
        let name = log_files[outcome.index]
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| format!("#{}", outcome.index));
        match &outcome.report {
            Ok(report) if report.is_escape() => {
                println!("{name}: PASS (test escape)");
            }
            Ok(report) => {
                let top = report
                    .best()
                    .map(|a| {
                        format!(
                            "g{}:{} ({} candidates)",
                            a.gate.index(),
                            ctx.circuit.gate_type(a.gate).name(),
                            a.ranked.candidates.len()
                        )
                    })
                    .unwrap_or_else(|| "none".to_owned());
                println!(
                    "{name}: {} failing patterns, {} analyzed, {} skipped, {} unexplained, \
                     top suspect {top}{}",
                    report.failing_patterns,
                    report.analyses.len(),
                    report.skipped.len(),
                    report.unexplained.len(),
                    if report.is_degraded() {
                        " [degraded]"
                    } else {
                        ""
                    },
                );
            }
            Err(e) => println!("{name}: FAILED ({e})"),
        }
    }

    let stats = &batch.stats;
    let seconds = stats.elapsed.as_secs_f64().max(1e-9);
    let applied = (stats.datalogs * ctx.patterns.len()) as f64;
    println!(
        "batch: {} datalogs, {} suspect jobs, {} workers, {:.2}s \
         ({:.1} datalogs/s, {:.1} patterns/s, table cache {:.0}% hit, cpt cache {:.0}% hit)",
        stats.datalogs,
        stats.suspect_jobs,
        stats.workers,
        seconds,
        stats.datalogs as f64 / seconds,
        applied / seconds,
        stats.table_cache.hit_rate() * 100.0,
        stats.cpt_cache.hit_rate() * 100.0,
    );
    Ok(())
}
