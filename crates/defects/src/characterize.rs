use icd_faultsim::{DelayTable, FaultyBehavior};
use icd_logic::Lv;
use icd_switch::{CellNetlist, Forcing, TNetId, Terminal, TransistorId, TransistorKind};

use crate::{classify, BehaviorClass, Defect, DefectError};

/// Where the defect physically is — used to score diagnosis accuracy
/// against the intra-cell suspects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// Nets the defect touches (rails excluded).
    pub nets: Vec<TNetId>,
    /// Transistors the defect touches.
    pub transistors: Vec<TransistorId>,
    /// Human-readable location.
    pub description: String,
}

/// The result of characterizing one defect on one cell — the paper's
/// "spice simulation of the faulty gate" step, produced by the switch-level
/// engine instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    /// The behaviour class the resistance puts the defect in.
    pub class: BehaviorClass,
    /// The gate-level model (absent for benign defects).
    pub behavior: Option<FaultyBehavior>,
    /// Whether the model ever disagrees with the good cell — i.e. whether
    /// any test could observe this defect.
    pub observable: bool,
    /// The physical location, for experiment scoring.
    pub ground_truth: GroundTruth,
}

fn off_value(kind: TransistorKind) -> Lv {
    match kind {
        TransistorKind::Nmos => Lv::Zero,
        TransistorKind::Pmos => Lv::One,
    }
}

fn ground_truth(cell: &CellNetlist, defect: &Defect) -> GroundTruth {
    match *defect {
        Defect::Short { a, b, .. } => GroundTruth {
            nets: [a, b].into_iter().filter(|&n| !cell.is_rail(n)).collect(),
            transistors: Vec::new(),
            description: defect.describe(cell),
        },
        Defect::OpenTerminal {
            transistor,
            terminal,
            ..
        } => {
            let net = cell.transistor(transistor).terminal_net(terminal);
            GroundTruth {
                nets: if cell.is_rail(net) { vec![] } else { vec![net] },
                transistors: vec![transistor],
                description: defect.describe(cell),
            }
        }
        Defect::OpenNet { net, .. } => GroundTruth {
            nets: vec![net],
            transistors: Vec::new(),
            description: defect.describe(cell),
        },
    }
}

/// Characterizes a defect into a gate-level faulty-cell model.
///
/// * hard shorts to a rail pin the net (stuck-at class, paper defects
///   D1/D2);
/// * hard signal–signal shorts become dominant bridges (D3, low-R case);
/// * resistive shorts/opens become two-pattern
///   [`DelayTable`]s built with the slow-element snapshot semantics (D3
///   mid-R and D4);
/// * hard channel opens switch the transistor permanently off, hard gate
///   opens float its control — both produce truth tables with `U`
///   (floating) entries, which the gate-level simulator interprets as
///   charge retention (the classic CMOS stuck-open behaviour);
/// * benign resistances yield no model.
///
/// # Errors
///
/// Returns an error for degenerate defects or when the switch-level
/// evaluation fails.
pub fn characterize(cell: &CellNetlist, defect: &Defect) -> Result<Characterization, DefectError> {
    let class = classify(cell, defect)?;
    let good = cell.truth_table()?;
    let truth = ground_truth(cell, defect);

    let behavior: Option<FaultyBehavior> = match (class, defect) {
        (BehaviorClass::Benign, _) => None,
        (BehaviorClass::StuckLike, &Defect::Short { a, b, .. }) => {
            // Short to a rail: the signal net is pinned to the rail value.
            let (signal, rail) = if cell.is_rail(b) { (a, b) } else { (b, a) };
            let value = if rail == cell.vdd() {
                Lv::One
            } else {
                Lv::Zero
            };
            let forcing = Forcing::none().pin(signal, value);
            Some(FaultyBehavior::Static(cell.truth_table_with(&forcing)?))
        }
        (BehaviorClass::BridgeLike, &Defect::Short { a, b, .. }) => {
            let forcing = Forcing::none().bridge(a, b);
            Some(FaultyBehavior::Static(cell.truth_table_with(&forcing)?))
        }
        (
            BehaviorClass::StuckLike,
            &Defect::OpenTerminal {
                transistor,
                terminal,
                ..
            },
        ) => {
            let forcing = match terminal {
                // A broken channel contact: the switch can never conduct.
                Terminal::Source | Terminal::Drain => Forcing::none()
                    .override_gate(transistor, off_value(cell.transistor(transistor).kind)),
                // A broken gate contact: the control floats.
                Terminal::Gate => Forcing::none().override_gate(transistor, Lv::U),
            };
            Some(FaultyBehavior::Static(cell.truth_table_with(&forcing)?))
        }
        (BehaviorClass::StuckLike, &Defect::OpenNet { net, .. }) => {
            // An interconnect fully broken between its driver and its
            // loads: every transistor controlled by the net floats; if the
            // net controls nothing, the net segment itself floats.
            let loads: Vec<TransistorId> = cell.gate_loads(net).collect();
            let mut forcing = Forcing::none();
            if loads.is_empty() {
                forcing = forcing.pin(net, Lv::U);
            } else {
                for t in loads {
                    forcing = forcing.override_gate(t, Lv::U);
                }
            }
            Some(FaultyBehavior::Static(cell.truth_table_with(&forcing)?))
        }
        (BehaviorClass::DelayLike, d) => {
            let (slow_nets, slow_transistors): (Vec<TNetId>, Vec<TransistorId>) = match *d {
                Defect::Short { a, b, .. } => {
                    let victim = if cell.is_rail(a) { b } else { a };
                    (vec![victim], vec![])
                }
                Defect::OpenTerminal { transistor, .. } => (vec![], vec![transistor]),
                Defect::OpenNet { net, .. } => (vec![net], vec![]),
            };
            let n = cell.num_inputs();
            let mut error: Option<DefectError> = None;
            let table = DelayTable::from_fn(n, |prev, cur| {
                if error.is_some() {
                    return Lv::U;
                }
                let prev_lv: Vec<Lv> = prev.iter().copied().map(Lv::from).collect();
                let cur_lv: Vec<Lv> = cur.iter().copied().map(Lv::from).collect();
                match cell.solve_two_pattern(
                    &prev_lv,
                    &cur_lv,
                    &Forcing::none(),
                    &slow_nets,
                    &slow_transistors,
                ) {
                    Ok(out) => out.capture_late.value(cell.output()),
                    Err(e) => {
                        error = Some(e.into());
                        Lv::U
                    }
                }
            });
            if let Some(e) = error {
                return Err(e);
            }
            Some(FaultyBehavior::Delay(table))
        }
        // classify() only returns BridgeLike for signal-signal shorts.
        (BehaviorClass::BridgeLike, _) => unreachable!("bridge class implies a short"),
    };

    let observable = behavior
        .as_ref()
        .map(|b| b.ever_differs_from(&good))
        .unwrap_or(false);

    Ok(Characterization {
        class,
        behavior,
        observable,
        ground_truth: truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_cells::CellLibrary;
    use icd_logic::TruthTable;

    fn ao7() -> CellNetlist {
        CellLibrary::standard()
            .get("AO7SVTX1")
            .unwrap()
            .netlist()
            .clone()
    }

    #[test]
    fn rail_short_becomes_stuck_table() {
        let cell = ao7();
        let n16 = cell.find_net("N16").unwrap();
        // N16 pinned to 1: the pull-up behaves as if A were 0, so
        // Z = !(B&C) masked by the pull-down... observable as a stuck-like
        // behaviour.
        let ch = characterize(&cell, &Defect::hard_short(n16, cell.vdd())).unwrap();
        assert_eq!(ch.class, BehaviorClass::StuckLike);
        assert!(ch.observable);
        let FaultyBehavior::Static(table) = ch.behavior.unwrap() else {
            panic!("expected static behaviour");
        };
        let good = cell.truth_table().unwrap();
        assert!(
            !good.differing_inputs(&table).unwrap().is_empty() || table.entries().contains(&Lv::U)
        );
    }

    #[test]
    fn signal_bridge_becomes_dominant_table() {
        let cell = ao7();
        let z = cell.output();
        let a = cell.find_net("A").unwrap();
        // Z dominated by A: Z' = A wherever they differ.
        let ch = characterize(&cell, &Defect::hard_short(z, a)).unwrap();
        assert_eq!(ch.class, BehaviorClass::BridgeLike);
        assert!(ch.observable);
        let FaultyBehavior::Static(table) = ch.behavior.unwrap() else {
            panic!("expected static behaviour");
        };
        // Under A=1,B=0,C=0 good Z = 0; with Z dominated by A it reads 1.
        assert_eq!(table.eval_bits(&[true, false, false]), Lv::One);
    }

    #[test]
    fn hard_channel_open_floats_some_entries() {
        let cell = ao7();
        // Open the source contact of N3 (the pull-down controlled by A):
        // with A=1, B=0 the pull-down cannot conduct and the pull-up is
        // also blocked -> Z floats.
        let n3 = cell.find_transistor("N3").unwrap();
        let ch = characterize(&cell, &Defect::hard_open(n3, Terminal::Source)).unwrap();
        assert_eq!(ch.class, BehaviorClass::StuckLike);
        assert!(ch.observable);
        let FaultyBehavior::Static(table) = ch.behavior.unwrap() else {
            panic!("expected static behaviour");
        };
        assert!(table.entries().contains(&Lv::U), "stuck-open must float");
    }

    #[test]
    fn resistive_open_becomes_delay_table() {
        let cell = ao7();
        let n3 = cell.find_transistor("N3").unwrap();
        let ch = characterize(&cell, &Defect::resistive_open(n3, Terminal::Gate)).unwrap();
        assert_eq!(ch.class, BehaviorClass::DelayLike);
        assert!(ch.observable);
        assert!(matches!(ch.behavior, Some(FaultyBehavior::Delay(_))));
    }

    #[test]
    fn benign_defect_has_no_model() {
        let cell = ao7();
        let z = cell.output();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(
            &cell,
            &Defect::Short {
                a: z,
                b: a,
                resistance: 1e9,
            },
        )
        .unwrap();
        assert_eq!(ch.class, BehaviorClass::Benign);
        assert!(ch.behavior.is_none());
        assert!(!ch.observable);
    }

    #[test]
    fn ground_truth_excludes_rails() {
        let cell = ao7();
        let n16 = cell.find_net("N16").unwrap();
        let ch = characterize(&cell, &Defect::hard_short(n16, cell.vdd())).unwrap();
        assert_eq!(ch.ground_truth.nets, vec![n16]);
    }

    #[test]
    fn delay_model_agrees_with_good_when_inputs_are_stable() {
        let cell = ao7();
        let good = cell.truth_table().unwrap();
        let n3 = cell.find_transistor("N3").unwrap();
        let ch = characterize(&cell, &Defect::resistive_open(n3, Terminal::Gate)).unwrap();
        let FaultyBehavior::Delay(table) = ch.behavior.unwrap() else {
            panic!("expected delay behaviour");
        };
        // With prev == cur nothing transitions, so the late snapshot equals
        // the settled good value.
        for combo in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|k| (combo >> k) & 1 == 1).collect();
            assert_eq!(table.eval(&bits, &bits), good.eval_bits(&bits));
        }
    }

    #[test]
    fn stuck_table_matches_manual_forcing() {
        let cell = ao7();
        let n16 = cell.find_net("N16").unwrap();
        let ch = characterize(&cell, &Defect::hard_short(n16, cell.gnd())).unwrap();
        let FaultyBehavior::Static(table) = ch.behavior.unwrap() else {
            panic!()
        };
        let manual = cell
            .truth_table_with(&Forcing::none().pin(n16, Lv::Zero))
            .unwrap();
        assert_eq!(table, manual);
        let _: TruthTable = manual;
    }
}
