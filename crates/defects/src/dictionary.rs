//! Dictionary-based intra-cell diagnosis baselines.
//!
//! The paper compares its effect-cause approach against the two classical
//! alternatives on a silicon case (circuit C, §4.2.3):
//!
//! * the **defect dictionary** of reference \[13\]: every plausible
//!   physical defect is injected and characterized up front;
//! * the **fault dictionary** of reference \[1\]: only switch-level *fault
//!   models* (stuck-at, dominant bridging) are injected — cheaper to build
//!   but blind to delay defects.
//!
//! Building either dictionary costs one serial injection campaign —
//! `O(n²)` simulations per pattern, dominated by the bridging pairs —
//! whereas the CPT approach needs two simulations per pattern. The
//! `dictionary_ablation` benchmark measures exactly this gap.

use icd_faultsim::FaultyBehavior;
use icd_logic::Lv;
use icd_switch::{CellNetlist, Terminal};

use crate::{characterize, Characterization, Defect, DefectError};

/// One dictionary entry: a candidate defect with its precomputed
/// behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct DictionaryEntry {
    /// The candidate defect.
    pub defect: Defect,
    /// Its characterization (always observable entries only).
    pub characterization: Characterization,
}

/// One observed two-pattern test outcome at the cell boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedTest {
    /// Launch (previous) input vector.
    pub previous: Vec<bool>,
    /// Capture (current) input vector.
    pub inputs: Vec<bool>,
    /// Whether the tester flagged this pattern as failing.
    pub failing: bool,
}

fn push_if_observable(
    cell: &CellNetlist,
    defect: Defect,
    out: &mut Vec<DictionaryEntry>,
) -> Result<(), DefectError> {
    match characterize(cell, &defect) {
        Ok(ch) if ch.observable => {
            out.push(DictionaryEntry {
                defect,
                characterization: ch,
            });
            Ok(())
        }
        Ok(_) => Ok(()),
        Err(DefectError::RailToRailShort | DefectError::DegenerateShort) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Builds the full defect dictionary of one cell (reference \[13\]):
/// hard shorts of every net to both rails, hard shorts between every
/// ordered signal-net pair, hard and resistive opens at every transistor
/// terminal, and resistive opens on every net.
///
/// # Errors
///
/// Returns an error when a characterization fails.
pub fn build_defect_dictionary(cell: &CellNetlist) -> Result<Vec<DictionaryEntry>, DefectError> {
    let mut out = Vec::new();
    let signal_nets: Vec<_> = cell.nets().filter(|&n| !cell.is_rail(n)).collect();
    for &n in &signal_nets {
        push_if_observable(cell, Defect::hard_short(n, cell.vdd()), &mut out)?;
        push_if_observable(cell, Defect::hard_short(n, cell.gnd()), &mut out)?;
        push_if_observable(cell, Defect::slow_net(n), &mut out)?;
    }
    for &a in &signal_nets {
        for &b in &signal_nets {
            if a != b {
                push_if_observable(cell, Defect::hard_short(a, b), &mut out)?;
                push_if_observable(cell, Defect::resistive_short(a, b), &mut out)?;
            }
        }
    }
    let transistors: Vec<_> = cell.transistors().map(|(id, _)| id).collect();
    for t in transistors {
        for terminal in [Terminal::Gate, Terminal::Source, Terminal::Drain] {
            push_if_observable(cell, Defect::hard_open(t, terminal), &mut out)?;
            push_if_observable(cell, Defect::resistive_open(t, terminal), &mut out)?;
        }
    }
    Ok(out)
}

/// Builds the fault dictionary of one cell (reference \[1\]): stuck-at
/// faults (modelled as hard rail shorts) and dominant bridging faults
/// (hard signal-net shorts) only — no delay models, the limitation the
/// paper calls out.
///
/// # Errors
///
/// Returns an error when a characterization fails.
pub fn build_fault_dictionary(cell: &CellNetlist) -> Result<Vec<DictionaryEntry>, DefectError> {
    let mut out = Vec::new();
    let signal_nets: Vec<_> = cell.nets().filter(|&n| !cell.is_rail(n)).collect();
    for &n in &signal_nets {
        push_if_observable(cell, Defect::hard_short(n, cell.vdd()), &mut out)?;
        push_if_observable(cell, Defect::hard_short(n, cell.gnd()), &mut out)?;
    }
    for &a in &signal_nets {
        for &b in &signal_nets {
            if a != b {
                push_if_observable(cell, Defect::hard_short(a, b), &mut out)?;
            }
        }
    }
    Ok(out)
}

/// Predicted tester outcome of one entry on one two-pattern test, with the
/// charge-retention semantics of the gate-level tester model.
fn predicted_fail(cell: &CellNetlist, behavior: &FaultyBehavior, test: &ObservedTest) -> bool {
    let good = cell
        .truth_table()
        .expect("dictionary cells always evaluate");
    let prev_good = good.eval_bits(&test.previous);
    let settled = good.eval_bits(&test.inputs);
    let out = behavior.eval(&test.previous, &test.inputs, prev_good);
    let effective = if out == Lv::U { prev_good } else { out };
    effective.conflicts_with(settled)
}

/// Dictionary look-up diagnosis: the entries whose predicted pass/fail
/// behaviour matches every observed test.
pub fn dictionary_diagnose<'d>(
    cell: &CellNetlist,
    dictionary: &'d [DictionaryEntry],
    observed: &[ObservedTest],
) -> Vec<&'d DictionaryEntry> {
    dictionary
        .iter()
        .filter(|entry| {
            let behavior = entry
                .characterization
                .behavior
                .as_ref()
                .expect("dictionary keeps observable entries only");
            observed
                .iter()
                .all(|t| predicted_fail(cell, behavior, t) == t.failing)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_cells::CellLibrary;

    fn observed_from(cell: &CellNetlist, behavior: &FaultyBehavior) -> Vec<ObservedTest> {
        let good = cell.truth_table().unwrap();
        let n = cell.num_inputs();
        let mut out = Vec::new();
        for prev in 0..(1usize << n) {
            for cur in 0..(1usize << n) {
                let pb: Vec<bool> = (0..n).map(|k| (prev >> k) & 1 == 1).collect();
                let cb: Vec<bool> = (0..n).map(|k| (cur >> k) & 1 == 1).collect();
                let prev_good = good.eval_bits(&pb);
                let raw = behavior.eval(&pb, &cb, prev_good);
                let eff = if raw == Lv::U { prev_good } else { raw };
                out.push(ObservedTest {
                    previous: pb.clone(),
                    inputs: cb,
                    failing: eff.conflicts_with(
                        good.eval_bits(&(0..n).map(|k| (cur >> k) & 1 == 1).collect::<Vec<_>>()),
                    ),
                });
            }
        }
        out
    }

    #[test]
    fn defect_dictionary_contains_its_own_defects() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let dict = build_defect_dictionary(cell).unwrap();
        assert!(dict.len() > 20, "dictionary too small: {}", dict.len());
        // Pick one entry, synthesize its observations, and check the
        // look-up finds it (self-consistency).
        let entry = &dict[0];
        let behavior = entry.characterization.behavior.as_ref().unwrap();
        let observed = observed_from(cell, behavior);
        let hits = dictionary_diagnose(cell, &dict, &observed);
        assert!(
            hits.iter().any(|h| h.defect == entry.defect),
            "dictionary misses its own defect {:?}",
            entry.defect.describe(cell)
        );
    }

    #[test]
    fn fault_dictionary_is_smaller_and_has_no_delay_entries() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let full = build_defect_dictionary(cell).unwrap();
        let faults = build_fault_dictionary(cell).unwrap();
        assert!(faults.len() < full.len());
        assert!(faults
            .iter()
            .all(|e| matches!(e.characterization.behavior, Some(FaultyBehavior::Static(_)))));
    }

    #[test]
    fn lookup_narrows_candidates() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let dict = build_fault_dictionary(cell).unwrap();
        // Observe the behaviour of "input A shorted to GND".
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let observed = observed_from(cell, ch.behavior.as_ref().unwrap());
        let hits = dictionary_diagnose(cell, &dict, &observed);
        assert!(!hits.is_empty());
        assert!(hits.len() < dict.len());
        // The true defect is among the survivors.
        assert!(hits
            .iter()
            .any(|h| h.characterization.ground_truth.nets.contains(&a)));
    }
}
