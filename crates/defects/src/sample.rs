use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use icd_switch::{CellNetlist, TNetId, Terminal, TransistorId};

use crate::{characterize, thresholds, BehaviorClass, Characterization, Defect, DefectError};

/// Target mix of observed faulty behaviours for a random campaign.
///
/// The default reproduces the paper's §4.1 statistics: "30 % of them lead
/// to stuck-at faults, 30 % lead to bridging faults and the remaining 40 %
/// lead to delay faults".
#[derive(Debug, Clone, PartialEq)]
pub struct MixConfig {
    /// Fraction of stuck-at-class defects.
    pub stuck: f64,
    /// Fraction of bridging-class defects.
    pub bridge: f64,
    /// Fraction of delay-class defects.
    pub delay: f64,
    /// Rejection-sampling budget per defect.
    pub attempts: usize,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            stuck: 0.3,
            bridge: 0.3,
            delay: 0.4,
            attempts: 400,
        }
    }
}

/// One sampled, characterized, observable defect.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedDefect {
    /// The physical defect.
    pub defect: Defect,
    /// Its switch-level characterization.
    pub characterization: Characterization,
}

fn random_signal_net(cell: &CellNetlist, rng: &mut StdRng) -> TNetId {
    loop {
        let idx = rng.random_range(0..cell.num_nets());
        let net = cell.nets().nth(idx).expect("index in range");
        if !cell.is_rail(net) {
            return net;
        }
    }
}

fn random_transistor(cell: &CellNetlist, rng: &mut StdRng) -> TransistorId {
    let idx = rng.random_range(0..cell.num_transistors());
    cell.transistors().nth(idx).expect("index in range").0
}

fn random_terminal(rng: &mut StdRng) -> Terminal {
    match rng.random_range(0..3) {
        0 => Terminal::Gate,
        1 => Terminal::Source,
        _ => Terminal::Drain,
    }
}

fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let (l, h) = (lo.ln(), hi.ln());
    (l + rng.random::<f64>() * (h - l)).exp()
}

fn random_defect_of_class(cell: &CellNetlist, class: BehaviorClass, rng: &mut StdRng) -> Defect {
    match class {
        BehaviorClass::StuckLike => {
            if rng.random_bool(0.5) {
                // Hard short to a rail.
                let net = random_signal_net(cell, rng);
                let rail = if rng.random_bool(0.5) {
                    cell.vdd()
                } else {
                    cell.gnd()
                };
                Defect::Short {
                    a: net,
                    b: rail,
                    resistance: log_uniform(rng, 10.0, thresholds::SHORT_HARD_OHMS * 0.9),
                }
            } else {
                // Hard open at a transistor terminal.
                Defect::OpenTerminal {
                    transistor: random_transistor(cell, rng),
                    terminal: random_terminal(rng),
                    resistance: log_uniform(
                        rng,
                        thresholds::OPEN_HARD_OHMS * 1.1,
                        thresholds::OPEN_HARD_OHMS * 100.0,
                    ),
                }
            }
        }
        BehaviorClass::BridgeLike => {
            let a = random_signal_net(cell, rng);
            let mut b = random_signal_net(cell, rng);
            while b == a {
                b = random_signal_net(cell, rng);
            }
            Defect::Short {
                a,
                b,
                resistance: log_uniform(rng, 10.0, thresholds::SHORT_HARD_OHMS * 0.9),
            }
        }
        BehaviorClass::DelayLike => match rng.random_range(0..3) {
            0 => {
                let a = random_signal_net(cell, rng);
                let mut b = random_signal_net(cell, rng);
                while b == a {
                    b = random_signal_net(cell, rng);
                }
                Defect::Short {
                    a,
                    b,
                    resistance: log_uniform(
                        rng,
                        thresholds::SHORT_HARD_OHMS * 1.1,
                        thresholds::SHORT_BENIGN_OHMS * 0.9,
                    ),
                }
            }
            1 => Defect::OpenTerminal {
                transistor: random_transistor(cell, rng),
                terminal: random_terminal(rng),
                resistance: log_uniform(
                    rng,
                    thresholds::OPEN_BENIGN_OHMS * 1.1,
                    thresholds::OPEN_HARD_OHMS * 0.9,
                ),
            },
            _ => Defect::OpenNet {
                net: random_signal_net(cell, rng),
                resistance: log_uniform(
                    rng,
                    thresholds::OPEN_BENIGN_OHMS * 1.1,
                    thresholds::OPEN_HARD_OHMS * 0.9,
                ),
            },
        },
        BehaviorClass::Benign => Defect::OpenNet {
            net: random_signal_net(cell, rng),
            resistance: 1.0,
        },
    }
}

/// Samples `count` observable defects on `cell` with the configured
/// behaviour mix (seeded, reproducible).
///
/// Each defect is characterized and kept only when its model actually
/// disagrees with the good cell somewhere (an unobservable defect never
/// produces a datalog and is of no diagnostic interest).
///
/// # Errors
///
/// Returns [`DefectError::SamplingExhausted`] when no observable defect of
/// a drawn class can be found within the attempt budget — only possible on
/// degenerate cells.
pub fn sample_defects(
    cell: &CellNetlist,
    count: usize,
    mix: &MixConfig,
    seed: u64,
) -> Result<Vec<InjectedDefect>, DefectError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let r = rng.random::<f64>() * (mix.stuck + mix.bridge + mix.delay);
        let class = if r < mix.stuck {
            BehaviorClass::StuckLike
        } else if r < mix.stuck + mix.bridge {
            BehaviorClass::BridgeLike
        } else {
            BehaviorClass::DelayLike
        };
        let mut found = None;
        for _ in 0..mix.attempts {
            let defect = random_defect_of_class(cell, class, &mut rng);
            match characterize(cell, &defect) {
                Ok(ch) if ch.class == class && ch.observable => {
                    found = Some(InjectedDefect {
                        defect,
                        characterization: ch,
                    });
                    break;
                }
                Ok(_) => {}
                Err(DefectError::RailToRailShort | DefectError::DegenerateShort) => {}
                Err(e) => return Err(e),
            }
        }
        match found {
            Some(d) => out.push(d),
            None => return Err(DefectError::SamplingExhausted { class }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_cells::CellLibrary;

    #[test]
    fn sampling_is_deterministic() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = sample_defects(cell, 10, &MixConfig::default(), 42).unwrap();
        let b = sample_defects(cell, 10, &MixConfig::default(), 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampled_defects_are_observable_and_mixed() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO8DHVTX1").unwrap().netlist();
        let sample = sample_defects(cell, 40, &MixConfig::default(), 7).unwrap();
        assert_eq!(sample.len(), 40);
        assert!(sample.iter().all(|d| d.characterization.observable));
        let stuck = sample
            .iter()
            .filter(|d| d.characterization.class == BehaviorClass::StuckLike)
            .count();
        let bridge = sample
            .iter()
            .filter(|d| d.characterization.class == BehaviorClass::BridgeLike)
            .count();
        let delay = sample
            .iter()
            .filter(|d| d.characterization.class == BehaviorClass::DelayLike)
            .count();
        assert_eq!(stuck + bridge + delay, 40);
        // All three classes appear in a 40-defect sample.
        assert!(stuck > 0 && bridge > 0 && delay > 0);
    }

    #[test]
    fn works_on_every_standard_cell() {
        for cell in CellLibrary::standard().iter() {
            let sample = sample_defects(cell.netlist(), 3, &MixConfig::default(), 1)
                .unwrap_or_else(|e| panic!("{}: {e}", cell.name()));
            assert_eq!(sample.len(), 3);
        }
    }
}
