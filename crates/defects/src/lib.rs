//! Transistor-level defect injection — the SPICE-characterization
//! substitute.
//!
//! The paper's simulation-based validation (§4.1) injects physical defects
//! (resistive shorts and opens, after \[11, 15, 16\]) into the transistor
//! netlist of one cell, characterizes the faulty cell with a SPICE
//! simulator to obtain its truth table, and simulates the whole circuit at
//! gate level with that faulty model. This crate reproduces the campaign
//! with the switch-level engine in place of SPICE:
//!
//! * [`Defect`] — a resistive short between two nets, a resistive open at
//!   a transistor terminal, or a resistive open on an interconnect net,
//!   each with a sampled resistance.
//! * [`BehaviorClass`] / [`classify`] — the paper's §2 resistance-threshold
//!   analysis (`R < R_T` ⇒ stuck-like; `Rmin < R < Rmax` ⇒ delay; large
//!   `R` ⇒ benign), with explicit threshold constants.
//! * [`characterize`] — derives the gate-level
//!   [`FaultyBehavior`](icd_faultsim::FaultyBehavior): a (possibly
//!   floating) truth table for static classes, a two-pattern
//!   [`DelayTable`](icd_faultsim::DelayTable) for delay classes, plus the
//!   [`GroundTruth`] location used to score diagnosis accuracy.
//! * [`sample_defects`] — the seeded random campaign with the paper's
//!   observed 30 % stuck-at / 30 % bridging / 40 % delay behaviour mix.
//!
//! # Example
//!
//! ```
//! use icd_cells::CellLibrary;
//! use icd_defects::{characterize, BehaviorClass, Defect};
//!
//! let cells = CellLibrary::standard();
//! let cell = cells.get("AO7SVTX1").expect("exists").netlist();
//! let n16 = cell.find_net("N16").expect("exists");
//! // The paper's Table-2 experiment: N16 hard-shorted to VDD (stuck-at-1).
//! let defect = Defect::hard_short(n16, cell.vdd());
//! let ch = characterize(cell, &defect)?;
//! assert_eq!(ch.class, BehaviorClass::StuckLike);
//! assert!(ch.behavior.is_some());
//! # Ok::<(), icd_defects::DefectError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod characterize;
mod defect;
pub mod dictionary;
mod sample;

pub use characterize::{characterize, Characterization, GroundTruth};
pub use defect::{classify, thresholds, BehaviorClass, Defect, DefectError};
pub use dictionary::{
    build_defect_dictionary, build_fault_dictionary, dictionary_diagnose, DictionaryEntry,
    ObservedTest,
};
pub use sample::{sample_defects, InjectedDefect, MixConfig};
