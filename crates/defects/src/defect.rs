use std::error::Error;
use std::fmt;

use icd_switch::{CellNetlist, TNetId, Terminal, TransistorId};

/// Resistance thresholds of the behaviour classification.
///
/// The paper (§2) keys the faulty behaviour on the defect resistance
/// relative to technology-dependent thresholds (`R_T`, `Rmin`, `Rmax`).
/// The values here are representative of published 90 nm bridge/open
/// characterizations \[15, 16\]; only their *ordering* matters to the
/// reproduction.
pub mod thresholds {
    /// Shorts below this resistance behave as hard shorts (stuck /
    /// dominant-bridge class).
    pub const SHORT_HARD_OHMS: f64 = 500.0;
    /// Shorts between `SHORT_HARD_OHMS` and this bound slow the victim's
    /// transitions (delay class); larger shorts are benign.
    pub const SHORT_BENIGN_OHMS: f64 = 20_000.0;
    /// Opens above this resistance fully disconnect (stuck-open class).
    pub const OPEN_HARD_OHMS: f64 = 10_000_000.0;
    /// Opens between this bound and `OPEN_HARD_OHMS` delay the affected
    /// element (delay class); smaller opens are benign.
    pub const OPEN_BENIGN_OHMS: f64 = 50_000.0;
}

/// A physical defect injected into one cell's transistor netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum Defect {
    /// An unexpected resistive connection between two nets (the paper's
    /// D1–D3). For signal–signal shorts, `a` is the victim and `b` the
    /// aggressor of the resulting dominant bridge.
    Short {
        /// Victim net.
        a: TNetId,
        /// Aggressor net (may be a rail).
        b: TNetId,
        /// Bridge resistance in ohms.
        resistance: f64,
    },
    /// A resistive open at one transistor terminal (broken contact/via —
    /// the silicon cases H3 and M).
    OpenTerminal {
        /// The affected transistor.
        transistor: TransistorId,
        /// Which terminal is open.
        terminal: Terminal,
        /// Open resistance in ohms.
        resistance: f64,
    },
    /// A resistive open on an interconnect net (the paper's D4).
    OpenNet {
        /// The affected net.
        net: TNetId,
        /// Open resistance in ohms.
        resistance: f64,
    },
}

impl Defect {
    /// A short well below the hard threshold (stuck / bridge class).
    pub fn hard_short(a: TNetId, b: TNetId) -> Self {
        Defect::Short {
            a,
            b,
            resistance: thresholds::SHORT_HARD_OHMS / 10.0,
        }
    }

    /// A short in the delay band.
    pub fn resistive_short(a: TNetId, b: TNetId) -> Self {
        Defect::Short {
            a,
            b,
            resistance: (thresholds::SHORT_HARD_OHMS + thresholds::SHORT_BENIGN_OHMS) / 2.0,
        }
    }

    /// A full open at a transistor terminal.
    pub fn hard_open(transistor: TransistorId, terminal: Terminal) -> Self {
        Defect::OpenTerminal {
            transistor,
            terminal,
            resistance: thresholds::OPEN_HARD_OHMS * 10.0,
        }
    }

    /// A resistive (delay-class) open at a transistor terminal.
    pub fn resistive_open(transistor: TransistorId, terminal: Terminal) -> Self {
        Defect::OpenTerminal {
            transistor,
            terminal,
            resistance: (thresholds::OPEN_BENIGN_OHMS + thresholds::OPEN_HARD_OHMS) / 2.0,
        }
    }

    /// A resistive (delay-class) open on an interconnect net.
    pub fn slow_net(net: TNetId) -> Self {
        Defect::OpenNet {
            net,
            resistance: (thresholds::OPEN_BENIGN_OHMS + thresholds::OPEN_HARD_OHMS) / 2.0,
        }
    }

    /// A human-readable location string using the cell's net/transistor
    /// names (`"N16–VDD short"`, `"N0S open"`, …).
    pub fn describe(&self, cell: &CellNetlist) -> String {
        match *self {
            Defect::Short { a, b, resistance } => format!(
                "{}-{} short ({:.0} ohm)",
                cell.net_name(a),
                cell.net_name(b),
                resistance
            ),
            Defect::OpenTerminal {
                transistor,
                terminal,
                resistance,
            } => format!(
                "{} open ({:.0} ohm)",
                cell.terminal_name(transistor, terminal),
                resistance
            ),
            Defect::OpenNet { net, resistance } => {
                format!("{} open ({:.0} ohm)", cell.net_name(net), resistance)
            }
        }
    }
}

/// The faulty-behaviour class a defect's resistance puts it in (§2 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BehaviorClass {
    /// A net pinned to a rail value — manifests as a stuck-at fault.
    StuckLike,
    /// A hard signal–signal short — manifests as a dominant bridging
    /// fault.
    BridgeLike,
    /// A resistive short/open — manifests as a delay fault.
    DelayLike,
    /// Resistance outside the faulty bands: no logic-visible effect.
    Benign,
}

impl fmt::Display for BehaviorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BehaviorClass::StuckLike => "stuck-at",
            BehaviorClass::BridgeLike => "bridging",
            BehaviorClass::DelayLike => "delay",
            BehaviorClass::Benign => "benign",
        };
        f.write_str(s)
    }
}

/// Errors produced by defect injection.
#[derive(Debug, Clone, PartialEq)]
pub enum DefectError {
    /// A short between the two supply rails is a power defect, not a logic
    /// defect.
    RailToRailShort,
    /// A short from a net to itself.
    DegenerateShort,
    /// The underlying switch-level evaluation failed.
    Switch(icd_switch::SwitchError),
    /// The sampler could not find a defect of the requested class on this
    /// cell within its attempt budget.
    SamplingExhausted {
        /// The class that could not be hit.
        class: BehaviorClass,
    },
}

impl fmt::Display for DefectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectError::RailToRailShort => {
                write!(f, "rail-to-rail short is a power defect, not injectable")
            }
            DefectError::DegenerateShort => write!(f, "short from a net to itself"),
            DefectError::Switch(e) => write!(f, "switch-level evaluation failed: {e}"),
            DefectError::SamplingExhausted { class } => {
                write!(f, "could not sample an observable {class} defect")
            }
        }
    }
}

impl Error for DefectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DefectError::Switch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<icd_switch::SwitchError> for DefectError {
    fn from(e: icd_switch::SwitchError) -> Self {
        DefectError::Switch(e)
    }
}

/// Classifies a defect by its resistance (and, for shorts, whether a rail
/// is involved).
///
/// # Errors
///
/// Returns an error for degenerate defects (rail-to-rail or self shorts).
pub fn classify(cell: &CellNetlist, defect: &Defect) -> Result<BehaviorClass, DefectError> {
    Ok(match *defect {
        Defect::Short { a, b, resistance } => {
            if a == b {
                return Err(DefectError::DegenerateShort);
            }
            if cell.is_rail(a) && cell.is_rail(b) {
                return Err(DefectError::RailToRailShort);
            }
            if resistance < thresholds::SHORT_HARD_OHMS {
                if cell.is_rail(a) || cell.is_rail(b) {
                    BehaviorClass::StuckLike
                } else {
                    BehaviorClass::BridgeLike
                }
            } else if resistance < thresholds::SHORT_BENIGN_OHMS {
                BehaviorClass::DelayLike
            } else {
                BehaviorClass::Benign
            }
        }
        Defect::OpenTerminal { resistance, .. } | Defect::OpenNet { resistance, .. } => {
            if resistance > thresholds::OPEN_HARD_OHMS {
                BehaviorClass::StuckLike // stuck-open: a static disconnect
            } else if resistance > thresholds::OPEN_BENIGN_OHMS {
                BehaviorClass::DelayLike
            } else {
                BehaviorClass::Benign
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_switch::CellNetlistBuilder;

    fn inv() -> CellNetlist {
        let mut b = CellNetlistBuilder::new("INV");
        let a = b.input("A");
        let z = b.output("Z");
        b.pmos("P0", a, b.vdd(), z);
        b.nmos("N0", a, b.gnd(), z);
        b.finish().unwrap()
    }

    #[test]
    fn short_classification_bands() {
        let cell = inv();
        let z = cell.output();
        let a = cell.find_net("A").unwrap();
        assert_eq!(
            classify(&cell, &Defect::hard_short(z, cell.gnd())).unwrap(),
            BehaviorClass::StuckLike
        );
        assert_eq!(
            classify(&cell, &Defect::hard_short(z, a)).unwrap(),
            BehaviorClass::BridgeLike
        );
        assert_eq!(
            classify(&cell, &Defect::resistive_short(z, a)).unwrap(),
            BehaviorClass::DelayLike
        );
        assert_eq!(
            classify(
                &cell,
                &Defect::Short {
                    a: z,
                    b: a,
                    resistance: 1e9
                }
            )
            .unwrap(),
            BehaviorClass::Benign
        );
    }

    #[test]
    fn open_classification_bands() {
        let cell = inv();
        let p0 = cell.find_transistor("P0").unwrap();
        assert_eq!(
            classify(&cell, &Defect::hard_open(p0, Terminal::Source)).unwrap(),
            BehaviorClass::StuckLike
        );
        assert_eq!(
            classify(&cell, &Defect::resistive_open(p0, Terminal::Source)).unwrap(),
            BehaviorClass::DelayLike
        );
        assert_eq!(
            classify(
                &cell,
                &Defect::OpenTerminal {
                    transistor: p0,
                    terminal: Terminal::Source,
                    resistance: 10.0
                }
            )
            .unwrap(),
            BehaviorClass::Benign
        );
    }

    #[test]
    fn degenerate_defects_rejected() {
        let cell = inv();
        let z = cell.output();
        assert!(matches!(
            classify(&cell, &Defect::hard_short(z, z)),
            Err(DefectError::DegenerateShort)
        ));
        assert!(matches!(
            classify(&cell, &Defect::hard_short(cell.vdd(), cell.gnd())),
            Err(DefectError::RailToRailShort)
        ));
    }

    #[test]
    fn describe_uses_cell_names() {
        let cell = inv();
        let z = cell.output();
        let d = Defect::hard_short(z, cell.gnd());
        assert!(d.describe(&cell).starts_with("Z-GND short"));
        let p0 = cell.find_transistor("P0").unwrap();
        let d = Defect::hard_open(p0, Terminal::Source);
        assert!(d.describe(&cell).starts_with("P0S open"));
    }
}
