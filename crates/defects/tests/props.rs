//! Property-based tests for defect classification and characterization.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_cells::CellLibrary;
use icd_defects::{characterize, classify, thresholds, BehaviorClass, Defect};
use icd_switch::Terminal;
use proptest::prelude::*;

fn cell_names() -> Vec<String> {
    CellLibrary::standard()
        .iter()
        .map(|c| c.name().to_owned())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Classification bands are monotone in resistance for shorts: as the
    /// bridge resistance grows the class only moves towards benign.
    #[test]
    fn short_classification_is_monotone(cell_idx in 0usize..18, net_idx in 0usize..64) {
        let lib = CellLibrary::standard();
        let name = &cell_names()[cell_idx % cell_names().len()];
        let cell = lib.get(name).unwrap().netlist();
        let nets: Vec<_> = cell.nets().filter(|&n| !cell.is_rail(n)).collect();
        let net = nets[net_idx % nets.len()];
        let rank = |class: BehaviorClass| match class {
            BehaviorClass::StuckLike | BehaviorClass::BridgeLike => 0,
            BehaviorClass::DelayLike => 1,
            BehaviorClass::Benign => 2,
        };
        let mut previous = -1i32;
        for r in [10.0, 400.0, 1_000.0, 10_000.0, 50_000.0, 1e7] {
            let class = classify(cell, &Defect::Short { a: net, b: cell.gnd(), resistance: r })
                .unwrap();
            let cur = rank(class);
            prop_assert!(cur >= previous, "class regressed at R={r}");
            previous = cur;
        }
    }

    /// Characterization is deterministic and matches classification.
    #[test]
    fn characterization_is_deterministic(cell_idx in 0usize..18, seed in any::<u64>()) {
        let lib = CellLibrary::standard();
        let name = &cell_names()[cell_idx % cell_names().len()];
        let cell = lib.get(name).unwrap().netlist();
        let nets: Vec<_> = cell.nets().filter(|&n| !cell.is_rail(n)).collect();
        let net = nets[seed as usize % nets.len()];
        let defect = Defect::Short {
            a: net,
            b: cell.gnd(),
            resistance: 10.0 + (seed % 100_000) as f64,
        };
        let a = characterize(cell, &defect).unwrap();
        let b = characterize(cell, &defect).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.class, classify(cell, &defect).unwrap());
        // Benign defects never carry a behaviour.
        if a.class == BehaviorClass::Benign {
            prop_assert!(a.behavior.is_none());
            prop_assert!(!a.observable);
        }
    }

    /// Ground truth always names at least one element for non-rail sites,
    /// and never names a rail.
    #[test]
    fn ground_truth_is_well_formed(cell_idx in 0usize..18, t_idx in 0usize..32) {
        let lib = CellLibrary::standard();
        let name = &cell_names()[cell_idx % cell_names().len()];
        let cell = lib.get(name).unwrap().netlist();
        let transistors: Vec<_> = cell.transistors().map(|(id, _)| id).collect();
        let t = transistors[t_idx % transistors.len()];
        for terminal in [Terminal::Gate, Terminal::Source, Terminal::Drain] {
            let ch = characterize(cell, &Defect::hard_open(t, terminal)).unwrap();
            prop_assert!(!ch.ground_truth.transistors.is_empty());
            for n in &ch.ground_truth.nets {
                prop_assert!(!cell.is_rail(*n));
            }
        }
    }

    /// The threshold constants keep their documented ordering.
    #[test]
    fn thresholds_are_ordered(_x in 0..1i32) {
        prop_assert!(thresholds::SHORT_HARD_OHMS < thresholds::SHORT_BENIGN_OHMS);
        prop_assert!(thresholds::OPEN_BENIGN_OHMS < thresholds::OPEN_HARD_OHMS);
    }
}
