//! Property-based tests for transistor-level CPT and the diagnosis
//! procedure, over random complementary CMOS cells and the standard
//! library.

#![allow(clippy::unwrap_used, clippy::panic)] // test code

use icd_core::{critical_oracle, delay_suspects, diagnose, transistor_cpt, LocalTest, SuspectItem};
use icd_switch::samples::random_cell;
use icd_switch::{Lv, Terminal};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn bits(combo: usize, n: usize) -> Vec<bool> {
    (0..n).map(|k| (combo >> k) & 1 == 1).collect()
}

fn lv(bits: &[bool]) -> Vec<Lv> {
    bits.iter().copied().map(Lv::from).collect()
}

proptest! {
    /// The backward trace agrees with the brute-force flip oracle on
    /// random cell topologies — for net criticality and gate-terminal
    /// criticality alike.
    #[test]
    fn trace_equals_oracle_on_random_cells(seed in any::<u64>(), inputs in 1usize..5) {
        let (cell, _) = random_cell(seed, inputs).expect("builds");
        for combo in 0..(1usize << inputs) {
            let vector = lv(&bits(combo, inputs));
            let outcome = transistor_cpt(&cell, &vector).expect("traces");
            let oracle = critical_oracle(&cell, &vector).expect("enumerates");
            let trace_nets: BTreeSet<_> = outcome
                .suspects
                .iter()
                .filter(|(i, _)| matches!(i, SuspectItem::Net(_)))
                .map(|(i, _)| *i)
                .collect();
            let oracle_nets: BTreeSet<_> = oracle
                .iter()
                .filter(|i| matches!(i, SuspectItem::Net(_)))
                .copied()
                .collect();
            prop_assert_eq!(trace_nets, oracle_nets, "nets differ (seed {})", seed);
            let trace_gates: BTreeSet<_> = outcome
                .suspects
                .iter()
                .filter(|(i, _)| matches!(i, SuspectItem::Terminal(_, Terminal::Gate)))
                .map(|(i, _)| *i)
                .collect();
            let oracle_gates: BTreeSet<_> = oracle
                .iter()
                .filter(|i| matches!(i, SuspectItem::Terminal(_, Terminal::Gate)))
                .copied()
                .collect();
            prop_assert_eq!(trace_gates, oracle_gates, "gates differ (seed {})", seed);
        }
    }

    /// Every suspect carries the fault-free value of its net under the
    /// traced pattern.
    #[test]
    fn suspect_values_are_the_fault_free_values(seed in any::<u64>(), combo in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let vector = lv(&bits(combo % 8, 3));
        let outcome = transistor_cpt(&cell, &vector).expect("traces");
        for (item, &value) in outcome.suspects.iter() {
            prop_assert_eq!(value, outcome.values.value(item.net(&cell)));
        }
    }

    /// Delay suspects are exactly the static suspects on transitioning
    /// nets.
    #[test]
    fn delay_suspects_are_transitioning_criticals(
        seed in any::<u64>(),
        launch in any::<usize>(),
        capture in any::<usize>(),
    ) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let l = lv(&bits(launch % 8, 3));
        let c = lv(&bits(capture % 8, 3));
        let dsl = delay_suspects(&cell, &l, &c).expect("delay-traces");
        let cur = transistor_cpt(&cell, &c).expect("traces");
        let launch_vals = cell.solve(&l, &icd_switch::Forcing::none()).expect("solves");
        for item in dsl.iter() {
            prop_assert!(cur.suspects.contains(item));
            let net = item.net(&cell);
            prop_assert!(launch_vals
                .value(net)
                .conflicts_with(cur.values.value(net)));
        }
        // And conversely, every transitioning critical item is in DSL.
        for (item, _) in cur.suspects.iter() {
            let net = item.net(&cell);
            if launch_vals.value(net).conflicts_with(cur.values.value(net)) {
                prop_assert!(dsl.contains(item));
            }
        }
    }

    /// Vindication only shrinks: adding passing patterns can never grow
    /// the global suspect lists or the resolution.
    #[test]
    fn vindication_is_monotone(seed in any::<u64>(), fail in any::<usize>(), pass in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let lfp = vec![LocalTest::static_vector(bits(fail % 8, 3))];
        let without = diagnose(&cell, &lfp, &[]).expect("diagnoses");
        let lpp = vec![LocalTest::static_vector(bits(pass % 8, 3))];
        let with = diagnose(&cell, &lfp, &lpp).expect("diagnoses");
        if !with.dynamic_only {
            prop_assert!(with.gsl.len() <= without.gsl.len());
            prop_assert!(with.gbsl.len() <= without.gbsl.len());
        }
        prop_assert_eq!(with.gdsl, without.gdsl); // never vindicated
    }

    /// More failing patterns only shrink the global lists (intersection).
    #[test]
    fn intersection_is_monotone(seed in any::<u64>(), a in any::<usize>(), b in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let one = vec![LocalTest::static_vector(bits(a % 8, 3))];
        let two = vec![
            LocalTest::static_vector(bits(a % 8, 3)),
            LocalTest::static_vector(bits(b % 8, 3)),
        ];
        let r1 = diagnose(&cell, &one, &[]).expect("diagnoses");
        let r2 = diagnose(&cell, &two, &[]).expect("diagnoses");
        prop_assert!(r2.gsl.len() <= r1.gsl.len());
        prop_assert!(r2.gbsl.len() <= r1.gbsl.len());
        prop_assert!(r2.gdsl.len() <= r1.gdsl.len());
    }

    /// Diagnosis is deterministic.
    #[test]
    fn diagnose_is_deterministic(seed in any::<u64>(), fail in any::<usize>(), pass in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let lfp = vec![LocalTest::static_vector(bits(fail % 8, 3))];
        let lpp = vec![LocalTest::static_vector(bits(pass % 8, 3))];
        let r1 = diagnose(&cell, &lfp, &lpp).expect("diagnoses");
        let r2 = diagnose(&cell, &lfp, &lpp).expect("diagnoses");
        prop_assert_eq!(r1, r2);
    }

    /// The cell output is always critical under any fully specified
    /// pattern, so a single-failure diagnosis is never empty before
    /// vindication.
    #[test]
    fn single_failure_diagnosis_is_never_empty(seed in any::<u64>(), fail in any::<usize>()) {
        let (cell, _) = random_cell(seed, 3).expect("builds");
        let lfp = vec![LocalTest::static_vector(bits(fail % 8, 3))];
        let report = diagnose(&cell, &lfp, &[]).expect("diagnoses");
        prop_assert!(!report.is_empty());
        prop_assert!(report.gsl.contains(&SuspectItem::Net(cell.output())));
    }
}
