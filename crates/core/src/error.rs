use std::error::Error;
use std::fmt;

use icd_switch::SwitchError;

/// Errors produced by intra-cell diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The underlying switch-level evaluation failed.
    Switch(SwitchError),
    /// A local pattern's width differs from the cell's input count.
    WrongLocalWidth {
        /// Inputs the cell declares.
        expected: usize,
        /// Width of the offending local pattern.
        got: usize,
    },
    /// Diagnosis needs at least one local failing pattern.
    NoFailingPatterns,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Switch(e) => write!(f, "switch-level evaluation failed: {e}"),
            CoreError::WrongLocalWidth { expected, got } => {
                write!(f, "local pattern has width {got}, cell expects {expected}")
            }
            CoreError::NoFailingPatterns => {
                write!(f, "diagnosis needs at least one local failing pattern")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Switch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SwitchError> for CoreError {
    fn from(e: SwitchError) -> Self {
        CoreError::Switch(e)
    }
}
