use std::collections::BTreeSet;

use icd_logic::Lv;
use icd_switch::{CellNetlist, Forcing, NodeValues, TNetId, Terminal, TransistorId};

use crate::{CoreError, DelaySuspectList, SuspectItem, SuspectList};

/// The result of one transistor-level CPT application.
#[derive(Debug, Clone)]
pub struct CptOutcome {
    /// Critical items with their fault-free logic values — the Current
    /// Suspect List of the traced pattern.
    pub suspects: SuspectList,
    /// The fault-free valuation of every cell net under the pattern.
    pub values: NodeValues,
    /// The items in the order the trace marked them (for walkthrough
    /// output, Figs. 6–8).
    pub trace: Vec<SuspectItem>,
}

fn check_width(cell: &CellNetlist, inputs: &[Lv]) -> Result<(), CoreError> {
    if inputs.len() != cell.num_inputs() {
        return Err(CoreError::WrongLocalWidth {
            expected: cell.num_inputs(),
            got: inputs.len(),
        });
    }
    Ok(())
}

/// Whether forcing the given constraint changes the cell output from
/// `reference`.
fn flips_output(
    cell: &CellNetlist,
    inputs: &[Lv],
    forcing: &Forcing,
    reference: Lv,
) -> Result<bool, CoreError> {
    let vals = cell.solve(inputs, forcing)?;
    Ok(vals.value(cell.output()) != reference)
}

/// Critical Path Tracing at transistor level (paper §3.2.1, Figs. 6–8).
///
/// Starting from the cell output, the trace walks back through the
/// channel-connected network:
///
/// * every channel terminal attached to a critical net is critical (the
///   paper's "drain" rule — `T4D…T8D` in Fig. 6);
/// * a transistor's *gate* terminal is critical when toggling that one
///   transistor's conduction changes the output (redundant parallel
///   devices stay uncritical; a blocked stack's off-device gate is
///   critical);
/// * the *opposite channel* terminal is critical when pinning its net to
///   the complement value changes the output (conducting paths are traced
///   through, blocked ones are not);
/// * every net holding a critical terminal becomes critical and is traced
///   in turn, until the cell inputs are reached.
///
/// Criticality is decided by exact flip re-simulation; a change to `U`
/// (fight/float) counts as a change, matching the paper's treatment of
/// fighting pull-ups/pull-downs as critical. Supply rails are never
/// critical.
///
/// # Errors
///
/// Returns an error when the input width is wrong or the switch-level
/// evaluation fails.
pub fn transistor_cpt(cell: &CellNetlist, inputs: &[Lv]) -> Result<CptOutcome, CoreError> {
    check_width(cell, inputs)?;
    let values = cell.solve(inputs, &Forcing::none())?;
    let out = cell.output();
    let out_val = values.value(out);

    let mut suspects = SuspectList::new();
    let mut trace = Vec::new();
    let mut net_seen: BTreeSet<TNetId> = BTreeSet::new();
    let mut term_seen: BTreeSet<(TransistorId, Terminal)> = BTreeSet::new();
    let mut worklist: Vec<TNetId> = Vec::new();

    let mark_net = |net: TNetId,
                    suspects: &mut SuspectList,
                    trace: &mut Vec<SuspectItem>,
                    net_seen: &mut BTreeSet<TNetId>,
                    worklist: &mut Vec<TNetId>| {
        if cell.is_rail(net) || !net_seen.insert(net) {
            return;
        }
        let item = SuspectItem::Net(net);
        suspects.insert(item, values.value(net));
        trace.push(item);
        worklist.push(net);
    };

    mark_net(out, &mut suspects, &mut trace, &mut net_seen, &mut worklist);

    while let Some(net) = worklist.pop() {
        // Walk every transistor whose channel touches the critical net.
        for &(tid, other) in cell.channel_neighbors(net) {
            let transistor = cell.transistor(tid);
            // Rule 1: the terminal sitting on the critical net is critical.
            let on_side = if transistor.source == net {
                Terminal::Source
            } else {
                Terminal::Drain
            };
            if term_seen.insert((tid, on_side)) {
                let item = SuspectItem::Terminal(tid, on_side);
                suspects.insert(item, values.value(net));
                trace.push(item);
            }

            // Rule 2: gate criticality — toggle this transistor only.
            let gate_val = values.value(transistor.gate);
            if gate_val.is_known() && !term_seen.contains(&(tid, Terminal::Gate)) {
                let forcing = Forcing::none().override_gate(tid, !gate_val);
                if flips_output(cell, inputs, &forcing, out_val)? {
                    term_seen.insert((tid, Terminal::Gate));
                    let item = SuspectItem::Terminal(tid, Terminal::Gate);
                    suspects.insert(item, gate_val);
                    trace.push(item);
                    mark_net(
                        transistor.gate,
                        &mut suspects,
                        &mut trace,
                        &mut net_seen,
                        &mut worklist,
                    );
                }
            }

            // Rule 3: opposite channel terminal criticality — pin its net.
            let other_side = if transistor.source == other {
                Terminal::Source
            } else {
                Terminal::Drain
            };
            if !cell.is_rail(other) && !term_seen.contains(&(tid, other_side)) {
                let other_val = values.value(other);
                if other_val.is_known() {
                    let forcing = Forcing::none().pin(other, !other_val);
                    if flips_output(cell, inputs, &forcing, out_val)? {
                        term_seen.insert((tid, other_side));
                        let item = SuspectItem::Terminal(tid, other_side);
                        suspects.insert(item, other_val);
                        trace.push(item);
                        mark_net(
                            other,
                            &mut suspects,
                            &mut trace,
                            &mut net_seen,
                            &mut worklist,
                        );
                    }
                }
            }
        }

        // Gate loads: transistors controlled by the critical net must also
        // be tested (the net may matter only through the next stage).
        for tid in cell.gate_loads(net) {
            if term_seen.contains(&(tid, Terminal::Gate)) {
                continue;
            }
            let gate_val = values.value(net);
            if !gate_val.is_known() {
                continue;
            }
            let forcing = Forcing::none().override_gate(tid, !gate_val);
            if flips_output(cell, inputs, &forcing, out_val)? {
                term_seen.insert((tid, Terminal::Gate));
                let item = SuspectItem::Terminal(tid, Terminal::Gate);
                suspects.insert(item, gate_val);
                trace.push(item);
            }
        }

        // Stem rule: a net controlling *several* devices around the
        // critical region can be critical as a whole even when no single
        // gate terminal is (toggling one of two parallel devices is
        // masked by its twin, toggling both is not). Test the gate nets
        // of every channel-adjacent transistor with a whole-net flip, so
        // net-level criticality stays exact.
        for &(tid, _) in cell.channel_neighbors(net) {
            let stem = cell.transistor(tid).gate;
            if cell.is_rail(stem) || net_seen.contains(&stem) {
                continue;
            }
            let v = values.value(stem);
            if !v.is_known() {
                continue;
            }
            let forcing = Forcing::none().pin(stem, !v);
            if flips_output(cell, inputs, &forcing, out_val)? {
                mark_net(
                    stem,
                    &mut suspects,
                    &mut trace,
                    &mut net_seen,
                    &mut worklist,
                );
            }
        }
    }

    Ok(CptOutcome {
        suspects,
        values,
        trace,
    })
}

/// Brute-force criticality oracle: every non-rail net is pin-flipped and
/// every transistor gate is toggled, each with a full re-simulation.
///
/// Used by the test suite to validate the backward trace; `O(elements)`
/// simulations instead of the trace's localized work.
///
/// # Errors
///
/// Same as [`transistor_cpt`].
pub fn critical_oracle(
    cell: &CellNetlist,
    inputs: &[Lv],
) -> Result<BTreeSet<SuspectItem>, CoreError> {
    check_width(cell, inputs)?;
    let values = cell.solve(inputs, &Forcing::none())?;
    let out_val = values.value(cell.output());
    let mut critical = BTreeSet::new();

    for net in cell.nets() {
        if cell.is_rail(net) {
            continue;
        }
        if net == cell.output() {
            critical.insert(SuspectItem::Net(net));
            continue;
        }
        let v = values.value(net);
        if !v.is_known() {
            continue;
        }
        let forcing = Forcing::none().pin(net, !v);
        if flips_output(cell, inputs, &forcing, out_val)? {
            critical.insert(SuspectItem::Net(net));
        }
    }
    for (tid, t) in cell.transistors() {
        let g = values.value(t.gate);
        if !g.is_known() {
            continue;
        }
        let forcing = Forcing::none().override_gate(tid, !g);
        if flips_output(cell, inputs, &forcing, out_val)? {
            critical.insert(SuspectItem::Terminal(tid, Terminal::Gate));
        }
    }
    Ok(critical)
}

/// Critical *delay* items for one two-pattern local test (launch,
/// capture): items critical under the capture vector whose underlying net
/// transitions between launch and capture — a late transition on such a
/// net keeps the stale value on a sensitized path and flips the sampled
/// output. This is the Current Delay Suspect List (eq. 3).
///
/// # Errors
///
/// Same as [`transistor_cpt`].
pub fn delay_suspects(
    cell: &CellNetlist,
    launch: &[Lv],
    capture: &[Lv],
) -> Result<DelaySuspectList, CoreError> {
    let outcome = transistor_cpt(cell, capture)?;
    delay_suspects_from(cell, launch, &outcome)
}

/// [`delay_suspects`] reusing an already traced capture outcome — the
/// fast path when the capture vector's CPT was just computed (or served
/// from an [`AnalysisCache`](crate::AnalysisCache)) by the caller.
///
/// # Errors
///
/// Same as [`transistor_cpt`].
pub fn delay_suspects_from(
    cell: &CellNetlist,
    launch: &[Lv],
    outcome: &CptOutcome,
) -> Result<DelaySuspectList, CoreError> {
    check_width(cell, launch)?;
    let launch_vals = cell.solve(launch, &Forcing::none())?;
    let mut dsl = DelaySuspectList::new();
    for (item, _) in outcome.suspects.iter() {
        let net = item.net(cell);
        if launch_vals
            .value(net)
            .conflicts_with(outcome.values.value(net))
        {
            dsl.insert(*item);
        }
    }
    Ok(dsl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_cells::CellLibrary;

    fn lv(bits: &[bool]) -> Vec<Lv> {
        bits.iter().copied().map(Lv::from).collect()
    }

    #[test]
    fn nand2_cpt_matches_hand_analysis() {
        let cells = CellLibrary::standard();
        let cell = cells.get("ND2HVTX1").unwrap().netlist();
        // A=1, B=1: Z=0, both nMOS conduct, both gates critical; the stack
        // node is critical; pMOS gates critical (turning one on fights).
        let out = transistor_cpt(cell, &lv(&[true, true])).unwrap();
        let a = cell.find_net("A").unwrap();
        let b = cell.find_net("B").unwrap();
        let n10 = cell.find_net("N10").unwrap();
        assert!(out.suspects.contains(&SuspectItem::Net(a)));
        assert!(out.suspects.contains(&SuspectItem::Net(b)));
        assert!(out.suspects.contains(&SuspectItem::Net(n10)));

        // A=0, B=1: Z=1 via P0 alone; flipping B's pull-down gate has no
        // effect (stack blocked by A's nMOS) and P1 is redundant off?
        // P1 off (B=1); turning P1 on adds a parallel 1-path: not critical.
        let out = transistor_cpt(cell, &lv(&[false, true])).unwrap();
        assert!(out.suspects.contains(&SuspectItem::Net(a)));
        let p1 = cell.find_transistor("P1").unwrap();
        assert!(!out
            .suspects
            .contains(&SuspectItem::Terminal(p1, Terminal::Gate)));
        // B reaches criticality through the nMOS stack? N3's gate: with
        // the stack blocked by N2 (A=0)... turning N3 off changes nothing;
        // B is not critical here.
        assert!(!out.suspects.contains(&SuspectItem::Net(b)));
    }

    #[test]
    fn trace_equals_oracle_on_all_cells_and_vectors() {
        // The backward trace must agree with brute-force flip simulation
        // on every library cell and every fully specified input vector:
        // net criticality and gate-terminal criticality both.
        let cells = CellLibrary::standard();
        for cell in cells.iter() {
            let nl = cell.netlist();
            let n = nl.num_inputs();
            for combo in 0..(1usize << n) {
                let bits: Vec<bool> = (0..n).map(|k| (combo >> k) & 1 == 1).collect();
                let inputs = lv(&bits);
                let outcome = transistor_cpt(nl, &inputs).unwrap();
                let oracle = critical_oracle(nl, &inputs).unwrap();
                // Nets: exact agreement.
                let trace_nets: BTreeSet<SuspectItem> = outcome
                    .suspects
                    .iter()
                    .filter(|(i, _)| matches!(i, SuspectItem::Net(_)))
                    .map(|(i, _)| *i)
                    .collect();
                let oracle_nets: BTreeSet<SuspectItem> = oracle
                    .iter()
                    .filter(|i| matches!(i, SuspectItem::Net(_)))
                    .copied()
                    .collect();
                assert_eq!(
                    trace_nets,
                    oracle_nets,
                    "net criticality mismatch: {} under {:?}",
                    nl.name(),
                    bits
                );
                // Gate terminals: every oracle-critical gate must be found.
                let trace_gates: BTreeSet<SuspectItem> = outcome
                    .suspects
                    .iter()
                    .filter(|(i, _)| matches!(i, SuspectItem::Terminal(_, Terminal::Gate)))
                    .map(|(i, _)| *i)
                    .collect();
                let oracle_gates: BTreeSet<SuspectItem> = oracle
                    .iter()
                    .filter(|i| matches!(i, SuspectItem::Terminal(_, Terminal::Gate)))
                    .copied()
                    .collect();
                assert_eq!(
                    trace_gates,
                    oracle_gates,
                    "gate criticality mismatch: {} under {:?}",
                    nl.name(),
                    bits
                );
            }
        }
    }

    #[test]
    fn conducting_parallel_fingers_are_not_critical() {
        // AN2BHVTX8 has six parallel output-inverter fingers per polarity:
        // a finger of the *conducting* group is redundant (its siblings
        // keep driving), so its gate is never critical. (A finger of the
        // off group is a different story: turning it on creates a fight.)
        let cells = CellLibrary::standard();
        let cell = cells.get("AN2BHVTX8").unwrap().netlist();
        let nw = cell.find_net("N21").unwrap();
        for combo in 0..4usize {
            let bits = [(combo & 1) == 1, (combo & 2) == 2];
            let vals = cell
                .solve(&lv(&bits), &icd_switch::Forcing::none())
                .unwrap();
            let out = transistor_cpt(cell, &lv(&bits)).unwrap();
            let conducting: Vec<String> = if vals.value(nw) == Lv::Zero {
                (6..12).map(|i| format!("P{i}")).collect()
            } else {
                (12..18).map(|i| format!("N{i}")).collect()
            };
            for name in conducting {
                let t = cell.find_transistor(&name).unwrap();
                assert!(
                    !out.suspects
                        .contains(&SuspectItem::Terminal(t, Terminal::Gate)),
                    "conducting finger {name} critical under {bits:?}"
                );
            }
        }
    }

    #[test]
    fn ao8d_walkthrough_under_0111() {
        // The Figs. 6-8 stimulus on our AO8DHVTX1 reconstruction.
        let cells = CellLibrary::standard();
        let cell = cells.get("AO8DHVTX1").unwrap().netlist();
        let out = transistor_cpt(cell, &lv(&[false, true, true, true])).unwrap();
        let find = |n: &str| SuspectItem::Net(cell.find_net(n).unwrap());
        // Z, Net118 and the pull-down stack nets are critical.
        assert!(out.suspects.contains(&find("Z")));
        assert!(out.suspects.contains(&find("Net118")));
        assert!(out.suspects.contains(&find("Net110")));
        assert!(out.suspects.contains(&find("Net106")));
        // Input D is critical (T4/T7 control the sensitized stage).
        assert!(out.suspects.contains(&find("D")));
        // The blocked-stack device T8 (gate A, off) is not on a sensitized
        // path: turning it on only adds a parallel ground path below an
        // already-conducting stack -> not critical; input A stays clean.
        assert!(!out.suspects.contains(&find("A")));
        // Output inverter devices: both gates critical.
        let t5 = cell.find_transistor("T5").unwrap();
        let t6 = cell.find_transistor("T6").unwrap();
        assert!(out
            .suspects
            .contains(&SuspectItem::Terminal(t5, Terminal::Gate)));
        assert!(out
            .suspects
            .contains(&SuspectItem::Terminal(t6, Terminal::Gate)));
        // Suspect values are the fault-free ones.
        assert_eq!(out.suspects.value(&find("Z")), Some(Lv::One));
        assert_eq!(out.suspects.value(&find("Net118")), Some(Lv::Zero));
    }

    #[test]
    fn delay_suspects_require_a_transition() {
        let cells = CellLibrary::standard();
        let cell = cells.get("INVHVTX1").unwrap().netlist();
        let z = SuspectItem::Net(cell.output());
        // 0 -> 1 on A: Z falls; both A and Z transition and are critical.
        let dsl = delay_suspects(cell, &lv(&[false]), &lv(&[true])).unwrap();
        assert!(dsl.contains(&z));
        let a = SuspectItem::Net(cell.find_net("A").unwrap());
        assert!(dsl.contains(&a));
        // Stable vector: nothing transitions.
        let dsl = delay_suspects(cell, &lv(&[true]), &lv(&[true])).unwrap();
        assert!(dsl.is_empty());
    }

    #[test]
    fn wrong_width_is_reported() {
        let cells = CellLibrary::standard();
        let cell = cells.get("INVHVTX1").unwrap().netlist();
        assert!(matches!(
            transistor_cpt(cell, &lv(&[true, false])),
            Err(CoreError::WrongLocalWidth {
                expected: 1,
                got: 2
            })
        ));
    }
}
