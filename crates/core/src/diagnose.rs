use std::collections::BTreeSet;

use icd_logic::Lv;
use icd_switch::{CellNetlist, TNetId, TransistorId};

use crate::{
    delay_suspects_from, transistor_cpt, AnalysisCache, BridgeSuspectList, CoreError, CptOutcome,
    DelaySuspectList, SuspectItem, SuspectList,
};

/// One local test applied to the suspected cell: the current input vector
/// and the previous one (the launch vector of the pattern pair — required
/// for dynamic faulty behaviours, paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LocalTest {
    /// Current (capture) cell-input values, in pin order.
    pub inputs: Vec<bool>,
    /// Previous (launch) cell-input values.
    pub previous: Vec<bool>,
}

impl LocalTest {
    /// A static test: no transition (previous == current).
    pub fn static_vector(inputs: Vec<bool>) -> Self {
        LocalTest {
            previous: inputs.clone(),
            inputs,
        }
    }

    /// A two-pattern test.
    pub fn two_pattern(previous: Vec<bool>, inputs: Vec<bool>) -> Self {
        LocalTest { previous, inputs }
    }

    fn inputs_lv(&self) -> Vec<Lv> {
        self.inputs.iter().copied().map(Lv::from).collect()
    }

    fn previous_lv(&self) -> Vec<Lv> {
        self.previous.iter().copied().map(Lv::from).collect()
    }
}

/// The fault model allocated to a surviving suspect (paper §3.2.2, last
/// step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultModel {
    /// Stuck-at-0 (the suspect was traced at logic 1 in the failures).
    StuckAt0,
    /// Stuck-at-1 (the suspect was traced at logic 0 in the failures).
    StuckAt1,
    /// The traced value was unknown: either polarity explains the
    /// failures.
    StuckAtEither,
    /// Dominant bridging fault; the aggressor is recorded in the
    /// candidate.
    DominantBridge,
    /// Delay fault (slow-to-rise / slow-to-fall deliberately not
    /// distinguished).
    SlowTransition,
}

/// The physical location a candidate implicates — the unit in which the
/// paper counts resolution ("when a transistor is identified as suspect,
/// all of the three terminals of this transistor are suspected").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SuspectLocation {
    /// A cell net.
    Net(TNetId),
    /// A transistor (via one of its terminals).
    Transistor(TransistorId),
}

/// One allocated fault candidate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultCandidate {
    /// Where the fault would be.
    pub location: SuspectLocation,
    /// Which fault model explains the failures there.
    pub model: FaultModel,
    /// The aggressor net for dominant-bridge candidates.
    pub aggressor: Option<TNetId>,
    /// Paper-style description (`"N16 Sa1"`, `"N55-A"`, `"N2 delay"`).
    pub description: String,
}

/// The complete intra-cell diagnosis result.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisReport {
    /// Global Suspect List after intersection and vindication.
    pub gsl: SuspectList,
    /// Global Bridging Suspect List after intersection and vindication.
    pub gbsl: BridgeSuspectList,
    /// Global Delay Suspect List after intersection (never vindicated).
    pub gdsl: DelaySuspectList,
    /// Whether `lfp ∩ lpp ≠ ∅` forced the dynamic-only verdict
    /// (Definition 3): static lists were discarded.
    pub dynamic_only: bool,
    /// Allocated fault candidates.
    pub candidates: Vec<FaultCandidate>,
}

impl DiagnosisReport {
    /// Whether no candidate survived — the defect is *outside* this cell
    /// (the paper's circuit-C verdict).
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The paper's resolution metric: the number of distinct candidate
    /// locations.
    pub fn resolution(&self) -> usize {
        self.candidates
            .iter()
            .map(|c| c.location)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// The coarser net-level resolution: the number of distinct *nets* the
    /// surviving suspect lists point at (each terminal suspect counts as
    /// the net it sits on, each bridge as its victim). This is the
    /// granularity physical failure analysis navigates by, and the closest
    /// match to the candidate counts of the paper's Tables 2–5.
    pub fn net_resolution(&self, cell: &CellNetlist) -> usize {
        let mut nets = BTreeSet::new();
        for (item, _) in self.gsl.iter() {
            nets.insert(item.net(cell));
        }
        for (&(victim, _), _) in self.gbsl.iter() {
            nets.insert(victim);
        }
        for item in self.gdsl.iter() {
            nets.insert(item.net(cell));
        }
        nets.len()
    }

    /// All nets any candidate implicates (terminal candidates implicate
    /// the terminal's net; bridge candidates implicate victim and
    /// aggressor).
    pub fn suspect_nets(&self, cell: &CellNetlist) -> BTreeSet<TNetId> {
        let mut nets = BTreeSet::new();
        for c in &self.candidates {
            match c.location {
                SuspectLocation::Net(n) => {
                    nets.insert(n);
                }
                SuspectLocation::Transistor(t) => {
                    let tr = cell.transistor(t);
                    nets.insert(tr.gate);
                    nets.insert(tr.source);
                    nets.insert(tr.drain);
                }
            }
            if let Some(a) = c.aggressor {
                nets.insert(a);
            }
        }
        nets
    }

    /// All transistors any candidate implicates.
    pub fn suspect_transistors(&self) -> BTreeSet<TransistorId> {
        self.candidates
            .iter()
            .filter_map(|c| match c.location {
                SuspectLocation::Transistor(t) => Some(t),
                SuspectLocation::Net(_) => None,
            })
            .collect()
    }

    /// A printable multi-line summary using the cell's names.
    pub fn summary(&self, cell: &CellNetlist) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if self.is_empty() {
            let _ = writeln!(
                s,
                "no intra-cell candidate: defect is outside {}",
                cell.name()
            );
            return s;
        }
        if self.dynamic_only {
            let _ = writeln!(s, "lfp ∩ lpp ≠ ∅: dynamic faulty behaviour only");
        }
        for c in &self.candidates {
            let _ = writeln!(s, "  {}", c.description);
        }
        s
    }
}

/// Builds the bridging list of one pattern: every critical *net* of the
/// suspect list is a potential victim; every other non-rail net holding
/// the opposite value is a potential aggressor (paper eq. 2).
pub(crate) fn bridge_list_from(
    cell: &CellNetlist,
    suspects: &SuspectList,
    values: &icd_switch::NodeValues,
) -> BridgeSuspectList {
    let mut bsl = BridgeSuspectList::new();
    for (item, &victim_value) in suspects.iter() {
        let SuspectItem::Net(victim) = *item else {
            continue;
        };
        if !victim_value.is_known() {
            continue;
        }
        for aggressor in cell.nets() {
            if aggressor == victim || cell.is_rail(aggressor) {
                continue;
            }
            let av = values.value(aggressor);
            if av == !victim_value {
                bsl.insert(victim, aggressor, (victim_value, av));
            }
        }
    }
    bsl
}

fn allocate(
    cell: &CellNetlist,
    gsl: &SuspectList,
    gbsl: &BridgeSuspectList,
    gdsl: &DelaySuspectList,
) -> Vec<FaultCandidate> {
    let mut candidates = Vec::new();
    let mut seen: BTreeSet<(SuspectLocation, FaultModel, Option<TNetId>)> = BTreeSet::new();
    let mut push = |candidates: &mut Vec<FaultCandidate>,
                    location: SuspectLocation,
                    model: FaultModel,
                    aggressor: Option<TNetId>,
                    description: String| {
        if seen.insert((location, model, aggressor)) {
            candidates.push(FaultCandidate {
                location,
                model,
                aggressor,
                description,
            });
        }
    };

    for (item, &value) in gsl.iter() {
        let (model, tag) = match value {
            Lv::One => (FaultModel::StuckAt0, "Sa0"),
            Lv::Zero => (FaultModel::StuckAt1, "Sa1"),
            Lv::U => (FaultModel::StuckAtEither, "Sa0/Sa1"),
        };
        let location = match *item {
            SuspectItem::Net(n) => SuspectLocation::Net(n),
            SuspectItem::Terminal(t, _) => SuspectLocation::Transistor(t),
        };
        let description = format!("{} {tag}", item.display(cell));
        push(&mut candidates, location, model, None, description);
    }

    for (&(victim, aggressor), _) in gbsl.iter() {
        let description = format!(
            "{}-{} bridge ({} aggressor)",
            cell.net_name(victim),
            cell.net_name(aggressor),
            cell.net_name(aggressor),
        );
        push(
            &mut candidates,
            SuspectLocation::Net(victim),
            FaultModel::DominantBridge,
            Some(aggressor),
            description,
        );
    }

    for item in gdsl.iter() {
        let location = match *item {
            SuspectItem::Net(n) => SuspectLocation::Net(n),
            SuspectItem::Terminal(t, _) => SuspectLocation::Transistor(t),
        };
        let name = match *item {
            SuspectItem::Net(_) => item.display(cell),
            SuspectItem::Terminal(t, _) => cell.transistor(t).name.clone(),
        };
        push(
            &mut candidates,
            location,
            FaultModel::SlowTransition,
            None,
            format!("{name} delay"),
        );
    }

    candidates
}

/// The intra-cell diagnosis procedure of the paper's Fig. 9.
///
/// `lfp` are the local failing patterns of the suspected cell, `lpp` its
/// local passing patterns (both produced by the DUT-simulation step; see
/// the `icd-intercell` crate). Returns the surviving suspect lists with
/// allocated fault models.
///
/// # Errors
///
/// Returns [`CoreError::NoFailingPatterns`] for an empty `lfp`,
/// [`CoreError::WrongLocalWidth`] for malformed vectors, and switch-level
/// errors from the underlying simulations.
pub fn diagnose(
    cell: &CellNetlist,
    lfp: &[LocalTest],
    lpp: &[LocalTest],
) -> Result<DiagnosisReport, CoreError> {
    diagnose_with_cache(cell, lfp, lpp, None)
}

/// [`diagnose`] with an optional shared [`AnalysisCache`]: critical path
/// traces are served per (cell type, vector) instead of being re-derived
/// per suspected gate. The result is identical to the uncached call.
///
/// # Errors
///
/// Same as [`diagnose`].
pub fn diagnose_with_cache(
    cell: &CellNetlist,
    lfp: &[LocalTest],
    lpp: &[LocalTest],
    cache: Option<&AnalysisCache>,
) -> Result<DiagnosisReport, CoreError> {
    if lfp.is_empty() {
        return Err(CoreError::NoFailingPatterns);
    }
    let trace = |inputs: &[Lv]| -> Result<std::sync::Arc<CptOutcome>, CoreError> {
        match cache {
            Some(c) => c.cpt(cell, inputs),
            None => Ok(std::sync::Arc::new(transistor_cpt(cell, inputs)?)),
        }
    };

    // Definition 3: a local vector both failing and passing discards the
    // static models.
    let passing_vectors: BTreeSet<&[bool]> = lpp.iter().map(|t| t.inputs.as_slice()).collect();
    let dynamic_only = lfp
        .iter()
        .any(|t| passing_vectors.contains(t.inputs.as_slice()));

    // Block 1: per failing pattern, build and intersect the current lists.
    let mut gsl: Option<SuspectList> = None;
    let mut gbsl: Option<BridgeSuspectList> = None;
    let mut gdsl: Option<DelaySuspectList> = None;
    for fp in lfp {
        let outcome = trace(&fp.inputs_lv())?;
        let csl = outcome.suspects.clone();
        let cbsl = bridge_list_from(cell, &outcome.suspects, &outcome.values);
        let cdsl = delay_suspects_from(cell, &fp.previous_lv(), &outcome)?;
        gsl = Some(match gsl {
            None => csl,
            Some(g) => g.intersect(&csl),
        });
        gbsl = Some(match gbsl {
            None => cbsl,
            Some(g) => g.intersect(&cbsl),
        });
        gdsl = Some(match gdsl {
            None => cdsl,
            Some(g) => g.intersect(&cdsl),
        });
    }
    // lfp was checked non-empty, so all three lists were initialized; the
    // graceful fallback keeps the diagnosis path panic-free regardless.
    let (Some(mut gsl), Some(mut gbsl), Some(gdsl)) = (gsl, gbsl, gdsl) else {
        return Err(CoreError::NoFailingPatterns);
    };

    if dynamic_only {
        gsl = SuspectList::new();
        gbsl = BridgeSuspectList::new();
    } else {
        // Block 2: vindication by the passing patterns (GSL and GBSL only;
        // passing patterns cannot exonerate delay faults).
        for pp in lpp {
            let outcome = trace(&pp.inputs_lv())?;
            let vl = outcome.suspects.clone();
            let bvl = bridge_list_from(cell, &outcome.suspects, &outcome.values);
            gsl = gsl.subtract(&vl);
            gbsl = gbsl.subtract(&bvl);
        }
    }

    Ok(finish_report(cell, gsl, gbsl, gdsl, dynamic_only))
}

/// Allocates fault models and assembles the report — shared by
/// [`diagnose`] and the traced variant.
pub(crate) fn finish_report(
    cell: &CellNetlist,
    gsl: SuspectList,
    gbsl: BridgeSuspectList,
    gdsl: DelaySuspectList,
    dynamic_only: bool,
) -> DiagnosisReport {
    let candidates = allocate(cell, &gsl, &gbsl, &gdsl);
    DiagnosisReport {
        gsl,
        gbsl,
        gdsl,
        dynamic_only,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_cells::CellLibrary;
    use icd_defects::{characterize, Defect};
    use icd_faultsim::FaultyBehavior;
    use icd_switch::Terminal;

    /// Derives exhaustive local failing/passing patterns for a static
    /// faulty behaviour at cell level (every input combo is "observable"
    /// because the cell output is observed directly).
    fn local_patterns_static(
        cell: &CellNetlist,
        behavior: &FaultyBehavior,
    ) -> (Vec<LocalTest>, Vec<LocalTest>) {
        let good = cell.truth_table().unwrap();
        let n = cell.num_inputs();
        let mut lfp = Vec::new();
        let mut lpp = Vec::new();
        for combo in 0..(1usize << n) {
            let bits: Vec<bool> = (0..n).map(|k| (combo >> k) & 1 == 1).collect();
            let good_out = good.eval_bits(&bits);
            let faulty_out = behavior.eval(&bits, &bits, good_out);
            if faulty_out.conflicts_with(good_out) {
                lfp.push(LocalTest::static_vector(bits));
            } else {
                lpp.push(LocalTest::static_vector(bits));
            }
        }
        (lfp, lpp)
    }

    #[test]
    fn stuck_short_is_located_with_correct_polarity() {
        // Silicon-case-H2 style: the input-A net hard-shorted to GND on
        // AO7SVTX1 behaves as A stuck-at-0.
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        assert!(!lfp.is_empty());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        // The defective net must be in the suspects, allocated as SA0
        // (its fault-free traced value was 1 in every failure).
        assert!(
            report
                .candidates
                .iter()
                .any(|c| c.location == SuspectLocation::Net(a) && c.model == FaultModel::StuckAt0),
            "A Sa0 not found in: {}",
            report.summary(cell)
        );
        // The paper's Table-2 equivalence: the pull-up node N16 (which
        // tracks !A) is reported as the equivalent N16 Sa1.
        let n16 = cell.find_net("N16").unwrap();
        assert!(
            report
                .candidates
                .iter()
                .any(|c| c.location == SuspectLocation::Net(n16)
                    && c.model == FaultModel::StuckAt1),
            "equivalent N16 Sa1 not found in: {}",
            report.summary(cell)
        );
    }

    #[test]
    fn bridge_defect_keeps_victim_aggressor_couple() {
        // Table-3 style: Z bridged to A (A dominates).
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let z = cell.output();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(z, a)).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        assert!(
            report.gbsl.contains(z, a),
            "Z-A couple missing: {}",
            report.summary(cell)
        );
    }

    #[test]
    fn delay_defect_yields_dynamic_only_verdict() {
        // Table-4 style: resistive open at a transistor, exercised with a
        // transition that fails and the same vector passing when stable.
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7NHVTX1").unwrap().netlist();
        let n2 = cell.find_transistor("N2").unwrap();
        let ch = characterize(cell, &Defect::resistive_open(n2, Terminal::Drain)).unwrap();
        let FaultyBehavior::Delay(table) = ch.behavior.unwrap() else {
            panic!("expected delay behaviour");
        };
        let good = cell.truth_table().unwrap();
        let n = cell.num_inputs();
        let mut lfp = Vec::new();
        let mut lpp = Vec::new();
        for prev in 0..(1usize << n) {
            for cur in 0..(1usize << n) {
                let pb: Vec<bool> = (0..n).map(|k| (prev >> k) & 1 == 1).collect();
                let cb: Vec<bool> = (0..n).map(|k| (cur >> k) & 1 == 1).collect();
                let raw = table.eval(&pb, &cb);
                // A floating late output retains the previous value
                // (charge storage) — the same semantics the gate-level
                // tester model applies.
                let late = if raw == Lv::U {
                    good.eval_bits(&pb)
                } else {
                    raw
                };
                let settled = good.eval_bits(&cb);
                if late.conflicts_with(settled) {
                    lfp.push(LocalTest::two_pattern(pb, cb));
                } else {
                    lpp.push(LocalTest::two_pattern(pb, cb));
                }
            }
        }
        assert!(!lfp.is_empty(), "delay defect never observed");
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        assert!(report.dynamic_only, "same vector fails and passes");
        assert!(report.gsl.is_empty() && report.gbsl.is_empty());
        assert!(!report.gdsl.is_empty());
        // The defective transistor is implicated.
        assert!(
            report.suspect_transistors().contains(&n2)
                || report
                    .suspect_nets(cell)
                    .contains(&cell.transistor(n2).drain),
            "N2 not implicated: {}",
            report.summary(cell)
        );
    }

    #[test]
    fn inconsistent_failures_empty_the_static_lists() {
        // Failing patterns whose critical values disagree on every net
        // (e.g. claiming the inverter both stuck high and low) leave no
        // static suspect.
        let cells = CellLibrary::standard();
        let cell = cells.get("INVHVTX1").unwrap().netlist();
        let lfp = vec![
            LocalTest::static_vector(vec![false]),
            LocalTest::static_vector(vec![true]),
        ];
        let report = diagnose(cell, &lfp, &[]).unwrap();
        // A and Z are traced with opposite values in the two failures.
        assert!(report.gsl.is_empty());
    }

    #[test]
    fn no_failing_patterns_is_an_error() {
        let cells = CellLibrary::standard();
        let cell = cells.get("INVHVTX1").unwrap().netlist();
        assert!(matches!(
            diagnose(cell, &[], &[]),
            Err(CoreError::NoFailingPatterns)
        ));
    }

    #[test]
    fn vindication_shrinks_the_suspect_list() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let without = diagnose(cell, &lfp, &[]).unwrap();
        let with = diagnose(cell, &lfp, &lpp).unwrap();
        assert!(with.gsl.len() <= without.gsl.len());
        assert!(with.resolution() <= without.resolution());
    }

    #[test]
    fn resolution_counts_distinct_locations() {
        let cells = CellLibrary::standard();
        let cell = cells.get("INVHVTX1").unwrap().netlist();
        let lfp = vec![LocalTest::static_vector(vec![true])];
        let report = diagnose(cell, &lfp, &[]).unwrap();
        assert_eq!(
            report.resolution(),
            report
                .candidates
                .iter()
                .map(|c| c.location)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
        assert!(report.resolution() >= 1);
    }
}
