//! Effect-cause intra-cell defect diagnosis by Critical Path Tracing at
//! transistor level.
//!
//! This crate implements the contribution of *"Intra-Cell Defects
//! Diagnosis"* (Sun, Bosio, Dilillo, Girard, Pravossoudovitch, Virazel,
//! Auvray — Journal of Electronic Testing 30(5), 2014): given one suspected
//! standard cell (from a gate-level diagnosis front end) and its local
//! failing/passing patterns (from DUT simulation), locate the root cause of
//! the observed failures *inside* the cell — with no defect dictionary, no
//! fault dictionary and no netlist transformation.
//!
//! The flow (paper Fig. 9):
//!
//! 1. For every local failing pattern, a fault-free switch-level simulation
//!    assigns every cell net a value, then [`transistor_cpt`] traces the
//!    critical nets and transistor terminals back from the cell output.
//!    The critical items form the Current Suspect List; bridging couples
//!    (critical victim × opposite-valued aggressor nets) form the Current
//!    Bridging Suspect List; critical items that transition between the
//!    previous and current vector form the Current Delay Suspect List.
//! 2. Under the single-defect assumption the current lists are intersected
//!    across failing patterns (eqs. 4–6, with the Fig.-10 value lattice)
//!    into the Global Suspect / Bridging / Delay lists.
//! 3. Every local passing pattern *vindicates*: its critical items are
//!    subtracted from GSL/GBSL (eqs. 7–8). GDSL is never vindicated —
//!    a passing pattern cannot exonerate a delay fault.
//! 4. Fault-model allocation maps each surviving suspect to stuck-at /
//!    dominant-bridging / delay fault models ([`DiagnosisReport`]).
//!
//! An empty report means the defect is *not* inside the analyzed cell
//! (the paper's circuit-C silicon case), which redirects physical failure
//! analysis to the surrounding interconnect.
//!
//! # Example
//!
//! ```
//! use icd_cells::CellLibrary;
//! use icd_core::{diagnose, LocalTest};
//!
//! let cells = CellLibrary::standard();
//! let cell = cells.get("AO7SVTX1").expect("exists").netlist();
//! // Say the tester failed local vector A=1,B=0,C=0 and passed A=0,B=1,C=1.
//! let lfp = vec![LocalTest::static_vector(vec![true, false, false])];
//! let lpp = vec![LocalTest::static_vector(vec![false, true, true])];
//! let report = diagnose(cell, &lfp, &lpp)?;
//! assert!(!report.is_empty());
//! # Ok::<(), icd_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod cache;
mod cpt;
mod diagnose;
mod error;
mod rank;
mod suspect;
mod trace_report;

pub use cache::{AnalysisCache, CacheStats};
pub use cpt::{critical_oracle, delay_suspects, delay_suspects_from, transistor_cpt, CptOutcome};
pub use diagnose::{
    diagnose, diagnose_with_cache, DiagnosisReport, FaultCandidate, FaultModel, LocalTest,
    SuspectLocation,
};
pub use error::CoreError;
pub use rank::{rank_candidates, rank_candidates_with_cache, RankedCandidate, RankedDiagnosis};
pub use suspect::{BridgeSuspectList, DelaySuspectList, SuspectItem, SuspectList};
pub use trace_report::{diagnose_traced, DiagnosisTrace, TraceStep};
