//! Shared, thread-safe memoization of per-cell-type diagnosis artifacts.
//!
//! Intra-cell diagnosis re-derives two expensive, *defect-independent*
//! artifacts for every suspected gate: the cell's exhaustive switch-level
//! truth table and, per local vector, the critical-path-tracing outcome
//! ([`transistor_cpt`]). Both depend only on the cell **type** and the
//! applied vector — never on the gate instance — so a batch engine that
//! analyzes hundreds of suspects of a handful of cell types can populate
//! them once and share them across worker threads.
//!
//! The cache is safe to share by `&` reference (all interior mutability is
//! shard-guarded), cheap when cold (failures are returned, not cached) and
//! strictly transparent: a cached outcome is the same value the uncached
//! call would produce, so diagnosis results are byte-identical with and
//! without a cache.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use icd_logic::{Lv, PackedEval, TruthTable};
use icd_switch::{CellNetlist, TruthTableCache};

use crate::{transistor_cpt, CoreError, CptOutcome};

/// Number of CPT shards; keyed by (cell, vector) the key space is much
/// larger than the cell count, so use more shards than the table cache.
const CPT_SHARDS: usize = 16;

type CptShard = Mutex<HashMap<(String, Vec<Lv>), Arc<CptOutcome>>>;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Counters of one cache family, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: usize,
    /// Lookups that had to compute.
    pub misses: usize,
}

impl CacheStats {
    /// Fraction of lookups served from memory (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe cache of per-cell-type truth tables and per-(cell,
/// vector) critical-path-tracing outcomes.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    tables: TruthTableCache,
    cpt: Vec<CptShard>,
    cpt_hits: AtomicUsize,
    cpt_misses: AtomicUsize,
    packed: Mutex<HashMap<String, Arc<PackedEval>>>,
    packed_hits: AtomicUsize,
    packed_misses: AtomicUsize,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache {
            tables: TruthTableCache::new(),
            cpt: (0..CPT_SHARDS).map(|_| Mutex::default()).collect(),
            cpt_hits: AtomicUsize::new(0),
            cpt_misses: AtomicUsize::new(0),
            packed: Mutex::default(),
            packed_hits: AtomicUsize::new(0),
            packed_misses: AtomicUsize::new(0),
        }
    }

    /// The cell's exhaustive truth table, derived once per cell type.
    ///
    /// # Errors
    ///
    /// Propagates the switch-level derivation error; failures are not
    /// cached.
    pub fn truth_table(&self, cell: &CellNetlist) -> Result<Arc<TruthTable>, CoreError> {
        Ok(self.tables.truth_table(cell)?)
    }

    /// The CPT outcome of `inputs` on `cell`, traced once per (cell type,
    /// vector) pair.
    ///
    /// # Errors
    ///
    /// Propagates [`transistor_cpt`]'s errors; failures are not cached.
    pub fn cpt(&self, cell: &CellNetlist, inputs: &[Lv]) -> Result<Arc<CptOutcome>, CoreError> {
        let mut h = DefaultHasher::new();
        cell.name().hash(&mut h);
        inputs.hash(&mut h);
        let shard = &self.cpt[(h.finish() as usize) % self.cpt.len()];
        let key = (cell.name().to_owned(), inputs.to_vec());
        if let Some(o) = lock(shard).get(&key) {
            self.cpt_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(o));
        }
        // Trace outside the lock; a concurrent duplicate trace of the same
        // (deterministic) outcome is cheaper than serializing the shard.
        self.cpt_misses.fetch_add(1, Ordering::Relaxed);
        let outcome = Arc::new(transistor_cpt(cell, inputs)?);
        lock(shard).insert(key, Arc::clone(&outcome));
        Ok(outcome)
    }

    /// The cell's [`PackedEval`] bit-parallel evaluator, compiled once
    /// per cell type from the (also cached) exhaustive truth table.
    ///
    /// # Errors
    ///
    /// Propagates the switch-level truth-table derivation error; failures
    /// are not cached.
    pub fn packed_eval(&self, cell: &CellNetlist) -> Result<Arc<PackedEval>, CoreError> {
        if let Some(e) = lock(&self.packed).get(cell.name()) {
            self.packed_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(e));
        }
        // Compile outside the lock; a concurrent duplicate compile of the
        // same (deterministic) evaluator is cheaper than serializing.
        self.packed_misses.fetch_add(1, Ordering::Relaxed);
        let table = self.truth_table(cell)?;
        let eval = Arc::new(PackedEval::from_table(&table));
        lock(&self.packed)
            .entry(cell.name().to_owned())
            .or_insert_with(|| Arc::clone(&eval));
        Ok(eval)
    }

    /// Seeds the truth-table cache with an already-derived table (a
    /// snapshot restore — see `icd-volume`'s on-disk snapshot format).
    /// Preloads count as neither hit nor miss, so a warm run whose cells
    /// were all preloaded reports zero table misses.
    pub fn preload_table(&self, name: &str, table: Arc<TruthTable>) {
        self.tables.preload(name, table);
    }

    /// Every cached `(cell name, truth table)` pair, sorted by name —
    /// what a snapshot writer persists.
    pub fn table_snapshot(&self) -> Vec<(String, Arc<TruthTable>)> {
        self.tables.snapshot()
    }

    /// Truth-table cache counters.
    pub fn table_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.tables.hits(),
            misses: self.tables.misses(),
        }
    }

    /// CPT cache counters.
    pub fn cpt_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cpt_hits.load(Ordering::Relaxed),
            misses: self.cpt_misses.load(Ordering::Relaxed),
        }
    }

    /// Packed-evaluator cache counters.
    pub fn packed_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.packed_hits.load(Ordering::Relaxed),
            misses: self.packed_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached CPT outcomes.
    pub fn cpt_len(&self) -> usize {
        self.cpt.iter().map(|s| lock(s).len()).sum()
    }

    /// Records both cache families' counters into the installed
    /// [`icd_obs`] collector (no-op when none is): truth tables as
    /// `cache.table.*` (via [`TruthTableCache::observe`]), CPT traces as
    /// `cache.cpt.*`. Lookup totals are scheduling-stable; hit/miss
    /// splits are timing-class (cold-key races).
    pub fn observe(&self) {
        self.tables.observe();
        let cpt = self.cpt_stats();
        icd_obs::counter(
            "cache.cpt.lookups",
            (cpt.hits + cpt.misses) as u64,
            icd_obs::Stability::Stable,
        );
        icd_obs::counter(
            "cache.cpt.hits",
            cpt.hits as u64,
            icd_obs::Stability::Timing,
        );
        icd_obs::counter(
            "cache.cpt.misses",
            cpt.misses as u64,
            icd_obs::Stability::Timing,
        );
        let packed = self.packed_stats();
        icd_obs::counter(
            "cache.packed.lookups",
            (packed.hits + packed.misses) as u64,
            icd_obs::Stability::Stable,
        );
        icd_obs::counter(
            "cache.packed.hits",
            packed.hits as u64,
            icd_obs::Stability::Timing,
        );
        icd_obs::counter(
            "cache.packed.misses",
            packed.misses as u64,
            icd_obs::Stability::Timing,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_cells::CellLibrary;

    #[test]
    fn cpt_cache_is_transparent() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let cache = AnalysisCache::new();
        let inputs = vec![Lv::One, Lv::Zero, Lv::Zero];
        let cached = cache.cpt(cell, &inputs).unwrap();
        let direct = transistor_cpt(cell, &inputs).unwrap();
        assert_eq!(cached.suspects, direct.suspects);
        assert_eq!(cached.trace, direct.trace);
        // Second lookup is a hit on the same allocation.
        let again = cache.cpt(cell, &inputs).unwrap();
        assert!(Arc::ptr_eq(&cached, &again));
        assert_eq!(cache.cpt_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.cpt_len(), 1);
    }

    #[test]
    fn cpt_errors_are_not_cached() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let cache = AnalysisCache::new();
        assert!(cache.cpt(cell, &[Lv::One]).is_err());
        assert_eq!(cache.cpt_len(), 0);
    }

    #[test]
    fn observe_exports_hand_counted_cpt_counters() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let cache = AnalysisCache::new();
        let a = vec![Lv::One, Lv::Zero, Lv::Zero];
        let b = vec![Lv::Zero, Lv::One, Lv::One];
        // Hand-counted: misses on the two cold vectors, then 3 hits.
        cache.cpt(cell, &a).unwrap();
        cache.cpt(cell, &b).unwrap();
        for _ in 0..3 {
            cache.cpt(cell, &a).unwrap();
        }
        // One cold truth-table derivation and one hit.
        cache.truth_table(cell).unwrap();
        cache.truth_table(cell).unwrap();

        let collector = icd_obs::Collector::new();
        {
            let _active = collector.install_local();
            cache.observe();
        }
        let snap = collector.snapshot();
        assert_eq!(snap.counters["cache.cpt.lookups"].0, 5);
        assert_eq!(snap.counters["cache.cpt.hits"].0, 3);
        assert_eq!(snap.counters["cache.cpt.misses"].0, 2);
        assert_eq!(snap.counters["cache.table.lookups"].0, 2);
        assert_eq!(snap.counters["cache.table.hits"].0, 1);
        assert_eq!(snap.counters["cache.table.misses"].0, 1);
        // The lookup totals survive redaction; the splits do not.
        let redacted = snap.redacted();
        assert_eq!(redacted.counters["cache.cpt.lookups"].0, 5);
        assert_eq!(redacted.counters["cache.cpt.hits"].0, 0);
    }

    #[test]
    fn packed_eval_is_cached_and_transparent() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let cache = AnalysisCache::new();
        let eval = cache.packed_eval(cell).unwrap();
        // Same value a cold compile would produce.
        assert_eq!(*eval, PackedEval::from_table(&cell.truth_table().unwrap()));
        // Second lookup is a hit on the same allocation and does not
        // touch the truth-table cache again.
        let tables_before = cache.table_stats();
        let again = cache.packed_eval(cell).unwrap();
        assert!(Arc::ptr_eq(&eval, &again));
        assert_eq!(cache.table_stats(), tables_before);
        assert_eq!(cache.packed_stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn preloaded_tables_serve_without_a_miss() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let warm = AnalysisCache::new();
        warm.truth_table(cell).unwrap();
        let snapshot = warm.table_snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].0, "AO7SVTX1");

        let cold = AnalysisCache::new();
        for (name, table) in snapshot {
            cold.preload_table(&name, table);
        }
        let table = cold.truth_table(cell).unwrap();
        assert_eq!(*table, cell.truth_table().unwrap());
        assert_eq!(cold.table_stats(), CacheStats { hits: 1, misses: 0 });
        // The packed evaluator compiles from the preloaded table too —
        // still no table miss.
        cold.packed_eval(cell).unwrap();
        assert_eq!(cold.table_stats().misses, 0);
    }

    #[test]
    fn hit_rate_counts() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
