use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use icd_logic::Lv;
use icd_switch::{CellNetlist, TNetId, Terminal, TransistorId};

/// One suspect location inside the cell: a net or a transistor terminal —
/// exactly the granularity of the paper's suspect lists (`Net118`, `T5G`,
/// `N0S`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SuspectItem {
    /// An interconnection net (including cell inputs and the output).
    Net(TNetId),
    /// A transistor terminal.
    Terminal(TransistorId, Terminal),
}

impl SuspectItem {
    /// The paper-style display name of the item (`"Net118"`, `"T5G"`).
    pub fn display(&self, cell: &CellNetlist) -> String {
        match *self {
            SuspectItem::Net(n) => cell.net_name(n).to_owned(),
            SuspectItem::Terminal(t, term) => cell.terminal_name(t, term),
        }
    }

    /// The net the item lies on (gate terminals map to their gate net).
    pub fn net(&self, cell: &CellNetlist) -> TNetId {
        match *self {
            SuspectItem::Net(n) => n,
            SuspectItem::Terminal(t, term) => cell.transistor(t).terminal_net(term),
        }
    }
}

/// The Suspect List (eq. 1): critical items with the logic value they
/// carried when traced. Used both per-pattern (CSL) and globally (GSL),
/// and for the Vindicate List of passing patterns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SuspectList {
    entries: BTreeMap<SuspectItem, Lv>,
}

impl SuspectList {
    /// An empty list.
    pub fn new() -> Self {
        SuspectList::default()
    }

    /// Inserts an item with its traced value. A re-inserted item keeps the
    /// meet of the values.
    pub fn insert(&mut self, item: SuspectItem, value: Lv) {
        self.entries
            .entry(item)
            .and_modify(|v| *v = v.meet(value))
            .or_insert(value);
    }

    /// Number of suspects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored value of an item.
    pub fn value(&self, item: &SuspectItem) -> Option<Lv> {
        self.entries.get(item).copied()
    }

    /// Whether the item is present (any value).
    pub fn contains(&self, item: &SuspectItem) -> bool {
        self.entries.contains_key(item)
    }

    /// Iterates over `(item, value)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&SuspectItem, &Lv)> {
        self.entries.iter()
    }

    /// The intersection of eq. 4: an entry survives only when it appears
    /// in both lists *with the same logic value* — a net traced with
    /// different values cannot be a stuck-at site.
    #[must_use]
    pub fn intersect(&self, other: &SuspectList) -> SuspectList {
        let entries = self
            .entries
            .iter()
            .filter(|(item, value)| other.value(item) == Some(**value))
            .map(|(item, value)| (*item, *value))
            .collect();
        SuspectList { entries }
    }

    /// The difference of eq. 7: an entry is removed when the vindicate
    /// list contains the same `(item, value)` pair — under that passing
    /// pattern the hypothetical stuck-at would have produced a failure.
    #[must_use]
    pub fn subtract(&self, vindicate: &SuspectList) -> SuspectList {
        let entries = self
            .entries
            .iter()
            .filter(|(item, value)| vindicate.value(item) != Some(**value))
            .map(|(item, value)| (*item, *value))
            .collect();
        SuspectList { entries }
    }
}

impl FromIterator<(SuspectItem, Lv)> for SuspectList {
    fn from_iter<I: IntoIterator<Item = (SuspectItem, Lv)>>(iter: I) -> Self {
        let mut list = SuspectList::new();
        for (item, value) in iter {
            list.insert(item, value);
        }
        list
    }
}

/// The Bridging Suspect List (eq. 2): victim/aggressor net couples with
/// their traced values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BridgeSuspectList {
    entries: BTreeMap<(TNetId, TNetId), (Lv, Lv)>,
}

impl BridgeSuspectList {
    /// An empty list.
    pub fn new() -> Self {
        BridgeSuspectList::default()
    }

    /// Inserts a victim/aggressor couple with the values they carried.
    pub fn insert(&mut self, victim: TNetId, aggressor: TNetId, values: (Lv, Lv)) {
        self.entries
            .entry((victim, aggressor))
            .and_modify(|(v, a)| {
                *v = v.meet(values.0);
                *a = a.meet(values.1);
            })
            .or_insert(values);
    }

    /// Number of couples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the couple is present.
    pub fn contains(&self, victim: TNetId, aggressor: TNetId) -> bool {
        self.entries.contains_key(&(victim, aggressor))
    }

    /// Iterates over `((victim, aggressor), (victim value, aggressor
    /// value))`.
    pub fn iter(&self) -> impl Iterator<Item = (&(TNetId, TNetId), &(Lv, Lv))> {
        self.entries.iter()
    }

    /// The intersection of eq. 5: couples survive when both lists name the
    /// same victim/aggressor nets; the values merge with the Fig.-10
    /// lattice (`0 ∩ 1 = U`, the strong-dominant-bridging case the paper
    /// keeps).
    #[must_use]
    pub fn intersect(&self, other: &BridgeSuspectList) -> BridgeSuspectList {
        let entries = self
            .entries
            .iter()
            .filter_map(|(key, (v, a))| {
                other
                    .entries
                    .get(key)
                    .map(|(ov, oa)| (*key, (v.meet(*ov), a.meet(*oa))))
            })
            .collect();
        BridgeSuspectList { entries }
    }

    /// The difference of eq. 8: a couple is removed when the bridging
    /// vindicate list names the same victim/aggressor nets — a dominant
    /// bridge is active whenever the two nets carry opposite values, so any
    /// vindicating occurrence exonerates the couple.
    #[must_use]
    pub fn subtract(&self, vindicate: &BridgeSuspectList) -> BridgeSuspectList {
        let entries = self
            .entries
            .iter()
            .filter(|(key, _)| !vindicate.entries.contains_key(*key))
            .map(|(key, values)| (*key, *values))
            .collect();
        BridgeSuspectList { entries }
    }
}

/// The Delay Suspect List (eq. 3): critical delay items, without logic
/// values (slow-to-rise and slow-to-fall are deliberately not
/// distinguished).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DelaySuspectList {
    entries: BTreeSet<SuspectItem>,
}

impl DelaySuspectList {
    /// An empty list.
    pub fn new() -> Self {
        DelaySuspectList::default()
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: SuspectItem) {
        self.entries.insert(item);
    }

    /// Number of suspects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the item is present.
    pub fn contains(&self, item: &SuspectItem) -> bool {
        self.entries.contains(item)
    }

    /// Iterates over the items in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = &SuspectItem> {
        self.entries.iter()
    }

    /// The intersection of eq. 6: plain set intersection.
    #[must_use]
    pub fn intersect(&self, other: &DelaySuspectList) -> DelaySuspectList {
        DelaySuspectList {
            entries: self.entries.intersection(&other.entries).copied().collect(),
        }
    }
}

impl FromIterator<SuspectItem> for DelaySuspectList {
    fn from_iter<I: IntoIterator<Item = SuspectItem>>(iter: I) -> Self {
        DelaySuspectList {
            entries: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for SuspectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuspectItem::Net(n) => write!(f, "net({n})"),
            SuspectItem::Terminal(t, term) => write!(f, "terminal({t}{term})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(i: u32) -> SuspectItem {
        // Construct TNetId through a tiny throwaway cell.
        let mut b = icd_switch::CellNetlistBuilder::new("t");
        let mut last = b.input("A");
        for k in 0..=i {
            last = b.net(&format!("n{k}"));
        }
        let z = b.output("Z");
        b.nmos("N0", last, b.gnd(), z);
        let _ = z;
        SuspectItem::Net(last)
    }

    #[test]
    fn sl_intersection_requires_equal_values() {
        let a: SuspectList = [(net(0), Lv::One), (net(1), Lv::Zero)]
            .into_iter()
            .collect();
        let b: SuspectList = [(net(0), Lv::One), (net(1), Lv::One)].into_iter().collect();
        let i = a.intersect(&b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.value(&net(0)), Some(Lv::One));
    }

    #[test]
    fn sl_subtract_requires_equal_values() {
        let a: SuspectList = [(net(0), Lv::One), (net(1), Lv::Zero)]
            .into_iter()
            .collect();
        let v: SuspectList = [(net(0), Lv::One), (net(1), Lv::One)].into_iter().collect();
        let d = a.subtract(&v);
        // net0 vindicated (same value); net1 kept (different value).
        assert_eq!(d.len(), 1);
        assert!(d.contains(&net(1)));
    }

    #[test]
    fn sl_reinsert_meets_values() {
        let mut l = SuspectList::new();
        l.insert(net(0), Lv::One);
        l.insert(net(0), Lv::Zero);
        assert_eq!(l.value(&net(0)), Some(Lv::U));
    }

    #[test]
    fn bsl_intersection_keeps_conflicting_values_as_u() {
        let n0 = match net(0) {
            SuspectItem::Net(n) => n,
            _ => unreachable!(),
        };
        let n1 = match net(1) {
            SuspectItem::Net(n) => n,
            _ => unreachable!(),
        };
        let mut a = BridgeSuspectList::new();
        a.insert(n0, n1, (Lv::One, Lv::Zero));
        let mut b = BridgeSuspectList::new();
        b.insert(n0, n1, (Lv::Zero, Lv::One));
        let i = a.intersect(&b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.iter().next().unwrap().1, &(Lv::U, Lv::U));
    }

    #[test]
    fn bsl_subtract_ignores_values() {
        let n0 = match net(0) {
            SuspectItem::Net(n) => n,
            _ => unreachable!(),
        };
        let n1 = match net(1) {
            SuspectItem::Net(n) => n,
            _ => unreachable!(),
        };
        let mut a = BridgeSuspectList::new();
        a.insert(n0, n1, (Lv::One, Lv::Zero));
        let mut v = BridgeSuspectList::new();
        v.insert(n0, n1, (Lv::Zero, Lv::One));
        assert!(a.subtract(&v).is_empty());
    }

    #[test]
    fn dsl_set_semantics() {
        let a: DelaySuspectList = [net(0), net(1)].into_iter().collect();
        let b: DelaySuspectList = [net(1), net(2)].into_iter().collect();
        let i = a.intersect(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(&net(1)));
    }
}
