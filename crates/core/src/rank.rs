//! Simulation-based candidate ranking — the resolution improvement the
//! paper leaves as future work ("how to improve the achieved diagnosis
//! resolution", §5).
//!
//! Critical path tracing over-approximates: every net on a sensitized
//! path of every failing pattern survives as a suspect, even when its
//! fault model would also have corrupted patterns that passed, or would
//! fail to corrupt some patterns that failed. Each allocated candidate is
//! a concrete, *simulatable* fault model, so the suspect list itself can
//! be validated: inject each candidate into the switch-level netlist and
//! compare its predicted pass/fail behaviour with the observed local
//! patterns.
//!
//! This is a micro-dictionary built over the *suspects only* —
//! `O(|candidates| · |patterns|)` simulations, still far below the
//! `O(n²)` of a full dictionary — and it strictly refines the report: a
//! [`RankedCandidate`] that explains every failing pattern and
//! contradicts no passing pattern is *perfect*; the perfect subset is the
//! improved resolution.

use icd_logic::{Lv, PackedEval, PackedWord};
use icd_switch::{CellNetlist, Forcing, TNetId, TransistorId};

use crate::{CoreError, DiagnosisReport, FaultCandidate, FaultModel, LocalTest, SuspectLocation};

/// One candidate with its simulated evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedCandidate {
    /// The allocated candidate.
    pub candidate: FaultCandidate,
    /// Failing local patterns the candidate's model corrupts (out of
    /// `lfp.len()`).
    pub explains_failing: usize,
    /// Passing local patterns the candidate's model would *also* corrupt
    /// — contradictions (out of `lpp.len()`).
    pub contradicts_passing: usize,
}

impl RankedCandidate {
    /// A perfect candidate explains every failure and contradicts no
    /// passing pattern.
    pub fn is_perfect(&self, num_lfp: usize) -> bool {
        self.explains_failing == num_lfp && self.contradicts_passing == 0
    }

    /// Failing patterns this candidate's model does *not* reproduce — the
    /// miss direction of the mismatch accounting (same convention as the
    /// inter-cell `GateCandidate`).
    pub fn misses(&self, num_lfp: usize) -> usize {
        num_lfp.saturating_sub(self.explains_failing)
    }

    /// Total mismatch (misses + contradicted passing patterns). A noisy
    /// local pattern set — derived from a truncated or spurious-fail
    /// datalog — makes even the true defect's model imperfect, so
    /// consumers should compare mismatch counts rather than demand zero.
    pub fn mismatches(&self, num_lfp: usize) -> usize {
        self.misses(num_lfp) + self.contradicts_passing
    }
}

/// A [`DiagnosisReport`] refined by candidate simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedDiagnosis {
    /// All candidates, best first (more failures explained, fewer
    /// contradictions, stable tie-break on the allocation order).
    pub candidates: Vec<RankedCandidate>,
    /// Number of local failing patterns the ranking was computed against.
    pub num_lfp: usize,
    /// Number of local passing patterns.
    pub num_lpp: usize,
}

impl RankedDiagnosis {
    /// The candidates whose models reproduce the observations exactly.
    pub fn perfect(&self) -> impl Iterator<Item = &RankedCandidate> {
        self.candidates
            .iter()
            .filter(|c| c.is_perfect(self.num_lfp))
    }

    /// Candidates whose total mismatch is at most `tolerance` — the
    /// noise-tolerant relaxation of [`RankedDiagnosis::perfect`]
    /// (`within_tolerance(0)` is exactly the perfect subset). Under
    /// datalog noise the true defect typically survives with a small
    /// nonzero mismatch while unrelated suspects accumulate large ones.
    pub fn within_tolerance(&self, tolerance: usize) -> impl Iterator<Item = &RankedCandidate> {
        let num_lfp = self.num_lfp;
        self.candidates
            .iter()
            .filter(move |c| c.mismatches(num_lfp) <= tolerance)
    }

    /// The improved resolution: distinct locations among perfect
    /// candidates, falling back to all candidates when none is perfect
    /// (the observed behaviour is then richer than any single allocated
    /// model — e.g. a multiple defect).
    pub fn ranked_resolution(&self) -> usize {
        let mut locations: std::collections::BTreeSet<SuspectLocation> =
            self.perfect().map(|c| c.candidate.location).collect();
        if locations.is_empty() {
            locations = self
                .candidates
                .iter()
                .map(|c| c.candidate.location)
                .collect();
        }
        locations.len()
    }
}

/// Predicted tester outcome of one candidate model on one local test.
///
/// `good_prev`/`good_cur` are the fault-free cell outputs under the
/// test's previous/current vector, precomputed once per test by
/// [`packed_good_outputs`] (they are candidate-independent), and
/// `prev_lv`/`cur_lv` are the test's vectors converted once per test by
/// the caller (they are candidate-independent too).
fn predicts_failure(
    cell: &CellNetlist,
    (good_prev, good_cur): (Lv, Lv),
    candidate: &FaultCandidate,
    prev_lv: &[Lv],
    cur_lv: &[Lv],
) -> Result<bool, CoreError> {
    let forced_static = |forcing: &Forcing| -> Result<bool, CoreError> {
        let vals = cell.solve(cur_lv, forcing)?;
        let out = vals.value(cell.output());
        let effective = if out == Lv::U {
            // A floating faulty output retains the previous faulty value,
            // approximated by the previous good value (tester semantics).
            // The previous-vector solve is only needed on this path, which
            // halves the switch-level solves for non-floating candidates.
            let prev_vals = cell.solve(prev_lv, forcing)?;
            match prev_vals.value(cell.output()) {
                Lv::U => good_prev,
                v => v,
            }
        } else {
            out
        };
        Ok(effective.conflicts_with(good_cur))
    };

    match candidate.model {
        FaultModel::StuckAt0 | FaultModel::StuckAt1 => {
            let value = Lv::from(candidate.model == FaultModel::StuckAt1);
            let forcing = stuck_forcing(cell, candidate.location, value);
            forced_static(&forcing)
        }
        FaultModel::StuckAtEither => {
            // Either polarity may explain: predict failure if both do —
            // conservative, since a single polarity will be checked by
            // its own candidate when the value was known.
            let f0 = forced_static(&stuck_forcing(cell, candidate.location, Lv::Zero))?;
            let f1 = forced_static(&stuck_forcing(cell, candidate.location, Lv::One))?;
            Ok(f0 && f1)
        }
        FaultModel::DominantBridge => {
            let SuspectLocation::Net(victim) = candidate.location else {
                return Ok(false);
            };
            let Some(aggressor) = candidate.aggressor else {
                return Ok(false);
            };
            forced_static(&Forcing::none().bridge(victim, aggressor))
        }
        FaultModel::SlowTransition => {
            let (slow_nets, slow_transistors): (Vec<TNetId>, Vec<TransistorId>) =
                match candidate.location {
                    SuspectLocation::Net(n) => (vec![n], vec![]),
                    SuspectLocation::Transistor(t) => (vec![], vec![t]),
                };
            let outcome = cell.solve_two_pattern(
                prev_lv,
                cur_lv,
                &Forcing::none(),
                &slow_nets,
                &slow_transistors,
            )?;
            let late = match outcome.capture_late.value(cell.output()) {
                Lv::U => good_prev,
                v => v,
            };
            Ok(late.conflicts_with(good_cur))
        }
    }
}

/// The fault-free `(previous, current)` cell outputs of every local test,
/// evaluated 64 tests per machine word on the shared
/// [`icd_logic::packed`] kernel.
///
/// Every test width must already be validated against the evaluator's
/// arity. For fully specified lanes the packed result is exactly the
/// table entry [`icd_logic::TruthTable::eval_bits`] would return, so the
/// ranking is byte-identical to the per-test scalar evaluation it
/// replaces.
fn packed_good_outputs(eval: &PackedEval, tests: &[LocalTest]) -> Vec<(Lv, Lv)> {
    let n = eval.inputs();
    let mut out = Vec::with_capacity(tests.len());
    let mut prev_ins: Vec<PackedWord> = Vec::with_capacity(n);
    let mut cur_ins: Vec<PackedWord> = Vec::with_capacity(n);
    let mut words = 0u64;
    for chunk in tests.chunks(64) {
        prev_ins.clear();
        cur_ins.clear();
        for pin in 0..n {
            let mut pv = 0u64;
            let mut cv = 0u64;
            for (lane, t) in chunk.iter().enumerate() {
                if t.previous[pin] {
                    pv |= 1u64 << lane;
                }
                if t.inputs[pin] {
                    cv |= 1u64 << lane;
                }
            }
            prev_ins.push(PackedWord::new(pv, !0));
            cur_ins.push(PackedWord::new(cv, !0));
        }
        let p = eval
            .eval_word(&prev_ins)
            .expect("local test width checked before packing");
        let c = eval
            .eval_word(&cur_ins)
            .expect("local test width checked before packing");
        words += 2;
        for lane in 0..chunk.len() {
            out.push((p.lane(lane), c.lane(lane)));
        }
    }
    icd_obs::counter("packed.words_simulated", words, icd_obs::Stability::Stable);
    out
}

fn stuck_forcing(cell: &CellNetlist, location: SuspectLocation, value: Lv) -> Forcing {
    match location {
        SuspectLocation::Net(n) => Forcing::none().pin(n, value),
        SuspectLocation::Transistor(t) => {
            // A stuck terminal of a transistor: model as the control stuck
            // (gate suspects) — the dominant terminal-level fault mode.
            let _ = cell;
            Forcing::none().override_gate(t, value)
        }
    }
}

/// Simulates every allocated candidate of `report` against the observed
/// local patterns and returns them ranked (see [`RankedDiagnosis`]).
///
/// # Errors
///
/// Returns switch-level errors from the candidate simulations.
pub fn rank_candidates(
    cell: &CellNetlist,
    report: &DiagnosisReport,
    lfp: &[LocalTest],
    lpp: &[LocalTest],
) -> Result<RankedDiagnosis, CoreError> {
    rank_candidates_with_cache(cell, report, lfp, lpp, None)
}

/// [`rank_candidates`] with an optional shared [`AnalysisCache`]: the
/// cell's good truth table and its packed evaluator are fetched once per
/// cell *type* instead of being re-derived per candidate × test, and the
/// fault-free outcome of every local test is evaluated bit-parallel up
/// front (it does not depend on the candidate). The ranking is identical
/// to the uncached call.
///
/// # Errors
///
/// Same as [`rank_candidates`]; additionally reports
/// [`CoreError::WrongLocalWidth`] for a malformed local test (instead of
/// panicking inside the per-candidate evaluation).
pub fn rank_candidates_with_cache(
    cell: &CellNetlist,
    report: &DiagnosisReport,
    lfp: &[LocalTest],
    lpp: &[LocalTest],
    cache: Option<&crate::AnalysisCache>,
) -> Result<RankedDiagnosis, CoreError> {
    let packed = match cache {
        Some(c) => c.packed_eval(cell)?,
        None => std::sync::Arc::new(PackedEval::from_table(&cell.truth_table()?)),
    };
    for t in lfp.iter().chain(lpp) {
        for width in [t.previous.len(), t.inputs.len()] {
            if width != packed.inputs() {
                return Err(CoreError::WrongLocalWidth {
                    expected: packed.inputs(),
                    got: width,
                });
            }
        }
    }
    let good_lfp = packed_good_outputs(&packed, lfp);
    let good_lpp = packed_good_outputs(&packed, lpp);
    // Ternary views of the test vectors, converted once per test instead
    // of once per candidate × test.
    let to_lv = |tests: &[LocalTest]| -> Vec<(Vec<Lv>, Vec<Lv>)> {
        tests
            .iter()
            .map(|t| {
                (
                    t.previous.iter().copied().map(Lv::from).collect(),
                    t.inputs.iter().copied().map(Lv::from).collect(),
                )
            })
            .collect()
    };
    let lfp_lv = to_lv(lfp);
    let lpp_lv = to_lv(lpp);
    let mut ranked = Vec::with_capacity(report.candidates.len());
    for candidate in &report.candidates {
        let mut explains = 0usize;
        for (&g, (prev_lv, cur_lv)) in good_lfp.iter().zip(&lfp_lv) {
            if predicts_failure(cell, g, candidate, prev_lv, cur_lv)? {
                explains += 1;
            }
        }
        let mut contradicts = 0usize;
        for (&g, (prev_lv, cur_lv)) in good_lpp.iter().zip(&lpp_lv) {
            if predicts_failure(cell, g, candidate, prev_lv, cur_lv)? {
                contradicts += 1;
            }
        }
        ranked.push(RankedCandidate {
            candidate: candidate.clone(),
            explains_failing: explains,
            contradicts_passing: contradicts,
        });
    }
    ranked.sort_by(|a, b| {
        b.explains_failing
            .cmp(&a.explains_failing)
            .then(a.contradicts_passing.cmp(&b.contradicts_passing))
    });
    Ok(RankedDiagnosis {
        candidates: ranked,
        num_lfp: lfp.len(),
        num_lpp: lpp.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose;
    use icd_cells::CellLibrary;
    use icd_defects::{characterize, Defect};

    fn local_patterns_static(
        cell: &CellNetlist,
        behavior: &icd_faultsim::FaultyBehavior,
    ) -> (Vec<LocalTest>, Vec<LocalTest>) {
        let good = cell.truth_table().unwrap();
        let n = cell.num_inputs();
        let mut lfp = Vec::new();
        let mut lpp = Vec::new();
        for combo in 0..(1usize << n) {
            let bits: Vec<bool> = (0..n).map(|k| (combo >> k) & 1 == 1).collect();
            let g = good.eval_bits(&bits);
            let f = behavior.eval(&bits, &bits, g);
            if f.conflicts_with(g) {
                lfp.push(LocalTest::static_vector(bits));
            } else {
                lpp.push(LocalTest::static_vector(bits));
            }
        }
        (lfp, lpp)
    }

    #[test]
    fn ranking_never_increases_resolution() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        let ranked = rank_candidates(cell, &report, &lfp, &lpp).unwrap();
        assert!(ranked.ranked_resolution() <= report.resolution());
    }

    #[test]
    fn true_defect_model_is_perfect_and_top_ranked() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        let ranked = rank_candidates(cell, &report, &lfp, &lpp).unwrap();
        // The "A stuck-at-0" candidate must be perfect.
        let perfect: Vec<_> = ranked.perfect().collect();
        assert!(
            perfect
                .iter()
                .any(|c| c.candidate.location == SuspectLocation::Net(a)
                    && c.candidate.model == FaultModel::StuckAt0),
            "A Sa0 not perfect: {:?}",
            perfect
        );
        // And the top-ranked candidate must be perfect too.
        let top = &ranked.candidates[0];
        assert!(top.is_perfect(ranked.num_lfp));
    }

    #[test]
    fn zero_tolerance_matches_the_perfect_subset() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        let ranked = rank_candidates(cell, &report, &lfp, &lpp).unwrap();
        let perfect: Vec<_> = ranked.perfect().collect();
        let zero_tol: Vec<_> = ranked.within_tolerance(0).collect();
        assert_eq!(perfect, zero_tol);
        // Relaxing the tolerance is monotone.
        assert!(ranked.within_tolerance(2).count() >= zero_tol.len());
        // Mismatch accounting is consistent.
        for c in &ranked.candidates {
            assert_eq!(
                c.mismatches(ranked.num_lfp),
                c.misses(ranked.num_lfp) + c.contradicts_passing
            );
        }
    }

    #[test]
    fn true_defect_survives_thinned_local_patterns() {
        // Drop some local failing patterns (the cell-level shadow of
        // datalog truncation): the true model keeps a zero mismatch while
        // still being judged against the full passing set.
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        assert!(lfp.len() >= 2);
        let thinned: Vec<LocalTest> = lfp.iter().take(1).cloned().collect();
        let report = diagnose(cell, &thinned, &lpp).unwrap();
        let ranked = rank_candidates(cell, &report, &thinned, &lpp).unwrap();
        assert!(
            ranked
                .within_tolerance(0)
                .any(|c| c.candidate.location == SuspectLocation::Net(a)),
            "true defect lost under thinning: {:?}",
            ranked.candidates
        );
    }

    #[test]
    fn path_equivalents_with_contradictions_are_demoted() {
        // An input-A-to-GND short on the AOI: the output-Z stuck-at
        // explains all failures but ALSO predicts failures on passing
        // patterns (Z is always observable) — it must rank below the
        // perfect candidates.
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        let ranked = rank_candidates(cell, &report, &lfp, &lpp).unwrap();
        let z = cell.output();
        let z_candidate = ranked.candidates.iter().find(|c| {
            c.candidate.location == SuspectLocation::Net(z)
                && matches!(
                    c.candidate.model,
                    FaultModel::StuckAt0 | FaultModel::StuckAt1
                )
        });
        // Either vindication already removed the Z stuck-at (it would
        // have failed a passing pattern), or ranking demotes it below the
        // perfect top candidate.
        let top = &ranked.candidates[0];
        assert!(top.is_perfect(ranked.num_lfp));
        if let Some(zc) = z_candidate {
            assert!(zc.contradicts_passing >= top.contradicts_passing);
        }
    }

    #[test]
    fn lazy_prev_solve_matches_the_eager_reference() {
        // The previous-vector solve is skipped when the current-vector
        // output is binary; this must not change any verdict relative to
        // the original always-solve-both evaluation.
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        let packed = PackedEval::from_table(&cell.truth_table().unwrap());
        let tests: Vec<LocalTest> = lfp.iter().chain(&lpp).cloned().collect();
        let good = packed_good_outputs(&packed, &tests);
        for candidate in report
            .candidates
            .iter()
            .filter(|c| matches!(c.model, FaultModel::StuckAt0 | FaultModel::StuckAt1))
        {
            let value = Lv::from(candidate.model == FaultModel::StuckAt1);
            let forcing = stuck_forcing(cell, candidate.location, value);
            for (t, &(gp, gc)) in tests.iter().zip(&good) {
                let prev_lv: Vec<Lv> = t.previous.iter().copied().map(Lv::from).collect();
                let cur_lv: Vec<Lv> = t.inputs.iter().copied().map(Lv::from).collect();
                // Eager reference: always solve both vectors.
                let out = cell.solve(&cur_lv, &forcing).unwrap().value(cell.output());
                let prev_out = match cell.solve(&prev_lv, &forcing).unwrap().value(cell.output()) {
                    Lv::U => gp,
                    v => v,
                };
                let eager = (if out == Lv::U { prev_out } else { out }).conflicts_with(gc);
                let lazy = predicts_failure(cell, (gp, gc), candidate, &prev_lv, &cur_lv).unwrap();
                assert_eq!(lazy, eager, "candidate {candidate:?} test {t:?}");
            }
        }
    }

    #[test]
    fn malformed_local_test_is_an_error_not_a_panic() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        // A truncated vector slipped into the passing set.
        let mut bad_lpp = lpp.clone();
        bad_lpp.push(LocalTest::static_vector(vec![true]));
        let err = rank_candidates(cell, &report, &lfp, &bad_lpp);
        assert!(matches!(
            err,
            Err(CoreError::WrongLocalWidth {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn cached_and_uncached_rankings_are_identical() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let a = cell.find_net("A").unwrap();
        let ch = characterize(cell, &Defect::hard_short(a, cell.gnd())).unwrap();
        let (lfp, lpp) = local_patterns_static(cell, &ch.behavior.unwrap());
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        let cache = crate::AnalysisCache::new();
        let cached = rank_candidates_with_cache(cell, &report, &lfp, &lpp, Some(&cache)).unwrap();
        let uncached = rank_candidates(cell, &report, &lfp, &lpp).unwrap();
        assert_eq!(cached, uncached);
        assert_eq!(cache.packed_stats().misses, 1);
    }

    #[test]
    fn delay_candidates_are_ranked_by_two_pattern_simulation() {
        use icd_switch::Terminal;
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7NHVTX1").unwrap().netlist();
        let n0 = cell.find_transistor("N0").unwrap();
        let ch = characterize(cell, &Defect::resistive_open(n0, Terminal::Source)).unwrap();
        let behavior = ch.behavior.unwrap();
        let good = cell.truth_table().unwrap();
        let n = cell.num_inputs();
        let mut lfp = Vec::new();
        let mut lpp = Vec::new();
        for prev in 0..(1usize << n) {
            for cur in 0..(1usize << n) {
                let pb: Vec<bool> = (0..n).map(|k| (prev >> k) & 1 == 1).collect();
                let cb: Vec<bool> = (0..n).map(|k| (cur >> k) & 1 == 1).collect();
                let pg = good.eval_bits(&pb);
                let raw = behavior.eval(&pb, &cb, pg);
                let eff = if raw == Lv::U { pg } else { raw };
                if eff.conflicts_with(good.eval_bits(&cb)) {
                    lfp.push(LocalTest::two_pattern(pb, cb));
                } else {
                    lpp.push(LocalTest::two_pattern(pb, cb));
                }
            }
        }
        let report = diagnose(cell, &lfp, &lpp).unwrap();
        assert!(report.dynamic_only);
        let ranked = rank_candidates(cell, &report, &lfp, &lpp).unwrap();
        // The true slow transistor must be a perfect candidate.
        assert!(
            ranked
                .perfect()
                .any(|c| c.candidate.location == SuspectLocation::Transistor(n0)),
            "N0 not perfect: {:?}",
            ranked.candidates
        );
        // Ranking strictly improves the resolution for this defect.
        assert!(ranked.ranked_resolution() < report.resolution());
    }
}
