//! Step-by-step diagnosis trace — the Fig.-9 procedure made visible.
//!
//! [`diagnose_traced`] runs exactly the same algorithm as
//! [`diagnose`](crate::diagnose) while recording how the global suspect
//! lists evolve after each failing-pattern intersection and each
//! passing-pattern vindication. The trace powers teaching output (see the
//! `cell_explorer` example) and regression tests on the procedure's
//! monotonicity.

use std::fmt;

use icd_switch::CellNetlist;

use crate::diagnose::bridge_list_from;
use crate::{
    delay_suspects, transistor_cpt, BridgeSuspectList, CoreError, DelaySuspectList,
    DiagnosisReport, LocalTest, SuspectList,
};

/// What one step of the procedure did to the global lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Which local pattern was processed (`inputs` as a 0/1 string).
    pub pattern: String,
    /// Whether it was a failing (intersection) or passing (vindication)
    /// step.
    pub failing: bool,
    /// GSL size after the step.
    pub gsl: usize,
    /// GBSL size after the step.
    pub gbsl: usize,
    /// GDSL size after the step.
    pub gdsl: usize,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> GSL {:>3}  GBSL {:>3}  GDSL {:>3}",
            if self.failing { "lfp" } else { "lpp" },
            self.pattern,
            self.gsl,
            self.gbsl,
            self.gdsl
        )
    }
}

/// The recorded evolution of the suspect lists.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiagnosisTrace {
    /// One entry per processed local pattern, in order.
    pub steps: Vec<TraceStep>,
}

impl fmt::Display for DiagnosisTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            writeln!(f, "{step}")?;
        }
        Ok(())
    }
}

fn pattern_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// [`diagnose`](crate::diagnose) with a step-by-step trace of the list
/// evolution.
///
/// # Errors
///
/// Same as [`diagnose`](crate::diagnose).
pub fn diagnose_traced(
    cell: &CellNetlist,
    lfp: &[LocalTest],
    lpp: &[LocalTest],
) -> Result<(DiagnosisReport, DiagnosisTrace), CoreError> {
    if lfp.is_empty() {
        return Err(CoreError::NoFailingPatterns);
    }
    let passing_vectors: std::collections::BTreeSet<&[bool]> =
        lpp.iter().map(|t| t.inputs.as_slice()).collect();
    let dynamic_only = lfp
        .iter()
        .any(|t| passing_vectors.contains(t.inputs.as_slice()));

    let mut trace = DiagnosisTrace::default();
    let mut gsl: Option<SuspectList> = None;
    let mut gbsl: Option<BridgeSuspectList> = None;
    let mut gdsl: Option<DelaySuspectList> = None;
    for fp in lfp {
        let inputs: Vec<_> = fp.inputs.iter().copied().map(icd_logic::Lv::from).collect();
        let previous: Vec<_> = fp
            .previous
            .iter()
            .copied()
            .map(icd_logic::Lv::from)
            .collect();
        let outcome = transistor_cpt(cell, &inputs)?;
        let cbsl = bridge_list_from(cell, &outcome.suspects, &outcome.values);
        let cdsl = delay_suspects(cell, &previous, &inputs)?;
        gsl = Some(match gsl {
            None => outcome.suspects.clone(),
            Some(g) => g.intersect(&outcome.suspects),
        });
        gbsl = Some(match gbsl {
            None => cbsl,
            Some(g) => g.intersect(&cbsl),
        });
        gdsl = Some(match gdsl {
            None => cdsl,
            Some(g) => g.intersect(&cdsl),
        });
        trace.steps.push(TraceStep {
            pattern: pattern_string(&fp.inputs),
            failing: true,
            gsl: gsl.as_ref().map_or(0, SuspectList::len),
            gbsl: gbsl.as_ref().map_or(0, BridgeSuspectList::len),
            gdsl: gdsl.as_ref().map_or(0, DelaySuspectList::len),
        });
    }
    let mut gsl = gsl.expect("lfp checked non-empty");
    let mut gbsl = gbsl.expect("lfp checked non-empty");
    let gdsl = gdsl.expect("lfp checked non-empty");

    if dynamic_only {
        gsl = SuspectList::new();
        gbsl = BridgeSuspectList::new();
    } else {
        for pp in lpp {
            let inputs: Vec<_> = pp.inputs.iter().copied().map(icd_logic::Lv::from).collect();
            let outcome = transistor_cpt(cell, &inputs)?;
            let bvl = bridge_list_from(cell, &outcome.suspects, &outcome.values);
            gsl = gsl.subtract(&outcome.suspects);
            gbsl = gbsl.subtract(&bvl);
            trace.steps.push(TraceStep {
                pattern: pattern_string(&pp.inputs),
                failing: false,
                gsl: gsl.len(),
                gbsl: gbsl.len(),
                gdsl: gdsl.len(),
            });
        }
    }

    let report = crate::diagnose::finish_report(cell, gsl, gbsl, gdsl, dynamic_only);
    Ok((report, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose;
    use icd_cells::CellLibrary;

    fn lfp_lpp() -> (Vec<LocalTest>, Vec<LocalTest>) {
        let lfp = vec![
            LocalTest::static_vector(vec![true, false, false]),
            LocalTest::static_vector(vec![true, true, false]),
        ];
        let lpp = vec![
            LocalTest::static_vector(vec![false, false, false]),
            LocalTest::static_vector(vec![false, true, true]),
        ];
        (lfp, lpp)
    }

    #[test]
    fn traced_diagnosis_matches_plain_diagnosis() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO7SVTX1").unwrap().netlist();
        let (lfp, lpp) = lfp_lpp();
        let plain = diagnose(cell, &lfp, &lpp).unwrap();
        let (traced, trace) = diagnose_traced(cell, &lfp, &lpp).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(trace.steps.len(), lfp.len() + lpp.len());
    }

    #[test]
    fn list_sizes_shrink_monotonically() {
        let cells = CellLibrary::standard();
        let cell = cells.get("AO8DHVTX1").unwrap().netlist();
        let lfp = vec![
            LocalTest::static_vector(vec![false, true, true, true]),
            LocalTest::static_vector(vec![true, true, true, true]),
        ];
        let lpp = vec![LocalTest::static_vector(vec![false, false, false, true])];
        let (_, trace) = diagnose_traced(cell, &lfp, &lpp).unwrap();
        for w in trace.steps.windows(2) {
            assert!(w[1].gsl <= w[0].gsl);
            assert!(w[1].gbsl <= w[0].gbsl);
            assert!(w[1].gdsl <= w[0].gdsl);
        }
    }

    #[test]
    fn display_is_line_per_step() {
        let cells = CellLibrary::standard();
        let cell = cells.get("INVHVTX1").unwrap().netlist();
        let (_, trace) = diagnose_traced(
            cell,
            &[LocalTest::static_vector(vec![true])],
            &[LocalTest::static_vector(vec![false])],
        )
        .unwrap();
        let text = trace.to_string();
        assert_eq!(text.lines().count(), trace.steps.len());
        assert!(text.contains("lfp 1"));
    }
}
