use std::collections::HashMap;

use icd_netlist::{GateType, Library};
use icd_switch::CellNetlist;

use crate::{aoi, basic, complex};

/// The twelve cells of the paper's Table 5 extensive experiment, in table
/// order.
pub const TABLE5_CELL_NAMES: [&str; 12] = [
    "AO7SVTX1",
    "AO7NHVTX1",
    "NR3ASVTX1",
    "AO6CHVTX4",
    "AO8DHVTX1",
    "AO5NHVTX1",
    "AO9SVTX1",
    "AN2BHVTX8",
    "MUX21HVTX6",
    "ND4ABCHVTX8",
    "EOHVTX6",
    "OR4ABCDHVTX4",
];

/// A standard cell: the transistor netlist plus the reference boolean
/// function it is supposed to implement.
///
/// The logic view handed to gate-level tools ([`StdCell::to_gate_type`]) is
/// *derived* from the transistor netlist by exhaustive switch-level
/// simulation, so the two abstraction levels cannot drift apart; the
/// reference function exists to validate the derivation in tests
/// ([`StdCell::assert_consistent`]).
#[derive(Debug, Clone)]
pub struct StdCell {
    netlist: CellNetlist,
    reference: fn(&[bool]) -> bool,
}

impl StdCell {
    pub(crate) fn new(netlist: CellNetlist, reference: fn(&[bool]) -> bool) -> Self {
        StdCell { netlist, reference }
    }

    /// The cell name.
    pub fn name(&self) -> &str {
        self.netlist.name()
    }

    /// The transistor netlist.
    pub fn netlist(&self) -> &CellNetlist {
        &self.netlist
    }

    /// The reference boolean function (inputs in pin order).
    pub fn reference_output(&self, bits: &[bool]) -> bool {
        (self.reference)(bits)
    }

    /// Derives the gate-level view by exhaustive switch-level simulation.
    ///
    /// # Panics
    ///
    /// Panics if the netlist cannot be evaluated — impossible for the
    /// built-in cells, which are validated by the test suite.
    pub fn to_gate_type(&self) -> GateType {
        let table = self
            .netlist
            .truth_table()
            .expect("built-in cells always evaluate");
        let input_names: Vec<String> = self
            .netlist
            .inputs()
            .iter()
            .map(|&n| self.netlist.net_name(n).to_owned())
            .collect();
        GateType::new(self.name(), input_names, table).expect("pin count matches table")
    }

    /// Asserts the switch-level truth table equals the reference function
    /// on every input combination.
    ///
    /// # Panics
    ///
    /// Panics (with the offending input vector) on any mismatch.
    pub fn assert_consistent(&self) {
        let table = self
            .netlist
            .truth_table()
            .expect("cell netlist must evaluate");
        let n = self.netlist.num_inputs();
        let mut bits = vec![false; n];
        for combo in 0..(1usize << n) {
            for (k, b) in bits.iter_mut().enumerate() {
                *b = (combo >> k) & 1 == 1;
            }
            let want = icd_logic::Lv::from((self.reference)(&bits));
            let got = table.eval_bits(&bits);
            assert_eq!(
                got,
                want,
                "cell {} disagrees with its reference on inputs {:?}",
                self.name(),
                bits
            );
        }
    }
}

/// The reconstructed standard-cell library.
///
/// ```
/// use icd_cells::{CellLibrary, TABLE5_CELL_NAMES};
///
/// let lib = CellLibrary::standard();
/// for name in TABLE5_CELL_NAMES {
///     assert!(lib.get(name).is_some(), "missing {name}");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    cells: Vec<StdCell>,
    by_name: HashMap<String, usize>,
}

impl CellLibrary {
    /// Builds the full standard library (22 cells).
    pub fn standard() -> Self {
        let cells = vec![
            basic::invhvtx1(),
            basic::bfhvtx2(),
            basic::nd2hvtx1(),
            basic::nr2hvtx1(),
            basic::nd3hvtx1(),
            basic::nd4hvtx1(),
            basic::nr4hvtx1(),
            aoi::aoi22hvtx2(),
            aoi::oai22hvtx1(),
            aoi::ao7svtx1(),
            aoi::ao7nhvtx1(),
            aoi::ao7hvtx1(),
            aoi::nr3asvtx1(),
            aoi::ao6chvtx4(),
            aoi::ao5nhvtx1(),
            aoi::ao8dhvtx1(),
            aoi::ao9svtx1(),
            complex::an2bhvtx8(),
            complex::mux21hvtx6(),
            complex::nd4abchvtx8(),
            complex::eohvtx6(),
            complex::or4abcdhvtx4(),
        ];
        let by_name = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name().to_owned(), i))
            .collect();
        CellLibrary { cells, by_name }
    }

    /// The standard library behind an [`Arc`](std::sync::Arc), ready to
    /// share across diagnosis worker threads without cloning the
    /// transistor netlists.
    pub fn standard_shared() -> std::sync::Arc<Self> {
        std::sync::Arc::new(CellLibrary::standard())
    }

    /// Moves the library behind an [`Arc`](std::sync::Arc) — the batch
    /// engine's shared-artifact form.
    pub fn into_shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }

    /// Looks a cell up by name.
    pub fn get(&self, name: &str) -> Option<&StdCell> {
        self.by_name.get(name).map(|&i| &self.cells[i])
    }

    /// Removes a cell by name, returning whether it was present.
    ///
    /// The diagnosis flow treats a suspected gate whose cell is missing
    /// from the library as a per-gate degradation, not a fatal error;
    /// this is the hook robustness tests use to produce that situation.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(i) = self.by_name.remove(name) else {
            return false;
        };
        self.cells.remove(i);
        self.by_name = self
            .cells
            .iter()
            .enumerate()
            .map(|(k, c)| (c.name().to_owned(), k))
            .collect();
        true
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over the cells.
    pub fn iter(&self) -> std::slice::Iter<'_, StdCell> {
        self.cells.iter()
    }

    /// Builds the gate-level [`Library`] used by netlist construction,
    /// simulation, ATPG and inter-cell diagnosis.
    ///
    /// # Panics
    ///
    /// Panics if two cells share a name — impossible for the built-in set.
    pub fn logic_library(&self) -> Library {
        let mut lib = Library::new();
        for cell in &self.cells {
            lib.insert(cell.to_gate_type())
                .expect("built-in cell names are unique");
        }
        lib
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_all_table5_cells() {
        let lib = CellLibrary::standard();
        for name in TABLE5_CELL_NAMES {
            assert!(lib.get(name).is_some(), "missing {name}");
        }
        assert_eq!(lib.len(), 22);
    }

    #[test]
    fn every_cell_is_consistent_with_its_reference() {
        for cell in CellLibrary::standard().iter() {
            cell.assert_consistent();
        }
    }

    #[test]
    fn logic_library_mirrors_cells() {
        let cells = CellLibrary::standard();
        let logic = cells.logic_library();
        assert_eq!(logic.len(), cells.len());
        for cell in cells.iter() {
            let id = logic.find(cell.name()).expect("present");
            let gt = logic.gate_type(id);
            assert_eq!(gt.num_inputs(), cell.netlist().num_inputs());
        }
    }

    #[test]
    fn derived_tables_are_fully_specified() {
        // Fault-free static CMOS cells never float or fight.
        for cell in CellLibrary::standard().iter() {
            let t = cell.netlist().truth_table().unwrap();
            assert!(
                t.entries().iter().all(|v| v.is_known()),
                "cell {} has U entries",
                cell.name()
            );
        }
    }

    #[test]
    fn table5_cells_span_the_paper_complexity_range() {
        let lib = CellLibrary::standard();
        let counts: Vec<usize> = TABLE5_CELL_NAMES
            .iter()
            .map(|n| lib.get(n).unwrap().netlist().num_transistors())
            .collect();
        assert_eq!(*counts.iter().min().unwrap(), 6);
        assert!(*counts.iter().max().unwrap() >= 14);
    }
}
