//! Elementary cells: inverter, buffer, NAND, NOR.

use icd_switch::CellNetlist;
use icd_switch::CellNetlistBuilder;

use crate::library::StdCell;

fn build(b: CellNetlistBuilder) -> CellNetlist {
    b.finish().expect("statically correct cell netlist")
}

/// `INVHVTX1`: `Z = !A` (2 transistors).
pub(crate) fn invhvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("INVHVTX1");
    let a = b.input("A");
    let z = b.output("Z");
    b.pmos("P0", a, b.vdd(), z);
    b.nmos("N1", a, b.gnd(), z);
    StdCell::new(build(b), |i| !i[0])
}

/// `BFHVTX2`: buffer `Z = A` (4 transistors, two inverter stages).
pub(crate) fn bfhvtx2() -> StdCell {
    let mut b = CellNetlistBuilder::new("BFHVTX2");
    let a = b.input("A");
    let z = b.output("Z");
    let w = b.net("N10");
    b.pmos("P0", a, b.vdd(), w);
    b.nmos("N1", a, b.gnd(), w);
    b.pmos("P2", w, b.vdd(), z);
    b.nmos("N3", w, b.gnd(), z);
    StdCell::new(build(b), |i| i[0])
}

/// `ND2HVTX1`: `Z = !(A & B)` (4 transistors).
pub(crate) fn nd2hvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("ND2HVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let z = b.output("Z");
    let s1 = b.net("N10");
    b.pmos("P0", a, b.vdd(), z);
    b.pmos("P1", bi, b.vdd(), z);
    b.nmos("N2", a, z, s1);
    b.nmos("N3", bi, s1, b.gnd());
    StdCell::new(build(b), |i| !(i[0] & i[1]))
}

/// `NR2HVTX1`: `Z = !(A | B)` (4 transistors).
pub(crate) fn nr2hvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("NR2HVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let z = b.output("Z");
    let s1 = b.net("N10");
    b.pmos("P0", a, b.vdd(), s1);
    b.pmos("P1", bi, s1, z);
    b.nmos("N2", a, b.gnd(), z);
    b.nmos("N3", bi, b.gnd(), z);
    StdCell::new(build(b), |i| !(i[0] | i[1]))
}

/// `ND3HVTX1`: `Z = !(A & B & C)` (6 transistors).
pub(crate) fn nd3hvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("ND3HVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let z = b.output("Z");
    let s1 = b.net("N10");
    let s2 = b.net("N11");
    b.pmos("P0", a, b.vdd(), z);
    b.pmos("P1", bi, b.vdd(), z);
    b.pmos("P2", c, b.vdd(), z);
    b.nmos("N3", a, z, s1);
    b.nmos("N4", bi, s1, s2);
    b.nmos("N5", c, s2, b.gnd());
    StdCell::new(build(b), |i| !(i[0] & i[1] & i[2]))
}

/// `ND4HVTX1`: `Z = !(A & B & C & D)` (8 transistors).
pub(crate) fn nd4hvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("ND4HVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let z = b.output("Z");
    let s1 = b.net("N10");
    let s2 = b.net("N11");
    let s3 = b.net("N12");
    b.pmos("P0", a, b.vdd(), z);
    b.pmos("P1", bi, b.vdd(), z);
    b.pmos("P2", c, b.vdd(), z);
    b.pmos("P3", d, b.vdd(), z);
    b.nmos("N4", a, z, s1);
    b.nmos("N5", bi, s1, s2);
    b.nmos("N6", c, s2, s3);
    b.nmos("N7", d, s3, b.gnd());
    StdCell::new(build(b), |i| !(i[0] & i[1] & i[2] & i[3]))
}

/// `NR4HVTX1`: `Z = !(A | B | C | D)` (8 transistors).
pub(crate) fn nr4hvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("NR4HVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let z = b.output("Z");
    let s1 = b.net("N10");
    let s2 = b.net("N11");
    let s3 = b.net("N12");
    b.pmos("P0", a, b.vdd(), s1);
    b.pmos("P1", bi, s1, s2);
    b.pmos("P2", c, s2, s3);
    b.pmos("P3", d, s3, z);
    b.nmos("N4", a, b.gnd(), z);
    b.nmos("N5", bi, b.gnd(), z);
    b.nmos("N6", c, b.gnd(), z);
    b.nmos("N7", d, b.gnd(), z);
    StdCell::new(build(b), |i| !(i[0] | i[1] | i[2] | i[3]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_counts() {
        assert_eq!(invhvtx1().netlist().num_transistors(), 2);
        assert_eq!(bfhvtx2().netlist().num_transistors(), 4);
        assert_eq!(nd2hvtx1().netlist().num_transistors(), 4);
        assert_eq!(nr2hvtx1().netlist().num_transistors(), 4);
        assert_eq!(nd3hvtx1().netlist().num_transistors(), 6);
        assert_eq!(nd4hvtx1().netlist().num_transistors(), 8);
        assert_eq!(nr4hvtx1().netlist().num_transistors(), 8);
    }

    #[test]
    fn netlists_match_reference_functions() {
        for cell in [
            invhvtx1(),
            bfhvtx2(),
            nd2hvtx1(),
            nr2hvtx1(),
            nd3hvtx1(),
            nd4hvtx1(),
            nr4hvtx1(),
        ] {
            cell.assert_consistent();
        }
    }
}
