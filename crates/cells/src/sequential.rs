//! Sequential cells — the paper's first future-work item ("extend the
//! proposed approach to handle scan flip-flops") at substrate level.
//!
//! These cells are *not* part of the combinational [`CellLibrary`]
//! (critical path tracing as published is defined for combinational
//! cells); they demonstrate that the switch-level engine's
//! charge-retentive mode ([`CellNetlist::solve_sequence`]) simulates real
//! latch and scan-flip-flop structures: transmission gates, keeper loops
//! and two-phase master–slave operation.
//!
//! [`CellLibrary`]: crate::CellLibrary
//! [`CellNetlist::solve_sequence`]: icd_switch::CellNetlist

use icd_switch::{CellNetlist, CellNetlistBuilder, TNetId};

/// Builds a transmission gate `a — b` controlled by `on_high` (nMOS gate)
/// and `on_low` (pMOS gate): conducts when `on_high = 1` / `on_low = 0`.
fn tgate(
    b: &mut CellNetlistBuilder,
    name: &str,
    on_high: TNetId,
    on_low: TNetId,
    a: TNetId,
    z: TNetId,
) {
    b.nmos(&format!("{name}N"), on_high, a, z);
    b.pmos(&format!("{name}P"), on_low, a, z);
}

fn inverter(b: &mut CellNetlistBuilder, name: &str, input: TNetId, output: TNetId) {
    let vdd = b.vdd();
    let gnd = b.gnd();
    b.pmos(&format!("{name}P"), input, vdd, output);
    b.nmos(&format!("{name}N"), input, gnd, output);
}

/// `DLHVTX1`: a level-sensitive D latch, transparent while `CK = 1`,
/// with a keeper loop holding the state while `CK = 0` (12 transistors).
///
/// Inputs: `D`, `CK`; output `Q`.
pub fn dlhvtx1() -> CellNetlist {
    let mut b = CellNetlistBuilder::new("DLHVTX1");
    let d = b.input("D");
    let ck = b.input("CK");
    let q = b.output("Q");
    let ckn = b.net("CKN");
    let m = b.net("M");
    let mb = b.net("MB");
    let mf = b.net("MF");
    inverter(&mut b, "ICK", ck, ckn);
    // Input transmission gate: D -> M while CK = 1.
    tgate(&mut b, "TGI", ck, ckn, d, m);
    // Keeper: M -> MB -> MF, fed back while CK = 0.
    inverter(&mut b, "I1", m, mb);
    inverter(&mut b, "I2", mb, mf);
    tgate(&mut b, "TGF", ckn, ck, mf, m);
    // Output buffer.
    inverter(&mut b, "IQ", mb, q);
    b.finish().expect("statically correct latch netlist")
}

/// `SDFFHVTX1`: a positive-edge scan D flip-flop — scan mux (`SE`
/// selecting `SI` over `D`), master latch transparent while `CK = 0`,
/// slave latch transparent while `CK = 1` (26 transistors).
///
/// Inputs: `D`, `SI`, `SE`, `CK`; output `Q`.
pub fn sdffhvtx1() -> CellNetlist {
    let mut b = CellNetlistBuilder::new("SDFFHVTX1");
    let d = b.input("D");
    let si = b.input("SI");
    let se = b.input("SE");
    let ck = b.input("CK");
    let q = b.output("Q");
    let sen = b.net("SEN");
    let ckn = b.net("CKN");
    let din = b.net("DIN");
    let m = b.net("M");
    let mb = b.net("MB");
    let mf = b.net("MF");
    let s = b.net("S");
    let sb = b.net("SB");
    let sf = b.net("SF");
    inverter(&mut b, "ISE", se, sen);
    inverter(&mut b, "ICK", ck, ckn);
    // Scan mux: DIN = SE ? SI : D.
    tgate(&mut b, "TGD", sen, se, d, din);
    tgate(&mut b, "TGS", se, sen, si, din);
    // Master latch: transparent while CK = 0.
    tgate(&mut b, "TGM", ckn, ck, din, m);
    inverter(&mut b, "IM1", m, mb);
    inverter(&mut b, "IM2", mb, mf);
    tgate(&mut b, "TGMF", ck, ckn, mf, m);
    // Slave latch: transparent while CK = 1.
    tgate(&mut b, "TGSL", ck, ckn, mb, s);
    inverter(&mut b, "IS1", s, sb);
    inverter(&mut b, "IS2", sb, sf);
    tgate(&mut b, "TGSF", ckn, ck, sf, s);
    // Output buffer: S holds !D after the edge (the slave samples MB),
    // so one inversion restores the captured polarity.
    inverter(&mut b, "IQ", s, q);
    b.finish().expect("statically correct flip-flop netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_logic::Lv;
    use icd_switch::Forcing;

    fn seq(cell: &CellNetlist, steps: &[&[bool]]) -> Vec<Lv> {
        let sequence: Vec<Vec<Lv>> = steps
            .iter()
            .map(|bits| bits.iter().copied().map(Lv::from).collect())
            .collect();
        cell.solve_sequence(&sequence, &Forcing::none())
            .expect("sequence evaluates")
            .iter()
            .map(|vals| vals.value(cell.output()))
            .collect()
    }

    #[test]
    fn latch_is_transparent_high_and_holds_low() {
        let latch = dlhvtx1();
        assert_eq!(latch.num_transistors(), 12);
        // Inputs: (D, CK).
        let q = seq(
            &latch,
            &[
                &[true, true],   // write 1: transparent
                &[true, false],  // close: hold 1
                &[false, false], // D changes while closed: still 1
                &[false, true],  // open: follow D = 0
                &[true, false],  // closed before D rose: hold 0
            ],
        );
        assert_eq!(
            q,
            vec![Lv::One, Lv::One, Lv::One, Lv::Zero, Lv::Zero],
            "latch sequence wrong: {q:?}"
        );
    }

    #[test]
    fn flip_flop_captures_on_the_rising_edge() {
        let ff = sdffhvtx1();
        assert_eq!(ff.num_transistors(), 26);
        // Inputs: (D, SI, SE, CK). Functional mode: SE = 0.
        let q = seq(
            &ff,
            &[
                &[true, false, false, false],  // CK low: master samples D=1
                &[true, false, false, true],   // rising edge: Q = 1
                &[false, false, false, true],  // D changes, CK high: Q holds
                &[false, false, false, false], // CK low: master samples D=0
                &[true, false, false, true],   // rising edge: captures the 0
            ],
        );
        assert_eq!(q[1], Lv::One, "rising edge must capture 1: {q:?}");
        assert_eq!(q[2], Lv::One, "Q must hold while CK is high: {q:?}");
        assert_eq!(q[4], Lv::Zero, "second edge must capture 0: {q:?}");
    }

    #[test]
    fn scan_mode_shifts_si() {
        let ff = sdffhvtx1();
        // SE = 1: the scan input wins over D.
        let q = seq(
            &ff,
            &[
                &[false, true, true, false], // master samples SI=1 (D=0)
                &[false, true, true, true],  // edge: Q = SI = 1
            ],
        );
        assert_eq!(q[1], Lv::One, "scan shift failed: {q:?}");
    }

    #[test]
    fn static_solve_of_a_latch_storage_is_unknown() {
        // Without state, the closed latch's storage node has no history:
        // the combinational solver reports U rather than inventing state.
        let latch = dlhvtx1();
        let vals = latch
            .solve(&[Lv::One, Lv::Zero], &Forcing::none())
            .expect("solves");
        assert_eq!(vals.value(latch.output()), Lv::U);
    }
}
