//! Larger cells of the Table-5 experiment set: high-drive AND, a
//! transmission-gate multiplexer, XOR and wide NAND/OR.

use icd_switch::{CellNetlist, CellNetlistBuilder};

use crate::library::StdCell;

fn build(b: CellNetlistBuilder) -> CellNetlist {
    b.finish().expect("statically correct cell netlist")
}

/// `AN2BHVTX8`: `Z = A & !B` with an 8× output stage (18 transistors:
/// input inverter, NAND2, six-finger output inverter).
///
/// The parallel output fingers are electrically redundant — a defect on one
/// finger is masked by its siblings, and critical path tracing never marks
/// an individual finger's gate as critical. Together with the cell's tiny
/// local pattern space (2 inputs → 4 patterns) this reproduces why the
/// paper measures its worst resolution (4.1 candidates) here.
pub(crate) fn an2bhvtx8() -> StdCell {
    let mut b = CellNetlistBuilder::new("AN2BHVTX8");
    let a = b.input("A");
    let bi = b.input("B");
    let z = b.output("Z");
    let bn = b.net("N20");
    let nw = b.net("N21");
    let nx = b.net("N22");
    // Inverter on B.
    b.pmos("P0", bi, b.vdd(), bn);
    b.nmos("N1", bi, b.gnd(), bn);
    // NAND2(A, !B).
    b.pmos("P2", a, b.vdd(), nw);
    b.pmos("P3", bn, b.vdd(), nw);
    b.nmos("N4", a, nw, nx);
    b.nmos("N5", bn, nx, b.gnd());
    // 8x drive: six parallel inverter fingers.
    for i in 0..6 {
        b.pmos(&format!("P{}", 6 + i), nw, b.vdd(), z);
        b.nmos(&format!("N{}", 12 + i), nw, b.gnd(), z);
    }
    StdCell::new(build(b), |i| i[0] & !i[1])
}

/// `MUX21HVTX6`: transmission-gate 2:1 multiplexer, `Z = S ? B : A`
/// (10 transistors: select inverter, two T-gates, two buffer stages).
pub(crate) fn mux21hvtx6() -> StdCell {
    let mut b = CellNetlistBuilder::new("MUX21HVTX6");
    let a = b.input("A");
    let bi = b.input("B");
    let s = b.input("S");
    let z = b.output("Z");
    let sn = b.net("N30");
    let m = b.net("N31");
    let mb = b.net("N32");
    // Select inverter.
    b.pmos("P0", s, b.vdd(), sn);
    b.nmos("N1", s, b.gnd(), sn);
    // T-gate for A (selected when S = 0).
    b.nmos("N2", sn, a, m);
    b.pmos("P3", s, a, m);
    // T-gate for B (selected when S = 1).
    b.nmos("N4", s, bi, m);
    b.pmos("P5", sn, bi, m);
    // Two buffering inverters restore drive and polarity.
    b.pmos("P6", m, b.vdd(), mb);
    b.nmos("N7", m, b.gnd(), mb);
    b.pmos("P8", mb, b.vdd(), z);
    b.nmos("N9", mb, b.gnd(), z);
    StdCell::new(build(b), |i| if i[2] { i[1] } else { i[0] })
}

/// `ND4ABCHVTX8`: `Z = !(!A & !B & !C & D)` — a NAND4 with the first three
/// inputs inverted (14 transistors).
pub(crate) fn nd4abchvtx8() -> StdCell {
    let mut b = CellNetlistBuilder::new("ND4ABCHVTX8");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let z = b.output("Z");
    let an = b.net("N40");
    let bn = b.net("N41");
    let cn = b.net("N42");
    let s1 = b.net("N43");
    let s2 = b.net("N44");
    let s3 = b.net("N45");
    b.pmos("P0", a, b.vdd(), an);
    b.nmos("N1", a, b.gnd(), an);
    b.pmos("P2", bi, b.vdd(), bn);
    b.nmos("N3", bi, b.gnd(), bn);
    b.pmos("P4", c, b.vdd(), cn);
    b.nmos("N5", c, b.gnd(), cn);
    // NAND4(an, bn, cn, D).
    b.pmos("P6", an, b.vdd(), z);
    b.pmos("P7", bn, b.vdd(), z);
    b.pmos("P8", cn, b.vdd(), z);
    b.pmos("P9", d, b.vdd(), z);
    b.nmos("N10", an, z, s1);
    b.nmos("N11", bn, s1, s2);
    b.nmos("N12", cn, s2, s3);
    b.nmos("N13", d, s3, b.gnd());
    StdCell::new(build(b), |i| !(!i[0] & !i[1] & !i[2] & i[3]))
}

/// `EOHVTX6`: exclusive-OR, `Z = A ^ B` (12 transistors: two input
/// inverters and an AOI22 core).
pub(crate) fn eohvtx6() -> StdCell {
    let mut b = CellNetlistBuilder::new("EOHVTX6");
    let a = b.input("A");
    let bi = b.input("B");
    let z = b.output("Z");
    let an = b.net("N50");
    let bn = b.net("N51");
    let x1 = b.net("N52");
    let x2 = b.net("N53");
    let y1 = b.net("N54");
    b.pmos("P0", a, b.vdd(), an);
    b.nmos("N1", a, b.gnd(), an);
    b.pmos("P2", bi, b.vdd(), bn);
    b.nmos("N3", bi, b.gnd(), bn);
    // AOI22 core: Z = !((A & B) | (!A & !B)).
    b.nmos("N4", a, z, x1);
    b.nmos("N5", bi, x1, b.gnd());
    b.nmos("N6", an, z, x2);
    b.nmos("N7", bn, x2, b.gnd());
    b.pmos("P8", a, b.vdd(), y1);
    b.pmos("P9", bi, b.vdd(), y1);
    b.pmos("P10", an, y1, z);
    b.pmos("P11", bn, y1, z);
    StdCell::new(build(b), |i| i[0] ^ i[1])
}

/// `OR4ABCDHVTX4`: `Z = A | B | C | D` — NOR4 plus output inverter
/// (10 transistors).
pub(crate) fn or4abcdhvtx4() -> StdCell {
    let mut b = CellNetlistBuilder::new("OR4ABCDHVTX4");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let z = b.output("Z");
    let w = b.net("N60");
    let s1 = b.net("N61");
    let s2 = b.net("N62");
    let s3 = b.net("N63");
    b.nmos("N0", a, b.gnd(), w);
    b.nmos("N1", bi, b.gnd(), w);
    b.nmos("N2", c, b.gnd(), w);
    b.nmos("N3", d, b.gnd(), w);
    b.pmos("P4", a, b.vdd(), s1);
    b.pmos("P5", bi, s1, s2);
    b.pmos("P6", c, s2, s3);
    b.pmos("P7", d, s3, w);
    b.pmos("P8", w, b.vdd(), z);
    b.nmos("N9", w, b.gnd(), z);
    StdCell::new(build(b), |i| i[0] | i[1] | i[2] | i[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_counts() {
        assert_eq!(an2bhvtx8().netlist().num_transistors(), 18); // Table 5: 18
        assert_eq!(mux21hvtx6().netlist().num_transistors(), 10); // Table 5: 24
        assert_eq!(nd4abchvtx8().netlist().num_transistors(), 14); // Table 5: 23
        assert_eq!(eohvtx6().netlist().num_transistors(), 12); // Table 5: 26
        assert_eq!(or4abcdhvtx4().netlist().num_transistors(), 10); // Table 5: 14
    }

    #[test]
    fn netlists_match_reference_functions() {
        for cell in [
            an2bhvtx8(),
            mux21hvtx6(),
            nd4abchvtx8(),
            eohvtx6(),
            or4abcdhvtx4(),
        ] {
            cell.assert_consistent();
        }
    }

    #[test]
    fn mux_passes_both_data_paths() {
        use icd_switch::{Forcing, Lv};
        let cell = mux21hvtx6();
        let nl = cell.netlist();
        // S=0 selects A, S=1 selects B.
        for (a, b, s, want) in [
            (false, true, false, Lv::Zero),
            (true, false, false, Lv::One),
            (false, true, true, Lv::One),
            (true, false, true, Lv::Zero),
        ] {
            let v = nl.solve_bits(&[a, b, s], &Forcing::none()).unwrap();
            assert_eq!(v.value(nl.output()), want, "A={a} B={b} S={s}");
        }
    }
}
