//! The AND-OR(-invert) family the paper's experiments centre on.
//!
//! Internal net names follow the ones the paper's tables reveal (`N16`,
//! `N113`, `N55`, `Net118`, …) so that case studies read like the original.

use icd_switch::{CellNetlist, CellNetlistBuilder};

use crate::library::StdCell;

fn build(b: CellNetlistBuilder) -> CellNetlist {
    b.finish().expect("statically correct cell netlist")
}

/// `AO7SVTX1`: AOI21, `Z = !(A | (B & C))` (6 transistors).
///
/// Table 2 injects `N16` stuck-at-1 here; `N16` is the pull-up node whose
/// logic value tracks `!A`, which is why the paper reports `Input A Sa0` as
/// an equivalent candidate.
pub(crate) fn ao7svtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("AO7SVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let z = b.output("Z");
    let n16 = b.net("N16");
    let n17 = b.net("N17");
    // Pull-up: !A & !(B & C)  =>  A in series with (B || C).
    b.pmos("P0", a, b.vdd(), n16);
    b.pmos("P1", bi, n16, z);
    b.pmos("P2", c, n16, z);
    // Pull-down: A || (B & C).
    b.nmos("N3", a, b.gnd(), z);
    b.nmos("N4", bi, z, n17);
    b.nmos("N5", c, n17, b.gnd());
    StdCell::new(build(b), |i| !(i[0] | (i[1] & i[2])))
}

/// `AO7NHVTX1`: AOI21 (alternative drive flavour), `Z = !(A | (B & C))`
/// (6 transistors, nMOS named `N0..N2`, pMOS `P3..P5`, pull-up node `N50`).
///
/// Table 4 injects a delay defect on `N2D` (the drain of `N2`); Table 3 the
/// bridge `N50`–`Gc` (gate net of input C).
pub(crate) fn ao7nhvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("AO7NHVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let z = b.output("Z");
    let n50 = b.net("N50");
    let n51 = b.net("N51");
    b.nmos("N0", a, b.gnd(), z);
    b.nmos("N1", bi, z, n51);
    b.nmos("N2", c, n51, b.gnd());
    b.pmos("P3", a, b.vdd(), n50);
    b.pmos("P4", bi, n50, z);
    b.pmos("P5", c, n50, z);
    StdCell::new(build(b), |i| !(i[0] | (i[1] & i[2])))
}

/// `AO7HVTX1`: AOI21, `Z = !(A | (B & C))` (6 transistors, `T1..T6`,
/// pull-up node `Net61`).
///
/// This is the suspect cell of the paper's silicon case studies H2 (metal-1
/// bridge of `Net61` to GND) and circuit M (multiple open contacts).
pub(crate) fn ao7hvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("AO7HVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let z = b.output("Z");
    let net61 = b.net("Net61");
    let net62 = b.net("Net62");
    b.pmos("T1", a, b.vdd(), net61);
    b.pmos("T2", bi, net61, z);
    b.pmos("T3", c, net61, z);
    b.nmos("T4", a, b.gnd(), z);
    b.nmos("T5", bi, z, net62);
    b.nmos("T6", c, net62, b.gnd());
    StdCell::new(build(b), |i| !(i[0] | (i[1] & i[2])))
}

/// `NR3ASVTX1`: NOR3 with inverted first input, `Z = A & !B & !C`
/// (8 transistors; inverter output `N022`, pull-up nodes `N029`, `N030`).
///
/// Table 2 injects `N022` stuck-at-0 here and reports `N029` / `Input A`
/// stuck-at-1 as equivalents.
pub(crate) fn nr3asvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("NR3ASVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let z = b.output("Z");
    let n022 = b.net("N022");
    let n029 = b.net("N029");
    let n030 = b.net("N030");
    // Inverter on A.
    b.pmos("P0", a, b.vdd(), n022);
    b.nmos("N1", a, b.gnd(), n022);
    // NOR3(N022, B, C).
    b.pmos("P2", n022, b.vdd(), n029);
    b.pmos("P3", bi, n029, n030);
    b.pmos("P4", c, n030, z);
    b.nmos("N5", n022, b.gnd(), z);
    b.nmos("N6", bi, b.gnd(), z);
    b.nmos("N7", c, b.gnd(), z);
    StdCell::new(build(b), |i| i[0] & !i[1] & !i[2])
}

/// `AO6CHVTX4`: non-inverting OA21, `Z = (A | B) & C` (8 transistors;
/// first-stage nodes `N109`, `N113`, stage output `N125`).
///
/// Table 2 injects `N113` stuck-at-0; Table 3 the bridges `N113`–`N109` and
/// `N113`–`N125`.
pub(crate) fn ao6chvtx4() -> StdCell {
    let mut b = CellNetlistBuilder::new("AO6CHVTX4");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let z = b.output("Z");
    let n109 = b.net("N109");
    let n113 = b.net("N113");
    let n125 = b.net("N125");
    // Stage 1: OAI21, N125 = !((A | B) & C).
    b.nmos("N0", c, n125, n113);
    b.nmos("N1", a, n113, b.gnd());
    b.nmos("N2", bi, n113, b.gnd());
    b.pmos("P3", a, b.vdd(), n109);
    b.pmos("P4", bi, n109, n125);
    b.pmos("P5", c, b.vdd(), n125);
    // Stage 2: inverter.
    b.pmos("P6", n125, b.vdd(), z);
    b.nmos("N7", n125, b.gnd(), z);
    StdCell::new(build(b), |i| (i[0] | i[1]) & i[2])
}

/// `AO5NHVTX1`: non-inverting AO21, `Z = (A & B) | C` (8 transistors;
/// first-stage output `N55`, pull-down node `N71`, pull-up node `N72`).
///
/// Table 2 injects `N71` stuck-at-0; Table 3 the bridge `N55`–`A`; Table 4 a
/// delay defect on `N0D` whose suspects are `N0, N1, P7, Net55, Z`.
pub(crate) fn ao5nhvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("AO5NHVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let z = b.output("Z");
    let n55 = b.net("N55");
    let n71 = b.net("N71");
    let n72 = b.net("N72");
    // Stage 1: AOI21, N55 = !((A & B) | C).
    b.nmos("N0", a, n55, n71);
    b.nmos("N1", bi, n71, b.gnd());
    b.nmos("N2", c, n55, b.gnd());
    b.pmos("P4", a, b.vdd(), n72);
    b.pmos("P5", bi, b.vdd(), n72);
    b.pmos("P6", c, n72, n55);
    // Stage 2: inverter.
    b.pmos("P7", n55, b.vdd(), z);
    b.nmos("N3", n55, b.gnd(), z);
    StdCell::new(build(b), |i| (i[0] & i[1]) | i[2])
}

/// `AO8DHVTX1`: the paper's running example (Figs. 1, 6–8). Four inputs,
/// ten transistors `T1..T10`, internal nets `Net88`, `Net106`, `Net110`,
/// `Net118`. Reconstruction with `Z = D & (A | (B & C))`: an AOI first
/// stage driving `Net118`, then an output inverter — which preserves the
/// paper's defect stories (D1: `Net118` shorted to ground pins the output;
/// D4: a resistive open on `Net118` delays the output transistors' gates;
/// D3: a bridge across the `Net110`/`Net106` pull-down stack).
pub(crate) fn ao8dhvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("AO8DHVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let z = b.output("Z");
    let net88 = b.net("Net88");
    let net106 = b.net("Net106");
    let net110 = b.net("Net110");
    let net118 = b.net("Net118");
    // Stage 1 pull-up: !D | (!A & (!B | !C)).
    b.pmos("T1", a, b.vdd(), net88);
    b.pmos("T2", bi, net88, net118);
    b.pmos("T3", c, net88, net118);
    b.pmos("T4", d, b.vdd(), net118);
    // Stage 1 pull-down: D & (A | (B & C)).
    b.nmos("T7", d, net118, net110);
    b.nmos("T8", a, net110, b.gnd());
    b.nmos("T9", bi, net110, net106);
    b.nmos("T10", c, net106, b.gnd());
    // Stage 2: output inverter.
    b.pmos("T5", net118, b.vdd(), z);
    b.nmos("T6", net118, b.gnd(), z);
    StdCell::new(build(b), |i| i[3] & (i[0] | (i[1] & i[2])))
}

/// `AO9SVTX1`: AOI221, `Z = !((A & B) | (C & D) | E)` (10 transistors;
/// pull-down nodes `N22`, `N31`, pull-up nodes `Net8`, `Net9`).
///
/// Table 3 injects the bridge `N22`–`N31`; Table 4 a delay defect on `P4S`
/// with suspects `Z, Net9, P4`.
pub(crate) fn ao9svtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("AO9SVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let e = b.input("E");
    let z = b.output("Z");
    let n22 = b.net("N22");
    let n31 = b.net("N31");
    let net8 = b.net("Net8");
    let net9 = b.net("Net9");
    b.nmos("N5", a, z, n22);
    b.nmos("N6", bi, n22, b.gnd());
    b.nmos("N7", c, z, n31);
    b.nmos("N8", d, n31, b.gnd());
    b.nmos("N9", e, z, b.gnd());
    b.pmos("P0", a, b.vdd(), net8);
    b.pmos("P1", bi, b.vdd(), net8);
    b.pmos("P2", c, net8, net9);
    b.pmos("P3", d, net8, net9);
    b.pmos("P4", e, net9, z);
    StdCell::new(build(b), |i| !((i[0] & i[1]) | (i[2] & i[3]) | i[4]))
}

/// `AOI22HVTX2`: `Z = !((A & B) | (C & D))` (8 transistors; pull-down
/// nodes `N80`, `N81`, pull-up node `N82`).
pub(crate) fn aoi22hvtx2() -> StdCell {
    let mut b = CellNetlistBuilder::new("AOI22HVTX2");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let z = b.output("Z");
    let n80 = b.net("N80");
    let n81 = b.net("N81");
    let n82 = b.net("N82");
    b.nmos("N0", a, z, n80);
    b.nmos("N1", bi, n80, b.gnd());
    b.nmos("N2", c, z, n81);
    b.nmos("N3", d, n81, b.gnd());
    b.pmos("P4", a, b.vdd(), n82);
    b.pmos("P5", bi, b.vdd(), n82);
    b.pmos("P6", c, n82, z);
    b.pmos("P7", d, n82, z);
    StdCell::new(build(b), |i| !((i[0] & i[1]) | (i[2] & i[3])))
}

/// `OAI22HVTX1`: `Z = !((A | B) & (C | D))` (8 transistors; pull-up
/// nodes `N90`, `N91`, pull-down node `N92`).
pub(crate) fn oai22hvtx1() -> StdCell {
    let mut b = CellNetlistBuilder::new("OAI22HVTX1");
    let a = b.input("A");
    let bi = b.input("B");
    let c = b.input("C");
    let d = b.input("D");
    let z = b.output("Z");
    let n90 = b.net("N90");
    let n91 = b.net("N91");
    let n92 = b.net("N92");
    b.pmos("P0", a, b.vdd(), n90);
    b.pmos("P1", bi, n90, z);
    b.pmos("P2", c, b.vdd(), n91);
    b.pmos("P3", d, n91, z);
    b.nmos("N4", a, z, n92);
    b.nmos("N5", bi, z, n92);
    b.nmos("N6", c, n92, b.gnd());
    b.nmos("N7", d, n92, b.gnd());
    StdCell::new(build(b), |i| !((i[0] | i[1]) & (i[2] | i[3])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_counts_match_paper_complexity() {
        assert_eq!(ao7svtx1().netlist().num_transistors(), 6); // Table 5: 6
        assert_eq!(ao7nhvtx1().netlist().num_transistors(), 6); // Table 5: 6
        assert_eq!(ao7hvtx1().netlist().num_transistors(), 6);
        assert_eq!(nr3asvtx1().netlist().num_transistors(), 8); // Table 5: 7
        assert_eq!(ao6chvtx4().netlist().num_transistors(), 8); // Table 5: 8
        assert_eq!(ao5nhvtx1().netlist().num_transistors(), 8); // Table 5: 9
        assert_eq!(ao8dhvtx1().netlist().num_transistors(), 10); // Fig. 6: 10
        assert_eq!(ao9svtx1().netlist().num_transistors(), 10); // Table 5: 10
    }

    #[test]
    fn netlists_match_reference_functions() {
        for cell in [
            ao7svtx1(),
            ao7nhvtx1(),
            ao7hvtx1(),
            nr3asvtx1(),
            ao6chvtx4(),
            ao5nhvtx1(),
            ao8dhvtx1(),
            ao9svtx1(),
        ] {
            cell.assert_consistent();
        }
    }

    #[test]
    fn paper_net_names_exist() {
        assert!(ao7svtx1().netlist().find_net("N16").is_some());
        assert!(nr3asvtx1().netlist().find_net("N022").is_some());
        assert!(nr3asvtx1().netlist().find_net("N029").is_some());
        assert!(ao6chvtx4().netlist().find_net("N113").is_some());
        assert!(ao6chvtx4().netlist().find_net("N109").is_some());
        assert!(ao6chvtx4().netlist().find_net("N125").is_some());
        assert!(ao5nhvtx1().netlist().find_net("N55").is_some());
        assert!(ao5nhvtx1().netlist().find_net("N71").is_some());
        assert!(ao7hvtx1().netlist().find_net("Net61").is_some());
        for net in ["Net88", "Net106", "Net110", "Net118"] {
            assert!(ao8dhvtx1().netlist().find_net(net).is_some());
        }
        for tr in ["T1", "T5", "T10"] {
            assert!(ao8dhvtx1().netlist().find_transistor(tr).is_some());
        }
        assert!(ao9svtx1().netlist().find_net("N22").is_some());
        assert!(ao9svtx1().netlist().find_net("N31").is_some());
        assert!(ao9svtx1().netlist().find_transistor("P4").is_some());
        assert!(ao7nhvtx1().netlist().find_transistor("N2").is_some());
    }

    #[test]
    fn ao8d_evaluates_one_under_0111() {
        use icd_switch::{Forcing, Lv};
        // The walkthrough stimulus of Figs. 6-8: ABCD = 0111 sets Z = 1.
        let cell = ao8dhvtx1();
        let v = cell
            .netlist()
            .solve_bits(&[false, true, true, true], &Forcing::none())
            .unwrap();
        assert_eq!(v.value(cell.netlist().output()), Lv::One);
        // Net118 is the inverted first-stage function: 0 here.
        let net118 = cell.netlist().find_net("Net118").unwrap();
        assert_eq!(v.value(net118), Lv::Zero);
    }
}
