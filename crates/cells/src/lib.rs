//! Transistor-level standard-cell library for the `icdiag` workspace.
//!
//! The paper evaluates its intra-cell diagnosis on cells of an ST
//! Microelectronics 90 nm library (AO7SVTX1, NR3ASVTX1, AO8DHVTX1, …,
//! Tables 2–5). The proprietary layouts are not available, so this crate
//! provides *faithful-in-structure reconstructions*: static CMOS transistor
//! netlists with the paper's cell names, input counts and — where the text
//! reveals them — internal net names (`Net118`, `N113`, `N55`, `N022`, …)
//! and transistor names (`T1…T10`, `N0…`, `P4…`).
//!
//! Every cell carries a *reference* boolean function; the test suite checks
//! that the switch-level simulator derives exactly that function from the
//! transistor netlist, so the two views can never drift apart.
//!
//! The paper's Fig. 1/6 netlist for `AO8DHVTX1` is internally inconsistent
//! (see `DESIGN.md`); our reconstruction keeps its vocabulary — four inputs
//! `A..D`, ten transistors `T1..T10`, internal nets `Net88`, `Net106`,
//! `Net110`, `Net118` — with the well-defined function
//! `Z = D & (A | (B & C))` built as an AOI stage plus output inverter.
//!
//! # Example
//!
//! ```
//! use icd_cells::CellLibrary;
//!
//! let lib = CellLibrary::standard();
//! let cell = lib.get("AO8DHVTX1").expect("cell exists");
//! assert_eq!(cell.netlist().num_transistors(), 10);
//! assert_eq!(cell.netlist().num_inputs(), 4);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

mod aoi;
mod basic;
mod complex;
mod library;
pub mod sequential;

pub use library::{CellLibrary, StdCell, TABLE5_CELL_NAMES};
