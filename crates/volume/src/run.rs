//! The volume-run planner: one design, many device observations, one
//! aggregated report.
//!
//! A [`VolumeRun`] fingerprints the netlist, restores any persisted
//! cache snapshot keyed by that fingerprint, fans the device datalogs
//! through the batch engine (deterministic merge — the report is
//! byte-identical at any worker count), aggregates per-device suspects
//! into ranked root-cause candidates, and writes the warmed cache back
//! out for the next batch over the same design.

use std::path::PathBuf;
use std::sync::Arc;

use icd_bench::flow::{ExperimentContext, FlowError, FlowReport};
use icd_core::AnalysisCache;
use icd_engine::{BatchEngine, CancelToken, EngineConfig};
use icd_faultsim::Datalog;
use icd_netlist::ContentHash;
use icd_obs::Stability;

use crate::aggregate::{assemble_report, AggregationConfig};
use crate::report::VolumeReport;
use crate::snapshot;

/// Everything tunable about one volume run.
#[derive(Debug, Clone, Default)]
pub struct VolumeOptions {
    /// Worker threads; 0 follows `ICD_WORKERS` / machine parallelism.
    pub workers: usize,
    /// Root-cause aggregation tuning.
    pub aggregation: AggregationConfig,
    /// Directory for persistent cache snapshots; `None` disables
    /// cross-batch persistence.
    pub cache_dir: Option<PathBuf>,
}

/// One named device observation.
#[derive(Debug, Clone)]
pub struct VolumeInput {
    /// Datalog name (the file name in a corpus directory).
    pub name: String,
    /// The device's tester datalog.
    pub datalog: Datalog,
}

/// Run counters, also exported as `volume.*` obs counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct VolumeRunStats {
    /// Devices whose diagnosis produced suspects.
    pub devices_diagnosed: usize,
    /// Devices with all-pass datalogs (test escapes).
    pub devices_escaped: usize,
    /// Devices whose diagnosis failed structurally.
    pub devices_failed: usize,
    /// Devices skipped before diagnosis (reported by the corpus loader).
    pub devices_skipped: usize,
    /// Truth tables restored from a persisted snapshot.
    pub snapshot_tables_loaded: usize,
    /// Truth tables persisted for the next batch.
    pub snapshot_tables_saved: usize,
    /// Truth-table cache misses over the whole run — 0 on a fully warm
    /// snapshot restore.
    pub table_misses: usize,
    /// Ranked root-cause candidates in the report.
    pub root_causes: usize,
}

/// The full outcome of [`VolumeRun::execute`].
#[derive(Debug, Clone)]
pub struct VolumeOutcome {
    /// The aggregated report.
    pub report: VolumeReport,
    /// Run counters.
    pub stats: VolumeRunStats,
    /// Per-device failures `(name, error)`, in input order.
    pub failures: Vec<(String, String)>,
    /// Per-device engine busy time `(name, busy_us)`, in input order.
    /// Timing-class: scheduling-dependent CPU attribution for operator
    /// summaries only — it must never enter the serialized report
    /// (which stays byte-identical at any worker count).
    pub device_latency: Vec<(String, u64)>,
}

/// Plans and executes volume-diagnosis runs over one design.
#[derive(Debug, Clone)]
pub struct VolumeRun {
    ctx: Arc<ExperimentContext>,
    options: VolumeOptions,
}

impl VolumeRun {
    /// A planner for `ctx` with the given options.
    pub fn new(ctx: Arc<ExperimentContext>, options: VolumeOptions) -> Self {
        VolumeRun { ctx, options }
    }

    /// The structural fingerprint of the design under diagnosis — the
    /// snapshot and aggregation key.
    pub fn netlist_hash(&self) -> ContentHash {
        self.ctx.circuit.content_hash()
    }

    /// Diagnoses every input as one workload and aggregates the result.
    ///
    /// `devices_skipped` is the number of observations the corpus loader
    /// dropped before this call (unreadable or empty datalogs); they
    /// count against coverage but are otherwise absent. Snapshot load
    /// and save failures degrade to a cold run and a lost optimization
    /// respectively — never to a run failure.
    ///
    /// # Errors
    ///
    /// Returns an error only when a whole-batch stage fails (e.g. the
    /// good-machine simulation); per-device failures are recorded in the
    /// outcome instead.
    pub fn execute(
        &self,
        inputs: &[VolumeInput],
        devices_skipped: usize,
        collector: Option<&icd_obs::Collector>,
    ) -> Result<VolumeOutcome, FlowError> {
        let hash = self.netlist_hash();
        let cache = Arc::new(AnalysisCache::new());
        let mut stats = VolumeRunStats {
            devices_skipped,
            ..VolumeRunStats::default()
        };

        if let Some(dir) = &self.options.cache_dir {
            let path = snapshot::snapshot_path(dir, hash);
            if path.exists() {
                match snapshot::load(&cache, hash, &path) {
                    Ok(n) => stats.snapshot_tables_loaded = n,
                    Err(_) => {
                        // A stale or corrupt snapshot costs a cold start,
                        // nothing else.
                        Self::observe(collector, "volume.snapshot_load_failed", 1);
                    }
                }
            }
        }

        let config = if self.options.workers > 0 {
            EngineConfig::with_workers(self.options.workers)
        } else {
            EngineConfig::from_env()
        };
        let engine = BatchEngine::new(config);
        let datalogs: Vec<Datalog> = inputs.iter().map(|i| i.datalog.clone()).collect();
        let token = CancelToken::new();
        let batch =
            engine.diagnose_batch_with_cache(&self.ctx, &datalogs, collector, &token, &cache)?;

        let mut reports: Vec<(String, &FlowReport)> = Vec::new();
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut device_latency: Vec<(String, u64)> = Vec::with_capacity(batch.outcomes.len());
        for outcome in &batch.outcomes {
            let name = inputs[outcome.index].name.clone();
            device_latency.push((name.clone(), outcome.busy_us));
            match &outcome.report {
                Ok(report) => reports.push((name, report)),
                Err(e) => failures.push((name, e.to_string())),
            }
        }
        let report = assemble_report(
            &self.ctx,
            hash,
            &reports,
            failures.len(),
            devices_skipped,
            &self.options.aggregation,
        );
        stats.devices_diagnosed = report.devices_diagnosed;
        stats.devices_escaped = report.devices_escaped;
        stats.devices_failed = report.devices_failed;
        stats.root_causes = report.root_causes.len();
        stats.table_misses = batch.stats.table_cache.misses;

        if let Some(dir) = &self.options.cache_dir {
            let path = snapshot::snapshot_path(dir, hash);
            match snapshot::save(&cache, hash, &path) {
                Ok(n) => stats.snapshot_tables_saved = n,
                Err(_) => Self::observe(collector, "volume.snapshot_save_failed", 1),
            }
        }

        Self::observe_stats(collector, inputs.len(), &stats);
        Ok(VolumeOutcome {
            report,
            stats,
            failures,
            device_latency,
        })
    }

    fn observe(collector: Option<&icd_obs::Collector>, name: &'static str, delta: u64) {
        if let Some(c) = collector {
            let _active = c.install_local();
            icd_obs::counter(name, delta, Stability::Stable);
        }
    }

    fn observe_stats(
        collector: Option<&icd_obs::Collector>,
        presented: usize,
        stats: &VolumeRunStats,
    ) {
        let Some(c) = collector else { return };
        let _active = c.install_local();
        let count = |name: &'static str, v: usize| {
            icd_obs::counter(name, v as u64, Stability::Stable);
        };
        count("volume.devices_total", presented + stats.devices_skipped);
        count("volume.devices_diagnosed", stats.devices_diagnosed);
        count("volume.devices_escaped", stats.devices_escaped);
        count("volume.devices_failed", stats.devices_failed);
        count("volume.devices_skipped", stats.devices_skipped);
        count(
            "volume.snapshot_tables_loaded",
            stats.snapshot_tables_loaded,
        );
        count("volume.snapshot_tables_saved", stats.snapshot_tables_saved);
        count("volume.root_causes", stats.root_causes);
        // The warm-cache payoff in one number: table derivations this
        // run. Timing-stability because two workers racing a cold cell
        // can both count a miss.
        icd_obs::counter(
            "volume.table_misses",
            stats.table_misses as u64,
            Stability::Timing,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{synthesize_population, PopulationConfig};
    use crate::report::RootCauseKind;
    use icd_netlist::generator;
    use std::path::Path;

    fn ctx() -> Arc<ExperimentContext> {
        Arc::new(ExperimentContext::from_preset(&generator::circuit_a(), 16, 12).unwrap())
    }

    fn inputs_from(
        ctx: &ExperimentContext,
        devices: usize,
        seed: u64,
    ) -> (Vec<VolumeInput>, String) {
        let population = synthesize_population(ctx, &PopulationConfig::new(devices, seed)).unwrap();
        let inputs = population
            .datalogs
            .iter()
            .enumerate()
            .map(|(i, d)| VolumeInput {
                name: format!("device-{i:03}.log"),
                datalog: d.clone(),
            })
            .collect();
        (inputs, population.planted.gate_name)
    }

    fn temp_cache(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("icd-volume-run-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn planted_is_top(report: &VolumeReport, planted: &str) -> bool {
        matches!(
            report.root_causes.first().map(|rc| &rc.kind),
            Some(RootCauseKind::Gate { name, .. }) if name == planted
        )
    }

    #[test]
    fn planted_root_cause_ranks_first() {
        let ctx = ctx();
        let (inputs, planted) = inputs_from(&ctx, 8, 0xcafe);
        let run = VolumeRun::new(
            Arc::clone(&ctx),
            VolumeOptions {
                workers: 2,
                ..VolumeOptions::default()
            },
        );
        let outcome = run.execute(&inputs, 0, None).unwrap();
        assert!(
            planted_is_top(&outcome.report, &planted),
            "expected planted gate {planted} on top of {:?}",
            outcome.report.root_causes.first()
        );
        assert_eq!(outcome.report.devices_total, 8);
        assert!(outcome.report.devices_diagnosed > 0);
        // Per-device latency rides along in input order, one entry per
        // presented device, and diagnosed devices did measurable work.
        assert_eq!(outcome.device_latency.len(), 8);
        for (i, (name, _)) in outcome.device_latency.iter().enumerate() {
            assert_eq!(name, &inputs[i].name);
        }
        assert!(outcome.device_latency.iter().any(|(_, us)| *us > 0));
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let ctx = ctx();
        let (inputs, _) = inputs_from(&ctx, 6, 0xbeef);
        let json_at = |workers: usize| {
            let run = VolumeRun::new(
                Arc::clone(&ctx),
                VolumeOptions {
                    workers,
                    ..VolumeOptions::default()
                },
            );
            run.execute(&inputs, 0, None).unwrap().report.to_json()
        };
        let one = json_at(1);
        assert_eq!(one, json_at(3));
    }

    #[test]
    fn second_run_restores_the_snapshot_and_skips_derivations() {
        let ctx = ctx();
        let (inputs, _) = inputs_from(&ctx, 4, 0xd00d);
        let cache_dir = temp_cache("warm");
        let run = |dir: &Path| {
            let planner = VolumeRun::new(
                Arc::clone(&ctx),
                VolumeOptions {
                    workers: 1,
                    cache_dir: Some(dir.to_path_buf()),
                    ..VolumeOptions::default()
                },
            );
            planner.execute(&inputs, 0, None).unwrap()
        };
        let cold = run(&cache_dir);
        assert_eq!(cold.stats.snapshot_tables_loaded, 0);
        assert!(cold.stats.snapshot_tables_saved > 0);
        assert!(cold.stats.table_misses > 0, "cold run derives tables");

        let warm = run(&cache_dir);
        assert_eq!(
            warm.stats.snapshot_tables_loaded,
            cold.stats.snapshot_tables_saved
        );
        assert_eq!(warm.stats.table_misses, 0, "warm run derives nothing");
        // Cache temperature must not leak into the report.
        assert_eq!(cold.report.to_json(), warm.report.to_json());
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn skipped_devices_degrade_coverage_not_the_run() {
        let ctx = ctx();
        let (inputs, _) = inputs_from(&ctx, 4, 0xf00d);
        let run = VolumeRun::new(Arc::clone(&ctx), VolumeOptions::default());
        let collector = icd_obs::Collector::new();
        let outcome = run.execute(&inputs, 2, Some(&collector)).unwrap();
        assert_eq!(outcome.report.devices_skipped, 2);
        assert_eq!(outcome.report.devices_total, 6);
        assert!(outcome.report.coverage_permille < 1000);
        let snap = collector.snapshot();
        assert_eq!(snap.counters["volume.devices_skipped"].0, 2);
        assert_eq!(snap.counters["volume.devices_total"].0, 6);
    }
}
