//! The typed outcome of a volume run and its canonical renderings.
//!
//! The JSON rendering (`schema icd-volume-report.v1`) is the contract the
//! determinism tests pin: every field is an integer or a string, keys are
//! emitted in a fixed order, and nothing in it depends on worker count or
//! wall-clock time — two runs over the same inputs must produce
//! byte-identical documents.

use std::fmt::Write as _;

use icd_obs::json::write_string;

/// What a ranked root-cause candidate points at, from most to least
/// specific.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootCauseKind {
    /// One specific gate instance — the classic single systematic defect
    /// (e.g. a layout hotspot under exactly one instance).
    Gate {
        /// Instance name in the netlist.
        name: String,
        /// Its cell type.
        cell: String,
    },
    /// Every instance of one cell type — a library/process problem that
    /// hits the type wherever it is placed.
    CellType {
        /// The cell type name.
        cell: String,
    },
    /// A fanout-cone region, identified by the lowest-indexed observe
    /// point the suspected gates reach — a routing/placement
    /// neighbourhood rather than a specific instance.
    Region {
        /// Index into the circuit's observable-output list.
        output: usize,
        /// Human-readable tester coordinate of that observe point.
        coordinate: String,
    },
}

impl RootCauseKind {
    /// Short machine tag for the JSON rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            RootCauseKind::Gate { .. } => "gate",
            RootCauseKind::CellType { .. } => "cell",
            RootCauseKind::Region { .. } => "region",
        }
    }

    /// Human-readable target description.
    pub fn describe(&self) -> String {
        match self {
            RootCauseKind::Gate { name, cell } => format!("gate {name} ({cell})"),
            RootCauseKind::CellType { cell } => format!("cell type {cell}"),
            RootCauseKind::Region { coordinate, .. } => {
                format!("region observed at {coordinate}")
            }
        }
    }
}

/// One ranked systematic root-cause candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootCause {
    /// What the candidate points at.
    pub kind: RootCauseKind,
    /// Distinct devices whose suspects contributed to this candidate.
    pub devices: usize,
    /// Rank-weighted affinity score (higher = stronger evidence).
    pub score: u64,
    /// `devices` as a share of the diagnosed population, in permille.
    pub share_permille: u32,
    /// Example datalog names (first few contributors, input order).
    pub examples: Vec<String>,
}

/// The aggregate outcome of one volume run over a device population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeReport {
    /// Structural fingerprint of the diagnosed netlist
    /// ([`icd_netlist::ContentHash`], lowercase hex).
    pub netlist_hash: String,
    /// Devices presented to the run (diagnosed + escaped + failed +
    /// skipped).
    pub devices_total: usize,
    /// Devices whose diagnosis produced at least one suspect.
    pub devices_diagnosed: usize,
    /// Devices whose datalog had no failing pattern (test escapes).
    pub devices_escaped: usize,
    /// Devices whose diagnosis failed structurally.
    pub devices_failed: usize,
    /// Devices skipped before diagnosis (unreadable or empty datalogs).
    pub devices_skipped: usize,
    /// Diagnosed share of the failing population, in permille:
    /// `diagnosed / (diagnosed + failed + skipped)`. Escapes are not
    /// failing devices and do not count against coverage.
    pub coverage_permille: u32,
    /// Ranked systematic root-cause candidates, strongest first.
    pub root_causes: Vec<RootCause>,
}

/// Integer permille with a total-population-of-zero convention of 1000
/// (an empty population has nothing uncovered).
pub(crate) fn permille(part: usize, whole: usize) -> u32 {
    match (part * 1000).checked_div(whole) {
        None => 1000,
        Some(v) => v as u32,
    }
}

impl VolumeReport {
    /// Canonical JSON rendering (`schema icd-volume-report.v1`).
    ///
    /// Deterministic: fixed key order, integers and strings only (no
    /// floats), no timestamps. Byte-identical across worker counts and
    /// cache temperature.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"icd-volume-report.v1\",\"netlist_hash\":");
        write_string(&mut out, &self.netlist_hash);
        let _ = write!(
            out,
            ",\"devices\":{{\"total\":{},\"diagnosed\":{},\"escaped\":{},\"failed\":{},\"skipped\":{}}}",
            self.devices_total,
            self.devices_diagnosed,
            self.devices_escaped,
            self.devices_failed,
            self.devices_skipped
        );
        let _ = write!(out, ",\"coverage_permille\":{}", self.coverage_permille);
        out.push_str(",\"root_causes\":[");
        for (rank, rc) in self.root_causes.iter().enumerate() {
            if rank > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"rank\":{},\"kind\":", rank + 1);
            write_string(&mut out, rc.kind.tag());
            match &rc.kind {
                RootCauseKind::Gate { name, cell } => {
                    out.push_str(",\"gate\":");
                    write_string(&mut out, name);
                    out.push_str(",\"cell\":");
                    write_string(&mut out, cell);
                }
                RootCauseKind::CellType { cell } => {
                    out.push_str(",\"cell\":");
                    write_string(&mut out, cell);
                }
                RootCauseKind::Region { output, coordinate } => {
                    let _ = write!(out, ",\"output\":{output}");
                    out.push_str(",\"coordinate\":");
                    write_string(&mut out, coordinate);
                }
            }
            let _ = write!(
                out,
                ",\"devices\":{},\"score\":{},\"share_permille\":{}",
                rc.devices, rc.score, rc.share_permille
            );
            out.push_str(",\"examples\":[");
            for (i, ex) in rc.examples.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(&mut out, ex);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Human-readable multi-line rendering for the CLI.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "netlist {}", self.netlist_hash);
        let _ = writeln!(
            out,
            "devices: {} total, {} diagnosed, {} escaped, {} failed, {} skipped",
            self.devices_total,
            self.devices_diagnosed,
            self.devices_escaped,
            self.devices_failed,
            self.devices_skipped
        );
        let _ = writeln!(
            out,
            "coverage: {}.{:01}% of failing population diagnosed",
            self.coverage_permille / 10,
            self.coverage_permille % 10
        );
        if self.root_causes.is_empty() {
            let _ = writeln!(out, "no systematic root-cause candidates");
        } else {
            let _ = writeln!(out, "root causes:");
            for (rank, rc) in self.root_causes.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  #{} {} — {} device(s), score {}, {}.{:01}% of diagnosed (e.g. {})",
                    rank + 1,
                    rc.kind.describe(),
                    rc.devices,
                    rc.score,
                    rc.share_permille / 10,
                    rc.share_permille % 10,
                    rc.examples.join(", ")
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VolumeReport {
        VolumeReport {
            netlist_hash: "00ff00ff00ff00ff".into(),
            devices_total: 5,
            devices_diagnosed: 3,
            devices_escaped: 0,
            devices_failed: 1,
            devices_skipped: 1,
            coverage_permille: 600,
            root_causes: vec![
                RootCause {
                    kind: RootCauseKind::Gate {
                        name: "U7".into(),
                        cell: "NAND2".into(),
                    },
                    devices: 3,
                    score: 12_000,
                    share_permille: 1000,
                    examples: vec!["device-000.log".into(), "device-002.log".into()],
                },
                RootCause {
                    kind: RootCauseKind::Region {
                        output: 4,
                        coordinate: "chain 0 cell 2".into(),
                    },
                    devices: 2,
                    score: 3_000,
                    share_permille: 666,
                    examples: vec!["device-000.log".into()],
                },
            ],
        }
    }

    #[test]
    fn json_schema_and_key_order_are_pinned() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"schema\":\"icd-volume-report.v1\",\
             \"netlist_hash\":\"00ff00ff00ff00ff\",\
             \"devices\":{\"total\":5,\"diagnosed\":3,\"escaped\":0,\"failed\":1,\"skipped\":1},\
             \"coverage_permille\":600,\
             \"root_causes\":[\
             {\"rank\":1,\"kind\":\"gate\",\"gate\":\"U7\",\"cell\":\"NAND2\",\
             \"devices\":3,\"score\":12000,\"share_permille\":1000,\
             \"examples\":[\"device-000.log\",\"device-002.log\"]},\
             {\"rank\":2,\"kind\":\"region\",\"output\":4,\"coordinate\":\"chain 0 cell 2\",\
             \"devices\":2,\"score\":3000,\"share_permille\":666,\
             \"examples\":[\"device-000.log\"]}\
             ]}"
        );
    }

    #[test]
    fn json_parses_back() {
        let json = sample().to_json();
        let v = icd_obs::json::parse(&json).unwrap();
        match v {
            icd_obs::json::Value::Obj(map) => {
                assert!(map.iter().any(|(k, _)| k == "root_causes"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn text_rendering_mentions_every_candidate() {
        let text = sample().render_text();
        assert!(text.contains("gate U7 (NAND2)"));
        assert!(text.contains("region observed at chain 0 cell 2"));
        assert!(text.contains("coverage: 60.0%"));
    }

    #[test]
    fn permille_conventions() {
        assert_eq!(permille(0, 0), 1000);
        assert_eq!(permille(1, 2), 500);
        assert_eq!(permille(2, 3), 666);
    }
}
