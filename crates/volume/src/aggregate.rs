//! Cross-device suspect aggregation into ranked root-cause candidates.
//!
//! Each diagnosed device contributes its suspect list; every suspect
//! votes into three bucket families of decreasing specificity — the exact
//! gate instance, its cell type, and the fanout-cone region it is
//! observed at. Votes are weighted by suspect rank (the paper's ranked
//! cover: slot 0 carries the most evidence) and by bucket specificity, so
//! a gate systematically implicated across devices outranks the broader
//! buckets it also feeds. Ties are broken by a seeded hash so the
//! ordering is total and deterministic but carries no accidental
//! structural bias.

use std::collections::HashMap;

use icd_bench::flow::{ExperimentContext, FlowReport};
use icd_netlist::ContentHash;

use crate::report::{permille, RootCause, RootCauseKind, VolumeReport};

/// Rank-1 suspect vote weight; slot `s` contributes `RANK_WEIGHT / (s+1)`.
const RANK_WEIGHT: u64 = 1000;
/// Specificity multipliers: exact gate > cell type > cone region. The
/// gate multiplier exceeds the worst-case cell-bucket pile-up from one
/// device (every suspect slot the same cell type sums to `2 × 2083` with
/// four slots), so a gate implicated at rank 1 always outranks the
/// broader buckets it feeds.
const GATE_SPECIFICITY: u64 = 8;
const CELL_SPECIFICITY: u64 = 2;
const REGION_SPECIFICITY: u64 = 1;

/// Aggregation tuning.
#[derive(Debug, Clone)]
pub struct AggregationConfig {
    /// Tie-break seed: equal-score, equal-device buckets are ordered by a
    /// seeded hash of their identity. Any fixed seed gives a total,
    /// deterministic order; changing it only permutes exact ties.
    pub seed: u64,
    /// Ranked candidates kept in the report.
    pub max_root_causes: usize,
    /// Example datalog names kept per candidate.
    pub max_examples: usize,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig {
            seed: 0x1cd_0707,
            max_root_causes: 10,
            max_examples: 3,
        }
    }
}

/// Bucket identity. Gates and regions are keyed by stable indices (gate
/// index, observable-output index); `usize::MAX` marks the "observed
/// nowhere" region of suspects with an empty cone.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Gate(usize),
    Cell(String),
    Region(usize),
}

#[derive(Debug, Default)]
struct Bucket {
    score: u64,
    devices: usize,
    last_device: Option<usize>,
    examples: Vec<String>,
}

fn tie_hash(seed: u64, key: &Key) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&seed.to_le_bytes());
    match key {
        Key::Gate(i) => {
            eat(b"g");
            eat(&(*i as u64).to_le_bytes());
        }
        Key::Cell(name) => {
            eat(b"c");
            eat(name.as_bytes());
        }
        Key::Region(i) => {
            eat(b"r");
            eat(&(*i as u64).to_le_bytes());
        }
    }
    h
}

/// A stable textual identity for the final (never expected to fire)
/// tie-break level.
fn key_text(key: &Key) -> String {
    match key {
        Key::Gate(i) => format!("gate:{i}"),
        Key::Cell(name) => format!("cell:{name}"),
        Key::Region(i) => format!("region:{i}"),
    }
}

/// Aggregates per-device suspect lists into ranked root-cause candidates.
///
/// `diagnosed` holds `(datalog name, report)` for every device whose
/// diagnosis produced suspects, in input order. The returned candidates
/// are ordered by score, then device count, then seeded hash — a total
/// order independent of iteration order and worker count.
pub fn aggregate(
    ctx: &ExperimentContext,
    diagnosed: &[(String, &FlowReport)],
    config: &AggregationConfig,
) -> Vec<RootCause> {
    let mut buckets: HashMap<Key, Bucket> = HashMap::new();
    for (device, (name, report)) in diagnosed.iter().enumerate() {
        for (slot, analysis) in report.analyses.iter().enumerate() {
            let rank_w = RANK_WEIGHT / (slot as u64 + 1);
            let gate = analysis.gate;
            let cell = ctx.circuit.gate_type(gate).name().to_owned();
            let region = ctx
                .circuit
                .observable_outputs(gate)
                .iter()
                .next()
                .unwrap_or(usize::MAX);
            let votes = [
                (Key::Gate(gate.index()), GATE_SPECIFICITY),
                (Key::Cell(cell), CELL_SPECIFICITY),
                (Key::Region(region), REGION_SPECIFICITY),
            ];
            for (key, specificity) in votes {
                let b = buckets.entry(key).or_default();
                b.score += rank_w * specificity;
                if b.last_device != Some(device) {
                    b.last_device = Some(device);
                    b.devices += 1;
                    if b.examples.len() < config.max_examples {
                        b.examples.push(name.clone());
                    }
                }
            }
        }
    }

    let mut ranked: Vec<(Key, Bucket)> = buckets.into_iter().collect();
    ranked.sort_by(|(ka, ba), (kb, bb)| {
        bb.score
            .cmp(&ba.score)
            .then(bb.devices.cmp(&ba.devices))
            .then(tie_hash(config.seed, ka).cmp(&tie_hash(config.seed, kb)))
            .then_with(|| key_text(ka).cmp(&key_text(kb)))
    });
    ranked.truncate(config.max_root_causes);

    ranked
        .into_iter()
        .map(|(key, bucket)| {
            let kind = match key {
                Key::Gate(i) => {
                    let gate = icd_netlist::GateId::from_index(i);
                    RootCauseKind::Gate {
                        name: ctx.circuit.gate_name(gate),
                        cell: ctx.circuit.gate_type(gate).name().to_owned(),
                    }
                }
                Key::Cell(cell) => RootCauseKind::CellType { cell },
                Key::Region(usize::MAX) => RootCauseKind::Region {
                    output: usize::MAX,
                    coordinate: "unobserved".to_owned(),
                },
                Key::Region(output) => RootCauseKind::Region {
                    output,
                    coordinate: ctx.circuit.tester_coordinate(output).to_string(),
                },
            };
            RootCause {
                kind,
                devices: bucket.devices,
                score: bucket.score,
                share_permille: permille(bucket.devices, diagnosed.len()),
                examples: bucket.examples,
            }
        })
        .collect()
}

/// Assembles the full [`VolumeReport`] from per-device outcomes.
///
/// `reports` holds every device whose diagnosis *succeeded* (including
/// test escapes — reports with no failing pattern), in input order;
/// `devices_failed` / `devices_skipped` count the rest. Both the CLI and
/// the server build their responses through this single function, so the
/// two renderings of the same population are byte-identical.
pub fn assemble_report(
    ctx: &ExperimentContext,
    hash: ContentHash,
    reports: &[(String, &FlowReport)],
    devices_failed: usize,
    devices_skipped: usize,
    config: &AggregationConfig,
) -> VolumeReport {
    let diagnosed: Vec<(String, &FlowReport)> = reports
        .iter()
        .filter(|(_, r)| !r.is_escape() && !r.analyses.is_empty())
        .map(|(n, r)| (n.clone(), *r))
        .collect();
    let escaped = reports.iter().filter(|(_, r)| r.is_escape()).count();
    // Diagnosable-but-empty reports (failing patterns, zero suspects)
    // count against coverage like failures: the run learned nothing.
    let empty = reports.len() - diagnosed.len() - escaped;
    let failing_population = diagnosed.len() + empty + devices_failed + devices_skipped;
    VolumeReport {
        netlist_hash: hash.to_string(),
        devices_total: reports.len() + devices_failed + devices_skipped,
        devices_diagnosed: diagnosed.len(),
        devices_escaped: escaped,
        devices_failed: devices_failed + empty,
        devices_skipped,
        coverage_permille: permille(diagnosed.len(), failing_population),
        root_causes: aggregate(ctx, &diagnosed, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_bench::flow::analyze_datalog_report;
    use icd_faultsim::{run_test_multi, FaultyGate};
    use icd_logic::Lv;
    use icd_netlist::generator;
    use std::sync::Arc;

    fn ctx() -> Arc<ExperimentContext> {
        Arc::new(ExperimentContext::from_preset(&generator::circuit_a(), 16, 12).unwrap())
    }

    fn failing_report(ctx: &ExperimentContext, seed: u64) -> (icd_netlist::GateId, FlowReport) {
        // An output-inverting static defect on a deterministic instance:
        // the flip may be masked downstream, so probe gates starting at
        // `seed` until one produces a failing datalog.
        let num_gates = ctx.circuit.num_gates();
        for offset in 0..num_gates {
            let gate = ctx
                .circuit
                .gates()
                .nth((seed as usize + offset) % num_gates)
                .unwrap();
            let good = ctx.circuit.gate_type(gate).table().clone();
            let flipped = icd_logic::TruthTable::from_fn(good.inputs(), |bits| {
                !matches!(good.eval_bits(bits), Lv::One)
            });
            let faulty = FaultyGate::new(gate, icd_faultsim::FaultyBehavior::Static(flipped));
            let datalog = run_test_multi(&ctx.circuit, &ctx.patterns, &[faulty]).unwrap();
            if datalog.all_pass() {
                continue;
            }
            let report = analyze_datalog_report(ctx, &datalog).unwrap();
            return (gate, report);
        }
        panic!("no excitable gate found");
    }

    #[test]
    fn repeated_gate_dominates_the_ranking() {
        let ctx = ctx();
        let (gate, report) = failing_report(&ctx, 3);
        let named: Vec<(String, &FlowReport)> = (0..4)
            .map(|i| (format!("device-{i:03}.log"), &report))
            .collect();
        let ranked = aggregate(&ctx, &named, &AggregationConfig::default());
        assert!(!ranked.is_empty());
        let top = &ranked[0];
        match &top.kind {
            RootCauseKind::Gate { name, .. } => {
                assert_eq!(*name, ctx.circuit.gate_name(gate));
            }
            other => panic!("expected the planted gate on top, got {other:?}"),
        }
        assert_eq!(top.devices, 4);
        assert_eq!(top.share_permille, 1000);
        assert_eq!(top.examples.len(), 3, "examples capped at max_examples");
    }

    #[test]
    fn ordering_is_input_order_independent() {
        let ctx = ctx();
        let (_, r1) = failing_report(&ctx, 1);
        let (_, r2) = failing_report(&ctx, 5);
        let fwd = vec![("a".to_owned(), &r1), ("b".to_owned(), &r2)];
        let cfg = AggregationConfig::default();
        let ranked_fwd = aggregate(&ctx, &fwd, &cfg);
        let rev = vec![("b".to_owned(), &r2), ("a".to_owned(), &r1)];
        let ranked_rev = aggregate(&ctx, &rev, &cfg);
        let kinds_fwd: Vec<_> = ranked_fwd.iter().map(|r| r.kind.clone()).collect();
        let kinds_rev: Vec<_> = ranked_rev.iter().map(|r| r.kind.clone()).collect();
        assert_eq!(kinds_fwd, kinds_rev);
        let scores_fwd: Vec<_> = ranked_fwd.iter().map(|r| r.score).collect();
        let scores_rev: Vec<_> = ranked_rev.iter().map(|r| r.score).collect();
        assert_eq!(scores_fwd, scores_rev);
    }

    #[test]
    fn assemble_report_counts_escapes_and_failures() {
        let ctx = ctx();
        let (_, failing) = failing_report(&ctx, 2);
        let clean = run_test_multi(&ctx.circuit, &ctx.patterns, &[]).unwrap();
        assert!(clean.all_pass());
        let escape = analyze_datalog_report(&ctx, &clean).unwrap();
        let reports = vec![
            ("dev-a".to_owned(), &failing),
            ("dev-b".to_owned(), &escape),
        ];
        let report = assemble_report(
            &ctx,
            ctx.circuit.content_hash(),
            &reports,
            1,
            2,
            &AggregationConfig::default(),
        );
        assert_eq!(report.devices_total, 5);
        assert_eq!(report.devices_diagnosed, 1);
        assert_eq!(report.devices_escaped, 1);
        assert_eq!(report.devices_failed, 1);
        assert_eq!(report.devices_skipped, 2);
        // 1 diagnosed of a failing population of 4 (1 + 1 failed + 2 skipped).
        assert_eq!(report.coverage_permille, 250);
        assert_eq!(report.netlist_hash, ctx.circuit.content_hash().to_string());
        assert!(!report.root_causes.is_empty());
    }
}
