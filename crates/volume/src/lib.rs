//! Multi-observation volume diagnosis.
//!
//! The paper's per-device flow answers "what is wrong with *this*
//! device". Production test generates thousands of failing datalogs per
//! design; the question that matters there is "what is *systematically*
//! wrong with this design or process". This crate treats many datalogs
//! of one design as a single workload:
//!
//! * [`VolumeRun`] fingerprints the netlist ([`icd_netlist::ContentHash`]),
//!   restores a persisted truth-table snapshot keyed by the fingerprint
//!   ([`snapshot`]), fans the devices through the batch engine's
//!   deterministic merge, and writes the warmed cache back out.
//! * [`aggregate`](crate::aggregate::aggregate) buckets per-device
//!   suspects by gate instance, cell type and fanout-cone region with
//!   rank-weighted affinity scores and a seeded deterministic tie-break.
//! * [`VolumeReport`] is the typed result — per-root-cause device
//!   counts, example datalogs and failing-population coverage — with a
//!   canonical JSON rendering that is byte-identical at any worker
//!   count.
//! * [`population`] synthesizes ground-truth corpora with one planted
//!   systematic defect, the accuracy yardstick for everything above.
//!
//! Everything is std-only, like the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]

pub mod aggregate;
pub mod population;
pub mod report;
pub mod run;
pub mod snapshot;

pub use aggregate::{assemble_report, AggregationConfig};
pub use population::{synthesize_population, PlantedDefect, Population, PopulationConfig};
pub use report::{RootCause, RootCauseKind, VolumeReport};
pub use run::{VolumeInput, VolumeOptions, VolumeOutcome, VolumeRun, VolumeRunStats};
pub use snapshot::{snapshot_path, SnapshotError, SNAPSHOT_HEADER};
