//! Synthetic multi-device populations with a planted systematic root
//! cause — the ground-truth input for volume-diagnosis accuracy tests
//! and `icdiag gen --devices N --defect-rate R`.
//!
//! A systematic defect (a layout hotspot, a marginal via) reproduces on
//! the *same* gate across a fraction of the failing population, while
//! the rest of the population fails for unrelated random reasons. The
//! synthesizer plants exactly that: one fixed excitable defect appearing
//! on `defect_rate` permille of devices (spread evenly, not clustered),
//! background defects drawn from the rest of the pool on the others, and
//! a mix of devices carrying the planted defect *plus* a background one
//! — volume diagnosis must rank the planted gate first without any
//! assumption on how the remaining failures distribute.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use icd_bench::flow::{ExperimentContext, FlowError};
use icd_defects::{sample_defects, MixConfig};
use icd_faultsim::{run_test_multi, Datalog, FaultyGate};
use icd_netlist::GateId;

/// How a planted population is composed.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Devices to synthesize.
    pub devices: usize,
    /// Fraction of devices carrying the planted defect, in permille.
    pub defect_rate_permille: u32,
    /// Master seed; the population is a pure function of it.
    pub seed: u64,
    /// Defect samples drawn per cell type for the background pool.
    pub samples_per_cell: usize,
    /// Every n-th planted device also carries a background defect
    /// (0 = never) — the "no assumption on failing patterns" stressor.
    pub multi_defect_every: usize,
}

impl PopulationConfig {
    /// A population of `devices` devices with the default composition:
    /// three quarters carry the planted defect, every third of those
    /// also carries a background defect.
    pub fn new(devices: usize, seed: u64) -> Self {
        PopulationConfig {
            devices,
            defect_rate_permille: 750,
            seed,
            samples_per_cell: 4,
            multi_defect_every: 3,
        }
    }
}

/// The planted systematic defect — the ground truth a volume run is
/// measured against.
#[derive(Debug, Clone)]
pub struct PlantedDefect {
    /// The defective gate instance.
    pub gate: GateId,
    /// Its instance name.
    pub gate_name: String,
    /// Its cell type.
    pub cell: String,
}

/// A synthesized device population.
#[derive(Debug, Clone)]
pub struct Population {
    /// One failing datalog per device, in device order.
    pub datalogs: Vec<Datalog>,
    /// The planted systematic defect.
    pub planted: PlantedDefect,
    /// How many devices carry the planted defect.
    pub planted_devices: usize,
}

fn mix_seed(seed: u64, name: &str) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    name.hash(&mut h);
    h.finish()
}

/// Builds the observable defect pool over the circuit's cell population
/// (stuck/bridge classes only, like the batch synthesizer).
fn defect_pool(
    ctx: &ExperimentContext,
    config: &PopulationConfig,
) -> Result<Vec<FaultyGate>, FlowError> {
    let mix = MixConfig {
        stuck: 0.6,
        bridge: 0.4,
        delay: 0.0,
        ..MixConfig::default()
    };
    let mut pool: Vec<FaultyGate> = Vec::new();
    for cell in ctx.cells.iter() {
        let instances = ctx.instances_of(cell.name());
        if instances.is_empty() {
            continue;
        }
        let sample = sample_defects(
            cell.netlist(),
            config.samples_per_cell,
            &mix,
            mix_seed(config.seed, cell.name()),
        )?;
        for (k, injected) in sample.iter().enumerate() {
            let Some(behavior) = injected.characterization.behavior.clone() else {
                continue;
            };
            let gate = instances[k % instances.len()];
            pool.push(FaultyGate::new(gate, behavior));
        }
    }
    Ok(pool)
}

/// Whether device `i` of the population carries the planted defect under
/// `rate` permille — an even Bresenham spread, so planted devices are
/// interleaved with background ones instead of clustered at the front.
fn is_planted(i: usize, rate: u32) -> bool {
    let rate = u64::from(rate.min(1000));
    ((i as u64 + 1) * rate) / 1000 != (i as u64 * rate) / 1000
}

/// Synthesizes a population with one planted systematic root cause.
///
/// Deterministic in `(ctx, config)`. Every returned datalog fails at
/// least one pattern. The population may be shorter than
/// `config.devices` when the circuit's defect pool cannot excite enough
/// failing devices, but the planted defect itself is always excitable —
/// [`FlowError::NotObservable`] is returned when no pool candidate
/// produces a failing datalog at all.
///
/// # Errors
///
/// Returns an error when defect sampling or tester emulation fails
/// structurally, or when nothing in the pool is excitable.
pub fn synthesize_population(
    ctx: &ExperimentContext,
    config: &PopulationConfig,
) -> Result<Population, FlowError> {
    let pool = defect_pool(ctx, config)?;

    // The planted defect: the first pool candidate the test set excites.
    let mut planted: Option<(FaultyGate, Datalog)> = None;
    for candidate in &pool {
        let datalog = run_test_multi(&ctx.circuit, &ctx.patterns, std::slice::from_ref(candidate))?;
        if !datalog.all_pass() {
            planted = Some((candidate.clone(), datalog));
            break;
        }
    }
    let Some((planted_fault, planted_datalog)) = planted else {
        return Err(FlowError::NotObservable);
    };
    let background: Vec<&FaultyGate> = pool
        .iter()
        .filter(|f| f.gate != planted_fault.gate)
        .collect();

    let mut datalogs = Vec::with_capacity(config.devices);
    let mut planted_devices = 0usize;
    let mut planted_seen = 0usize;
    for i in 0..config.devices {
        if is_planted(i, config.defect_rate_permille) {
            planted_seen += 1;
            let multi = config.multi_defect_every > 0
                && !background.is_empty()
                && planted_seen.is_multiple_of(config.multi_defect_every);
            let mut faulty = vec![planted_fault.clone()];
            if multi {
                faulty.push(background[(i * 7) % background.len()].clone());
            }
            let datalog = run_test_multi(&ctx.circuit, &ctx.patterns, &faulty)?;
            // A background defect can in principle mask the planted one
            // back to all-pass; fall back to the planted defect alone so
            // the device stays in the failing population.
            if datalog.all_pass() {
                datalogs.push(planted_datalog.clone());
            } else {
                datalogs.push(datalog);
            }
            planted_devices += 1;
        } else {
            // A background-only device: first excitable candidate,
            // cycling from a device-dependent offset.
            let mut found = false;
            for k in 0..background.len() {
                let candidate = background[(i * 13 + k) % background.len()];
                let datalog =
                    run_test_multi(&ctx.circuit, &ctx.patterns, std::slice::from_ref(candidate))?;
                if !datalog.all_pass() {
                    datalogs.push(datalog);
                    found = true;
                    break;
                }
            }
            if !found {
                // No excitable background defect: keep the population at
                // full size with another planted device rather than
                // silently shrinking it.
                datalogs.push(planted_datalog.clone());
                planted_devices += 1;
            }
        }
    }

    Ok(Population {
        datalogs,
        planted: PlantedDefect {
            gate: planted_fault.gate,
            gate_name: ctx.circuit.gate_name(planted_fault.gate),
            cell: ctx.circuit.gate_type(planted_fault.gate).name().to_owned(),
        },
        planted_devices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_netlist::generator;
    use std::sync::Arc;

    fn ctx() -> Arc<ExperimentContext> {
        Arc::new(ExperimentContext::from_preset(&generator::circuit_a(), 16, 12).unwrap())
    }

    #[test]
    fn bresenham_spread_matches_rate() {
        let planted = (0..1000).filter(|&i| is_planted(i, 750)).count();
        assert_eq!(planted, 750);
        let planted = (0..8).filter(|&i| is_planted(i, 500)).count();
        assert_eq!(planted, 4);
        assert!(!is_planted(0, 500), "rate 500 alternates starting pass");
        assert!(is_planted(1, 500));
        assert_eq!((0..64).filter(|&i| is_planted(i, 0)).count(), 0);
        assert_eq!((0..64).filter(|&i| is_planted(i, 1000)).count(), 64);
    }

    #[test]
    fn population_is_deterministic_and_all_failing() {
        let ctx = ctx();
        let cfg = PopulationConfig::new(8, 0x90b);
        let a = synthesize_population(&ctx, &cfg).unwrap();
        let b = synthesize_population(&ctx, &cfg).unwrap();
        assert_eq!(a.datalogs.len(), 8);
        assert_eq!(a.planted.gate, b.planted.gate);
        assert_eq!(a.planted_devices, b.planted_devices);
        assert!(a.planted_devices >= 4, "most devices carry the plant");
        for (x, y) in a.datalogs.iter().zip(&b.datalogs) {
            assert_eq!(x, y);
            assert!(!x.all_pass());
        }
    }

    #[test]
    fn zero_rate_still_fills_the_population() {
        let ctx = ctx();
        let mut cfg = PopulationConfig::new(4, 0x5eed);
        cfg.defect_rate_permille = 0;
        let p = synthesize_population(&ctx, &cfg).unwrap();
        assert_eq!(p.datalogs.len(), 4);
        for d in &p.datalogs {
            assert!(!d.all_pass());
        }
    }
}
