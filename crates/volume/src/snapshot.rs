//! Persistent cross-batch cache snapshots keyed by the netlist's
//! structural fingerprint.
//!
//! A volume run derives one exhaustive truth table per cell type — `2^n`
//! switch-level solves each. Those tables depend only on the cell
//! library, which the netlist fingerprint covers (the circuit embeds its
//! types), so a second batch over the same design can skip the solves
//! entirely by restoring a snapshot written by the first.
//!
//! The format is deliberately line-oriented text, one artifact per line:
//!
//! ```text
//! icd-volume-snapshot v1
//! netlist 066c9881c41fe856
//! table INV 1 10
//! table NAND2 2 1110
//! ```
//!
//! `table <cell> <inputs> <entries>` spells the table's `2^inputs`
//! entries as `0`/`1`/`U` characters in index order. Snapshots are an
//! optimization, never a correctness input: any load failure (missing
//! file, wrong fingerprint, corrupt line) degrades to a cold start.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use icd_core::AnalysisCache;
use icd_logic::{Lv, TruthTable};
use icd_netlist::ContentHash;

/// First line of every snapshot file.
pub const SNAPSHOT_HEADER: &str = "icd-volume-snapshot v1";

/// Why a snapshot failed to load.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read.
    Io(io::Error),
    /// A line did not parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The snapshot was written for a different netlist.
    WrongNetlist {
        /// Fingerprint the caller expected.
        expected: String,
        /// Fingerprint recorded in the file.
        found: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Malformed { line, message } => {
                write!(f, "snapshot line {line}: {message}")
            }
            SnapshotError::WrongNetlist { expected, found } => {
                write!(f, "snapshot is for netlist {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Where the snapshot for `hash` lives under `dir`.
pub fn snapshot_path(dir: &Path, hash: ContentHash) -> PathBuf {
    dir.join(format!("{hash}.tables"))
}

fn lv_char(lv: Lv) -> char {
    match lv {
        Lv::Zero => '0',
        Lv::One => '1',
        Lv::U => 'U',
    }
}

fn lv_from_char(c: char) -> Option<Lv> {
    match c {
        '0' => Some(Lv::Zero),
        '1' => Some(Lv::One),
        'U' => Some(Lv::U),
        _ => None,
    }
}

/// Writes every truth table currently held by `cache` to `path`,
/// creating parent directories as needed. Returns the number of tables
/// written.
///
/// The write goes through a process-unique temporary file and a rename,
/// so a concurrent reader never observes a half-written snapshot.
///
/// # Errors
///
/// Returns the underlying I/O error; the caller treats save failures as
/// a lost optimization, not a run failure.
pub fn save(cache: &AnalysisCache, hash: ContentHash, path: &Path) -> io::Result<usize> {
    let mut text = String::new();
    text.push_str(SNAPSHOT_HEADER);
    text.push('\n');
    text.push_str(&format!("netlist {hash}\n"));
    let tables = cache.table_snapshot();
    let mut written = 0usize;
    for (name, table) in &tables {
        if name.contains(char::is_whitespace) {
            // A name with whitespace cannot round-trip the line format;
            // no standard cell has one, so just leave it out.
            continue;
        }
        text.push_str("table ");
        text.push_str(name);
        text.push_str(&format!(" {} ", table.inputs()));
        for &lv in table.entries() {
            text.push(lv_char(lv));
        }
        text.push('\n');
        written += 1;
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(written)
}

/// Loads the snapshot at `path` into `cache`, validating that it was
/// written for the netlist fingerprinted by `hash`. Returns the number
/// of tables preloaded.
///
/// Preloaded tables count as neither cache hits nor misses; the first
/// real lookup on each is a hit that skips the `2^n` derivation.
///
/// # Errors
///
/// Any failure ([`SnapshotError`]) leaves the cache in a usable state —
/// tables preloaded before a corrupt line stay preloaded, and the caller
/// simply proceeds cold for the rest.
pub fn load(cache: &AnalysisCache, hash: ContentHash, path: &Path) -> Result<usize, SnapshotError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines().enumerate();
    let malformed = |line: usize, message: String| SnapshotError::Malformed {
        line: line + 1,
        message,
    };
    match lines.next() {
        Some((_, first)) if first.trim() == SNAPSHOT_HEADER => {}
        Some((n, first)) => {
            return Err(malformed(n, format!("bad header {first:?}")));
        }
        None => return Err(malformed(0, "empty snapshot".into())),
    }
    match lines.next() {
        Some((n, line)) => {
            let found = line
                .strip_prefix("netlist ")
                .map(str::trim)
                .ok_or_else(|| malformed(n, format!("expected netlist line, got {line:?}")))?;
            if ContentHash::parse(found) != Some(hash) {
                return Err(SnapshotError::WrongNetlist {
                    expected: hash.to_string(),
                    found: found.to_owned(),
                });
            }
        }
        None => return Err(malformed(1, "missing netlist line".into())),
    }
    let mut loaded = 0usize;
    for (n, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("table") => {}
            _ => return Err(malformed(n, format!("expected table line, got {line:?}"))),
        }
        let name = words
            .next()
            .ok_or_else(|| malformed(n, "table line missing cell name".into()))?;
        let inputs: usize = words
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| malformed(n, "table line missing input count".into()))?;
        let entry_text = words
            .next()
            .ok_or_else(|| malformed(n, "table line missing entries".into()))?;
        if words.next().is_some() {
            return Err(malformed(n, "trailing words on table line".into()));
        }
        let entries: Vec<Lv> = entry_text
            .chars()
            .map(lv_from_char)
            .collect::<Option<_>>()
            .ok_or_else(|| malformed(n, format!("bad entry character in {entry_text:?}")))?;
        let table = TruthTable::from_entries(inputs, entries)
            .map_err(|e| malformed(n, format!("bad table: {e}")))?;
        cache.preload_table(name, std::sync::Arc::new(table));
        loaded += 1;
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("icd-volume-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn hash_of(byte: u8) -> ContentHash {
        ContentHash::parse(&format!("{:016x}", u64::from(byte))).unwrap()
    }

    #[test]
    fn round_trips_tables_through_disk() {
        let dir = temp_dir("round");
        let hash = hash_of(7);
        let warm = AnalysisCache::new();
        let inv = TruthTable::from_entries(1, vec![Lv::One, Lv::Zero]).unwrap();
        let nand = TruthTable::from_entries(2, vec![Lv::One, Lv::One, Lv::One, Lv::Zero]).unwrap();
        warm.preload_table("INV", Arc::new(inv.clone()));
        warm.preload_table("NAND2", Arc::new(nand.clone()));
        let path = snapshot_path(&dir, hash);
        assert_eq!(save(&warm, hash, &path).unwrap(), 2);

        let cold = AnalysisCache::new();
        assert_eq!(load(&cold, hash, &path).unwrap(), 2);
        let restored = cold.table_snapshot();
        assert_eq!(restored.len(), 2);
        assert_eq!(*restored[0].1, inv);
        assert_eq!(*restored[1].1, nand);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_netlist_is_rejected() {
        let dir = temp_dir("wrong");
        let warm = AnalysisCache::new();
        warm.preload_table(
            "INV",
            Arc::new(TruthTable::from_entries(1, vec![Lv::One, Lv::Zero]).unwrap()),
        );
        let path = dir.join("snap.tables");
        save(&warm, hash_of(1), &path).unwrap();
        let cold = AnalysisCache::new();
        assert!(matches!(
            load(&cold, hash_of(2), &path),
            Err(SnapshotError::WrongNetlist { .. })
        ));
        assert!(cold.table_snapshot().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_reported_with_position() {
        let dir = temp_dir("corrupt");
        let path = dir.join("snap.tables");
        let hash = hash_of(3);
        std::fs::write(
            &path,
            format!("{SNAPSHOT_HEADER}\nnetlist {hash}\ntable INV 1 1X\n"),
        )
        .unwrap();
        let cache = AnalysisCache::new();
        match load(&cache, hash, &path) {
            Err(SnapshotError::Malformed { line: 3, .. }) => {}
            other => panic!("expected malformed line 3, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = temp_dir("missing");
        let cache = AnalysisCache::new();
        assert!(matches!(
            load(&cache, hash_of(4), &dir.join("absent.tables")),
            Err(SnapshotError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
