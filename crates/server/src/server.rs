//! The diagnosis daemon: accept loop, connection state machine, retry
//! and drain policy.
//!
//! One OS thread per connection (std-only — no async runtime exists in
//! this build environment), all of them feeding one shared
//! [`DiagnosisService`] whose worker pool bounds the actual diagnosis
//! concurrency. The per-connection thread is the request's *coordinator*:
//! it parses frames, owns the retry loop, and streams progress frames
//! back — workers never block on sockets and sockets never block
//! workers.
//!
//! A connection walks a small state machine:
//!
//! ```text
//!        ┌────────────── Goodbye (drain reached us) ◄──┐
//!        ▼                                             │
//! Idle ──read frame──► Serving ──response written──► Idle
//!   │                     │
//!   │ idle timeout        │ desynchronizing ProtocolError,
//!   │ clean EOF           │ stalled mid-frame, or I/O failure
//!   ▼                     ▼
//! Closed ◄── Error frame + close
//! ```
//!
//! Frame-bounded protocol errors (bad crc, unknown type) answer with an
//! `Error` frame and return to `Idle` — one corrupt frame does not cost
//! the connection, and nothing any client sends can cost the daemon.

use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use icd_engine::{
    summarize_report, CancelToken, DiagnosisService, ExperimentContext, FlowError, FlowReport,
    JobError, ServiceError, StreamEvent,
};
use icd_faultsim::NoiseRng;
use icd_obs::{EventLog, TraceContext};

use crate::chaos::ChaosPanics;
use crate::frame::{
    self, ErrorCode, Frame, FrameType, Header, ProtocolError, ResponseStatus, HEADER_LEN,
};
use crate::retry::BackoffConfig;
use crate::stats::{LiveStats, RequestKind, RequestOutcome};

/// All server counters are scheduling-stable per-run sums.
fn count(name: &'static str, delta: u64) {
    icd_obs::counter(name, delta, icd_obs::Stability::Stable);
}

/// Everything tunable about one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads in the shared diagnosis pool.
    pub workers: usize,
    /// Bounded job queue capacity behind those workers.
    pub queue_capacity: usize,
    /// How long one admission attempt may wait for queue space before
    /// it counts as a `Busy` transient (the retry loop sits above this).
    pub submit_wait: Duration,
    /// Retry schedule for transient failures (queue-full, worker panic).
    pub backoff: BackoffConfig,
    /// Deadline applied when a request carries `deadline_ms = 0`.
    pub default_deadline: Duration,
    /// A connection with no complete frame for this long is closed.
    pub idle_timeout: Duration,
    /// How long [`Server::run`] waits for in-flight requests at
    /// shutdown before hard-cancelling what remains.
    pub drain_deadline: Duration,
    /// Largest payload a client may send.
    pub max_payload: u32,
    /// Seed for the per-connection backoff jitter streams.
    pub jitter_seed: u64,
    /// Optional seeded worker-panic injection (the chaos harness).
    pub chaos_panics: Option<ChaosPanics>,
    /// Optional rotating JSONL event log: one structured record per
    /// completed `Request`/`Volume` frame (trace id, outcome, timings,
    /// span forest, point events).
    pub event_log: Option<Arc<EventLog>>,
    /// Requests slower than this are flagged `"slow": true` in their
    /// event-log record and counted under `server.requests_slow`.
    pub slow_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            submit_wait: Duration::from_millis(100),
            backoff: BackoffConfig::default(),
            default_deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(10),
            max_payload: frame::DEFAULT_MAX_PAYLOAD,
            jitter_seed: 0x01cd_5eed,
            chaos_panics: None,
            event_log: None,
            slow_threshold: Duration::from_secs(1),
        }
    }
}

/// Shared mutable server state (accept loop, handles, connections).
struct ServerState {
    draining: AtomicBool,
    drain_token: CancelToken,
    active_requests: AtomicUsize,
    connection_seq: AtomicUsize,
    stats: LiveStats,
}

/// A clonable remote control for a running server: signal shutdown from
/// another thread (or from the connection that received a `Shutdown`
/// frame) and watch the drain flag.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to drain and exit: new connections are refused,
    /// in-flight requests finish (until the drain deadline), then
    /// [`Server::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::Acquire)
    }
}

/// How a finished [`Server::run`] drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every in-flight request completed within the drain deadline.
    Clean,
    /// The deadline expired; remaining requests were hard-cancelled via
    /// the drain token (they surface `Cancelled`, the pool stays sane).
    Forced,
}

/// The daemon: a bound listener plus the shared diagnosis service.
pub struct Server {
    listener: TcpListener,
    service: Arc<DiagnosisService>,
    config: Arc<ServerConfig>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and builds the shared
    /// diagnosis service (good-machine simulation runs here, once).
    ///
    /// # Errors
    ///
    /// I/O errors from binding; flow errors from the good simulation
    /// are surfaced as [`io::ErrorKind::InvalidInput`].
    pub fn bind(
        addr: &str,
        ctx: Arc<ExperimentContext>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let mut service = DiagnosisService::new(
            ctx,
            config.workers,
            config.queue_capacity,
            config.submit_wait,
        )
        .map_err(|e| io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        if let Some(chaos) = &config.chaos_panics {
            service = service.with_job_hook(chaos.hook());
        }
        Ok(Server {
            listener,
            service: Arc::new(service),
            config: Arc::new(config),
            state: Arc::new(ServerState {
                draining: AtomicBool::new(false),
                drain_token: CancelToken::new(),
                active_requests: AtomicUsize::new(0),
                connection_seq: AtomicUsize::new(0),
                stats: LiveStats::new(),
            }),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates the OS's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control for this server.
    ///
    /// # Errors
    ///
    /// Propagates the OS's `local_addr` failure.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            state: Arc::clone(&self.state),
            addr: self.local_addr()?,
        })
    }

    /// Runs the accept loop until [`ServerHandle::shutdown`] (or a
    /// client `Shutdown` frame), then drains and returns how.
    ///
    /// # Errors
    ///
    /// Only a fatal `accept` failure (not per-connection errors, which
    /// are contained and counted).
    pub fn run(self) -> io::Result<DrainOutcome> {
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.state.draining.load(Ordering::Acquire) {
                count("server.connections_refused", 1);
                refuse_draining(stream);
                break;
            }
            count("server.connections_accepted", 1);
            let seq = self.state.connection_seq.fetch_add(1, Ordering::Relaxed);
            let conn = Connection {
                service: Arc::clone(&self.service),
                config: Arc::clone(&self.config),
                state: Arc::clone(&self.state),
                jitter: NoiseRng::new(self.config.jitter_seed ^ (seq as u64).wrapping_mul(0x9e37)),
            };
            let handle = thread::Builder::new()
                .name(format!("icd-conn-{seq}"))
                .spawn(move || conn.serve(stream, peer))?;
            connections.push(handle);
            // Reap finished connection threads so the vec stays bounded.
            connections.retain(|h| !h.is_finished());
        }

        // Drain: wait for in-flight requests, then hard-cancel leftovers.
        let deadline = Instant::now() + self.config.drain_deadline;
        let mut outcome = DrainOutcome::Clean;
        while self.state.active_requests.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                outcome = DrainOutcome::Forced;
                self.state.drain_token.cancel();
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        // Pool settles (bounded even when forced: cancelled jobs are
        // skipped at their boundary checks, running ones finish).
        let settle = deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(200));
        self.service.wait_idle(settle);
        // Connection threads exit on their own (their sockets poll the
        // drain flag at least every poll interval).
        for h in connections {
            let _ = h.join();
        }
        match outcome {
            DrainOutcome::Clean => count("server.drain_clean", 1),
            DrainOutcome::Forced => count("server.drain_forced", 1),
        }
        Ok(outcome)
    }
}

/// Tells a client arriving mid-drain why it is being turned away.
fn refuse_draining(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = frame::write_frame(
        &mut stream,
        &error_frame(0, ErrorCode::Draining, "server is draining"),
    );
}

fn error_frame(request_id: u64, code: ErrorCode, message: &str) -> Frame {
    let mut payload = Vec::with_capacity(1 + message.len());
    payload.push(code as u8);
    payload.extend_from_slice(message.as_bytes());
    Frame {
        frame_type: FrameType::Error,
        request_id,
        trace_id: None,
        payload,
    }
}

fn report_frame(request_id: u64, status: ResponseStatus, summary: &str) -> Frame {
    let mut payload = Vec::with_capacity(1 + summary.len());
    payload.push(status as u8);
    payload.extend_from_slice(summary.as_bytes());
    Frame {
        frame_type: FrameType::Report,
        request_id,
        trace_id: None,
        payload,
    }
}

/// How one attempt to read a frame under the poll loop ended.
enum PollRead {
    Frame {
        frame: Frame,
        /// When the header was complete and decoding proper began —
        /// the start of the request's `server.decode` trace span.
        decode_start: Instant,
        /// Header-complete to frame-validated (µs); includes reading
        /// the payload off the socket.
        decode_us: u64,
    },
    /// Clean close at a frame boundary.
    Eof,
    /// No complete frame within the idle budget (nothing read: idle;
    /// partially read: a stalled/slow-loris peer).
    TimedOut {
        mid_frame: bool,
    },
    /// The drain flag flipped while the connection was idle.
    Draining,
    Protocol(ProtocolError),
    Io,
}

/// Interval at which blocked reads wake to check the drain flag and the
/// idle budget. Bounds how stale a drain signal can go unnoticed.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

struct Connection {
    service: Arc<DiagnosisService>,
    config: Arc<ServerConfig>,
    state: Arc<ServerState>,
    jitter: NoiseRng,
}

impl Connection {
    fn serve(mut self, mut stream: TcpStream, _peer: SocketAddr) {
        if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
            || stream
                .set_write_timeout(Some(self.config.idle_timeout))
                .is_err()
            || stream.set_nodelay(true).is_err()
        {
            return;
        }
        loop {
            match self.read_frame_polled(&mut stream) {
                PollRead::Frame {
                    frame: f,
                    decode_start,
                    decode_us,
                } => {
                    count("server.frames_rx", 1);
                    match f.frame_type {
                        FrameType::Ping => {
                            let t0 = Instant::now();
                            if frame::write_frame(
                                &mut stream,
                                &Frame::bare(FrameType::Pong, f.request_id),
                            )
                            .is_err()
                            {
                                return;
                            }
                            self.state
                                .stats
                                .record_ping(t0.elapsed().as_micros() as u64);
                        }
                        FrameType::Stats => {
                            // Served regardless of drain state: an
                            // operator watching a drain is the moment
                            // stats matter most. The snapshot reads
                            // atomics and clones histograms — service
                            // never pauses.
                            count("server.stats_requests", 1);
                            let json = self.state.stats.snapshot_json(
                                self.service.pending_jobs(),
                                self.state.active_requests.load(Ordering::Acquire),
                                self.state.draining.load(Ordering::Acquire),
                            );
                            count("server.frames_tx", 1);
                            let reply = Frame {
                                frame_type: FrameType::StatsReport,
                                request_id: f.request_id,
                                trace_id: f.trace_id,
                                payload: json.into_bytes(),
                            };
                            if frame::write_frame(&mut stream, &reply).is_err() {
                                return;
                            }
                        }
                        FrameType::Shutdown => {
                            count("server.shutdown_requested", 1);
                            let _ = frame::write_frame(
                                &mut stream,
                                &Frame::bare(FrameType::Goodbye, f.request_id),
                            );
                            self.state.draining.store(true, Ordering::Release);
                            // Wake the accept loop the same way a handle would.
                            if let Ok(addr) = stream.local_addr() {
                                let _ = TcpStream::connect(addr);
                            }
                            return;
                        }
                        FrameType::Request => {
                            if !self.handle_request(&mut stream, &f, decode_start, decode_us) {
                                return;
                            }
                        }
                        FrameType::Volume => {
                            if !self.handle_volume(&mut stream, &f, decode_start, decode_us) {
                                return;
                            }
                        }
                        // A client sending server-side frames is out of
                        // protocol; frame-bounded, answer and continue.
                        _ => {
                            count("server.frames_bad", 1);
                            if frame::write_frame(
                                &mut stream,
                                &error_frame(
                                    f.request_id,
                                    ErrorCode::Protocol,
                                    "unexpected server-to-client frame type",
                                ),
                            )
                            .is_err()
                            {
                                return;
                            }
                        }
                    }
                }
                PollRead::Eof => return,
                PollRead::Draining => {
                    let _ = frame::write_frame(&mut stream, &Frame::bare(FrameType::Goodbye, 0));
                    return;
                }
                PollRead::TimedOut { mid_frame } => {
                    count(
                        if mid_frame {
                            "server.stalled_clients"
                        } else {
                            "server.idle_timeouts"
                        },
                        1,
                    );
                    if mid_frame {
                        let _ = frame::write_frame(
                            &mut stream,
                            &error_frame(
                                0,
                                ErrorCode::Protocol,
                                "frame not completed within the idle budget",
                            ),
                        );
                    }
                    return;
                }
                PollRead::Protocol(p) => {
                    count("server.frames_bad", 1);
                    let ok = frame::write_frame(
                        &mut stream,
                        &error_frame(0, ErrorCode::Protocol, &p.to_string()),
                    )
                    .is_ok();
                    // Frame-bounded errors leave the stream in sync;
                    // anything else must desynchronize-close.
                    if !p.is_frame_bounded() || !ok {
                        return;
                    }
                }
                PollRead::Io => return,
            }
        }
    }

    /// Reads one frame, waking every [`POLL_INTERVAL`] to check the
    /// drain flag and the idle budget.
    fn read_frame_polled(&self, stream: &mut TcpStream) -> PollRead {
        let started = Instant::now();
        let mut header = [0u8; HEADER_LEN];
        let header = match self.fill_polled(stream, &mut header, started, true) {
            Fill::Done => header,
            Fill::CleanEof => return PollRead::Eof,
            Fill::Draining => return PollRead::Draining,
            Fill::TimedOut { any_bytes } => {
                return PollRead::TimedOut {
                    mid_frame: any_bytes,
                }
            }
            Fill::TruncatedEof { got } => {
                return PollRead::Protocol(ProtocolError::Truncated {
                    context: "header",
                    needed: HEADER_LEN,
                    got,
                })
            }
            Fill::Io => return PollRead::Io,
        };
        let decode_start = Instant::now();
        let header: Header = match frame::parse_header(&header, self.config.max_payload) {
            Ok(h) => h,
            Err(p) => return PollRead::Protocol(p),
        };
        let mut payload = vec![0u8; header.payload_len as usize];
        match self.fill_polled(stream, &mut payload, started, false) {
            Fill::Done => {}
            Fill::CleanEof | Fill::TruncatedEof { .. } => {
                return PollRead::Protocol(ProtocolError::Truncated {
                    context: "payload",
                    needed: payload.len(),
                    got: 0,
                })
            }
            Fill::Draining => return PollRead::Draining,
            Fill::TimedOut { .. } => return PollRead::TimedOut { mid_frame: true },
            Fill::Io => return PollRead::Io,
        }
        match frame::finish_frame(&header, payload) {
            Ok(frame) => PollRead::Frame {
                frame,
                decode_start,
                decode_us: decode_start.elapsed().as_micros() as u64,
            },
            Err(p) => PollRead::Protocol(p),
        }
    }

    /// Fills `buf` under the poll loop. `at_boundary` marks the read as
    /// sitting between frames, where EOF is clean and drain may
    /// interrupt; mid-frame, drain waits for the frame (the in-flight
    /// request must not be lost).
    fn fill_polled(
        &self,
        stream: &mut TcpStream,
        buf: &mut [u8],
        started: Instant,
        at_boundary: bool,
    ) -> Fill {
        let mut filled = 0usize;
        while filled < buf.len() {
            if at_boundary && filled == 0 && self.state.draining.load(Ordering::Acquire) {
                return Fill::Draining;
            }
            if started.elapsed() > self.config.idle_timeout {
                return Fill::TimedOut {
                    any_bytes: !at_boundary || filled > 0,
                };
            }
            match stream.read(&mut buf[filled..]) {
                Ok(0) => {
                    if at_boundary && filled == 0 {
                        return Fill::CleanEof;
                    }
                    return Fill::TruncatedEof { got: filled };
                }
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                    ) => {}
                Err(_) => return Fill::Io,
            }
        }
        Fill::Done
    }

    /// Runs one diagnosis request: parse, retry loop, stream, respond —
    /// wrapped in the request's telemetry (trace, live stats, event-log
    /// record). Returns whether the connection should keep serving.
    fn handle_request(
        &mut self,
        stream: &mut TcpStream,
        request: &Frame,
        decode_start: Instant,
        decode_us: u64,
    ) -> bool {
        let t0 = Instant::now();
        count("server.requests_received", 1);
        count("server.requests_total", 1);
        let trace = self.start_trace(request, decode_start, decode_us);
        let (keep, outcome) = self.run_request(stream, request, &trace);
        self.finish_request(
            &trace,
            request.request_id,
            RequestKind::Request,
            outcome,
            t0,
        );
        keep
    }

    /// Builds the request's trace: adopts the client-supplied trace id
    /// (or mints one) and injects the already-measured frame-decode span
    /// as the forest's first root.
    fn start_trace(&self, request: &Frame, decode_start: Instant, decode_us: u64) -> TraceContext {
        let trace = TraceContext::new(request.trace_id.unwrap_or_else(icd_obs::mint_trace_id));
        trace.record_span_external(
            "server.decode",
            decode_start,
            Duration::from_micros(decode_us),
        );
        trace
    }

    /// Records the finished request into the live stats and, when an
    /// event log is configured, writes its structured JSONL record.
    fn finish_request(
        &self,
        trace: &TraceContext,
        request_id: u64,
        kind: RequestKind,
        outcome: RequestOutcome,
        t0: Instant,
    ) {
        let latency_us = t0.elapsed().as_micros() as u64;
        self.state.stats.record_request(kind, outcome, latency_us);
        let slow = latency_us >= self.config.slow_threshold.as_micros() as u64;
        if slow {
            count("server.requests_slow", 1);
        }
        let Some(log) = &self.config.event_log else {
            return;
        };
        let kind_label = match kind {
            RequestKind::Request => "request",
            RequestKind::Volume => "volume",
            RequestKind::Ping => "ping",
        };
        let outcome_label = match outcome {
            RequestOutcome::Clean => "clean",
            RequestOutcome::Degraded => "degraded",
            RequestOutcome::Failed => "failed",
            RequestOutcome::Rejected => "rejected",
        };
        let mut line = String::with_capacity(1024);
        line.push_str(&format!(
            "{{\"trace_id\":\"{:#018x}\",\"request_id\":{},\"kind\":\"{}\",\"outcome\":\"{}\",\"latency_us\":{},\"slow\":{},\"events\":[",
            trace.trace_id(),
            request_id,
            kind_label,
            outcome_label,
            latency_us,
            slow,
        ));
        for (i, ev) in trace.events().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{{\"at_us\":{},\"kind\":", ev.at_us));
            icd_obs::json::write_string(&mut line, ev.kind);
            line.push_str(",\"detail\":");
            icd_obs::json::write_string(&mut line, &ev.detail);
            line.push('}');
        }
        line.push_str("],\"spans\":");
        line.push_str(icd_obs::forest_json(&trace.span_forest(), false).trim_end());
        line.push('}');
        if log.write_line(&line).is_err() {
            count("server.event_log_errors", 1);
        }
    }

    /// The body of one diagnosis request, executed with the trace
    /// entered on the connection thread: parse, retry loop, stream,
    /// respond. Returns `(keep_serving, outcome)`.
    fn run_request(
        &mut self,
        stream: &mut TcpStream,
        request: &Frame,
        trace: &TraceContext,
    ) -> (bool, RequestOutcome) {
        let _entered = trace.enter();
        let _root = icd_obs::span("server.request");
        let Some((deadline_ms, text)) = frame::parse_request_payload(&request.payload) else {
            count("server.requests_bad_payload", 1);
            trace.event(
                "error.bad_payload",
                "request payload too short or not UTF-8",
            );
            let keep = frame::write_frame(
                stream,
                &error_frame(
                    request.request_id,
                    ErrorCode::BadPayload,
                    "request payload too short or not UTF-8",
                )
                .with_trace_id(Some(trace.trace_id())),
            )
            .is_ok();
            return (keep, RequestOutcome::Failed);
        };
        let datalog = match icd_faultsim::datalog_text::parse(text) {
            Ok(d) => d,
            Err(e) => {
                count("server.requests_bad_payload", 1);
                trace.event("error.bad_payload", e.to_string());
                let keep = frame::write_frame(
                    stream,
                    &error_frame(request.request_id, ErrorCode::BadPayload, &e.to_string())
                        .with_trace_id(Some(trace.trace_id())),
                )
                .is_ok();
                return (keep, RequestOutcome::Failed);
            }
        };
        let deadline = if deadline_ms == 0 {
            self.config.default_deadline
        } else {
            Duration::from_millis(u64::from(deadline_ms))
        };
        // The request token hangs off the drain token: a forced drain
        // cancels every in-flight request with one call.
        let token = self.state.drain_token.child_with_deadline(Some(deadline));
        let id = request.request_id;

        self.state.active_requests.fetch_add(1, Ordering::AcqRel);
        let result = self.diagnose_with_retry(stream, id, trace, &datalog, &token);
        self.state.active_requests.fetch_sub(1, Ordering::AcqRel);

        match result {
            Ok(report) => {
                let (status, outcome) = if report.is_degraded() {
                    count("server.requests_degraded", 1);
                    trace.event("degraded", "report shipped with skipped work");
                    (ResponseStatus::Degraded, RequestOutcome::Degraded)
                } else {
                    count("server.requests_ok", 1);
                    (ResponseStatus::Ok, RequestOutcome::Clean)
                };
                let summary = summarize_report(self.service.context(), &report);
                count("server.frames_tx", 1);
                let keep = frame::write_frame(
                    stream,
                    &report_frame(id, status, &summary).with_trace_id(Some(trace.trace_id())),
                )
                .is_ok();
                (keep, outcome)
            }
            Err((code, message)) => {
                let outcome = match code {
                    ErrorCode::DeadlineExceeded => {
                        count("server.requests_deadline_exceeded", 1);
                        RequestOutcome::Failed
                    }
                    ErrorCode::Busy => {
                        count("server.requests_rejected_busy", 1);
                        RequestOutcome::Rejected
                    }
                    _ => {
                        count("server.requests_failed", 1);
                        RequestOutcome::Failed
                    }
                };
                trace.event("error", message.clone());
                let keep = frame::write_frame(
                    stream,
                    &error_frame(id, code, &message).with_trace_id(Some(trace.trace_id())),
                )
                .is_ok();
                (keep, outcome)
            }
        }
    }

    /// Runs one volume request: parse the corpus, diagnose every device
    /// under one deadline token, aggregate, respond with the canonical
    /// volume-report JSON. Returns whether the connection should keep
    /// serving.
    ///
    /// Per-device behaviour mirrors `icdiag volume`: unparseable datalog
    /// texts are skipped (counted, reflected in the report's coverage),
    /// per-device diagnosis failures degrade the report instead of
    /// failing the request. Only an unusable payload or an expired
    /// deadline fails the whole request. Progress/Suspects frames are
    /// streamed per device under the volume request id; clients collect
    /// until the final Report frame.
    fn handle_volume(
        &mut self,
        stream: &mut TcpStream,
        request: &Frame,
        decode_start: Instant,
        decode_us: u64,
    ) -> bool {
        let t0 = Instant::now();
        count("server.volume_requests", 1);
        count("server.requests_total", 1);
        let trace = self.start_trace(request, decode_start, decode_us);
        let (keep, outcome) = self.run_volume(stream, request, &trace);
        self.finish_request(&trace, request.request_id, RequestKind::Volume, outcome, t0);
        keep
    }

    /// The body of one volume request, executed with the trace entered
    /// on the connection thread. Returns `(keep_serving, outcome)`.
    fn run_volume(
        &mut self,
        stream: &mut TcpStream,
        request: &Frame,
        trace: &TraceContext,
    ) -> (bool, RequestOutcome) {
        let _entered = trace.enter();
        let _root = icd_obs::span("server.volume");
        let Some((deadline_ms, devices)) = frame::parse_volume_payload(&request.payload) else {
            count("server.requests_bad_payload", 1);
            trace.event(
                "error.bad_payload",
                "volume payload malformed (length fields or UTF-8)",
            );
            let keep = frame::write_frame(
                stream,
                &error_frame(
                    request.request_id,
                    ErrorCode::BadPayload,
                    "volume payload malformed (length fields or UTF-8)",
                )
                .with_trace_id(Some(trace.trace_id())),
            )
            .is_ok();
            return (keep, RequestOutcome::Failed);
        };
        let mut skipped = 0usize;
        let mut parsed: Vec<(String, icd_faultsim::Datalog)> = Vec::with_capacity(devices.len());
        for (name, text) in devices {
            match icd_faultsim::datalog_text::parse(&text) {
                Ok(d) => parsed.push((name, d)),
                Err(_) => {
                    count("server.volume_devices_skipped", 1);
                    skipped += 1;
                }
            }
        }
        count("server.volume_devices", parsed.len() as u64);
        let deadline = if deadline_ms == 0 {
            self.config.default_deadline
        } else {
            Duration::from_millis(u64::from(deadline_ms))
        };
        let token = self.state.drain_token.child_with_deadline(Some(deadline));
        let id = request.request_id;

        self.state.active_requests.fetch_add(1, Ordering::AcqRel);
        let mut reports: Vec<(String, FlowReport)> = Vec::new();
        let mut failed = 0usize;
        let mut fatal: Option<(ErrorCode, String)> = None;
        for (name, datalog) in &parsed {
            let device_t0 = Instant::now();
            let result = self.diagnose_with_retry(stream, id, trace, datalog, &token);
            trace.event(
                "volume.device",
                format!(
                    "name={name} wall_us={} ok={}",
                    device_t0.elapsed().as_micros(),
                    u8::from(result.is_ok()),
                ),
            );
            match result {
                Ok(report) => reports.push((name.clone(), report)),
                Err((ErrorCode::DeadlineExceeded, message)) => {
                    // The shared deadline is spent; nothing after this
                    // device can complete either.
                    fatal = Some((ErrorCode::DeadlineExceeded, message));
                    break;
                }
                Err((ErrorCode::Internal, message)) if message.contains("connection lost") => {
                    fatal = Some((ErrorCode::Internal, message));
                    break;
                }
                Err(_) => failed += 1,
            }
        }
        self.state.active_requests.fetch_sub(1, Ordering::AcqRel);

        if let Some((code, message)) = fatal {
            count("server.requests_failed", 1);
            trace.event("error", message.clone());
            let keep = frame::write_frame(
                stream,
                &error_frame(id, code, &message).with_trace_id(Some(trace.trace_id())),
            )
            .is_ok();
            return (keep, RequestOutcome::Failed);
        }
        let ctx = self.service.context();
        let named: Vec<(String, &FlowReport)> =
            reports.iter().map(|(n, r)| (n.clone(), r)).collect();
        let volume_report = icd_volume::assemble_report(
            ctx,
            ctx.circuit.content_hash(),
            &named,
            failed,
            skipped,
            &icd_volume::AggregationConfig::default(),
        );
        // Degraded mirrors `icdiag volume` exit code 3: part of the
        // failing population never made it into the aggregate.
        let (status, outcome) =
            if volume_report.devices_failed > 0 || volume_report.devices_skipped > 0 {
                count("server.requests_degraded", 1);
                trace.event(
                    "degraded",
                    format!(
                        "devices failed={} skipped={}",
                        volume_report.devices_failed, volume_report.devices_skipped
                    ),
                );
                (ResponseStatus::Degraded, RequestOutcome::Degraded)
            } else {
                count("server.requests_ok", 1);
                (ResponseStatus::Ok, RequestOutcome::Clean)
            };
        count("server.frames_tx", 1);
        let keep = frame::write_frame(
            stream,
            &report_frame(id, status, &volume_report.to_json())
                .with_trace_id(Some(trace.trace_id())),
        )
        .is_ok();
        (keep, outcome)
    }

    /// The transient-failure retry loop around one streamed diagnosis.
    ///
    /// Retried (with capped exponential backoff + jitter): queue-full
    /// admission ([`ServiceError::Busy`]), whole-request worker panics,
    /// and reports whose only blemish is panicked suspect slots (the
    /// report of the successful retry is byte-identical to a clean run).
    /// Not retried: flow errors, expired deadlines, cancellation —
    /// permanent by construction.
    fn diagnose_with_retry(
        &mut self,
        stream: &mut TcpStream,
        id: u64,
        trace: &TraceContext,
        datalog: &icd_faultsim::Datalog,
        token: &CancelToken,
    ) -> Result<FlowReport, (ErrorCode, String)> {
        let trace_id = Some(trace.trace_id());
        let mut attempt = 0u32;
        loop {
            if token.is_cancelled() {
                return Err((
                    ErrorCode::DeadlineExceeded,
                    "request cancelled before completion".to_owned(),
                ));
            }
            // Stream progress frames as they happen; a retried attempt
            // re-emits (last write wins on the client side).
            let mut stream_ok = true;
            let mut on_event = |ev: StreamEvent<'_>| {
                let frame = match ev {
                    StreamEvent::Suspects(gates) => {
                        let body = gates
                            .iter()
                            .map(|g| g.index().to_string())
                            .collect::<Vec<_>>()
                            .join(" ");
                        Frame {
                            frame_type: FrameType::Suspects,
                            request_id: id,
                            trace_id,
                            payload: body.into_bytes(),
                        }
                    }
                    StreamEvent::SuspectDone { slot, gate, ok } => Frame {
                        frame_type: FrameType::Progress,
                        request_id: id,
                        trace_id,
                        payload: format!("slot={slot} gate={} ok={}", gate.index(), u8::from(ok))
                            .into_bytes(),
                    },
                };
                count("server.frames_tx", 1);
                if frame::write_frame(stream, &frame).is_err() {
                    stream_ok = false;
                }
            };
            let outcome =
                self.service
                    .diagnose_streamed_traced(datalog, token, Some(trace), &mut on_event);
            if !stream_ok {
                // The client is gone; cancel our own work and stop.
                token.cancel();
                return Err((
                    ErrorCode::Internal,
                    "client connection lost mid-stream".to_owned(),
                ));
            }
            let transient: &str = match outcome {
                Ok(report) => {
                    let panicked = report
                        .skipped
                        .iter()
                        .any(|s| matches!(s.error, FlowError::Panicked(_)));
                    if !panicked || token.is_cancelled() {
                        return Ok(report);
                    }
                    // Retry panicked-suspect degradation; if the budget
                    // is spent, the degraded partial report IS the
                    // answer (graceful degradation, not an error).
                    match self.config.backoff.delay(attempt, &mut self.jitter) {
                        Some(delay) => {
                            count("server.retries_panic", 1);
                            trace.event(
                                "retry.panic",
                                format!("panicked suspect slots, attempt={attempt}"),
                            );
                            thread::sleep(delay);
                            attempt += 1;
                            continue;
                        }
                        None => {
                            trace.event(
                                "degraded",
                                "panicked suspect slots survived the retry budget",
                            );
                            return Ok(report);
                        }
                    }
                }
                Err(ServiceError::Busy) => "queue full",
                Err(ServiceError::Job(JobError::Panicked(_))) => "front panic",
                Err(ServiceError::Job(JobError::Flow(FlowError::Cancelled))) => {
                    return Err((
                        ErrorCode::DeadlineExceeded,
                        "deadline expired before the front stage ran".to_owned(),
                    ));
                }
                Err(ServiceError::Job(e)) => return Err((ErrorCode::Internal, e.to_string())),
            };
            match self.config.backoff.delay(attempt, &mut self.jitter) {
                Some(delay) => {
                    count(
                        if transient == "queue full" {
                            "server.retries_busy"
                        } else {
                            "server.retries_panic"
                        },
                        1,
                    );
                    trace.event(
                        if transient == "queue full" {
                            "retry.busy"
                        } else {
                            "retry.panic"
                        },
                        format!("{transient}, attempt={attempt}"),
                    );
                    thread::sleep(delay);
                    attempt += 1;
                }
                None if transient == "queue full" => {
                    return Err((
                        ErrorCode::Busy,
                        format!("queue stayed full through {attempt} retries"),
                    ));
                }
                None => {
                    return Err((
                        ErrorCode::Internal,
                        format!("worker panic survived {attempt} retries"),
                    ));
                }
            }
        }
    }
}

enum Fill {
    Done,
    CleanEof,
    TruncatedEof {
        got: usize,
    },
    TimedOut {
        any_bytes: bool,
    },
    Draining,
    /// The socket failed outright (reset, refused, OS error); the
    /// connection just closes — nothing useful can be written back.
    Io,
}
