//! A fault-tolerant streaming diagnosis daemon over the batch engine.
//!
//! The paper's deployment shape is a tester farm feeding datalogs to a
//! diagnosis box continuously — not a one-shot CLI run. This crate is
//! that box, std-only (the build environment has no async runtime):
//!
//! * **wire protocol** ([`frame`]) — versioned length-framed messages
//!   with crc32 payload integrity; every malformed input is a typed
//!   [`ProtocolError`], split into frame-bounded (connection survives)
//!   and desynchronizing (connection closes) severities;
//! * **daemon** ([`server`]) — thread-per-connection TCP server feeding
//!   one shared [`DiagnosisService`](icd_engine::DiagnosisService);
//!   per-request deadlines and per-connection idle budgets ride a
//!   cooperative [`CancelToken`](icd_engine::CancelToken), checked at
//!   job boundaries so cancellation never poisons the pool;
//! * **graceful degradation** — queue-full admission and contained
//!   worker panics retry with capped exponential backoff + seeded
//!   jitter ([`retry`]); when the budget runs out, a partial report
//!   ships as [`ResponseStatus::Degraded`] (the wire twin of `icdiag`'s
//!   exit code 3) rather than an error;
//! * **graceful shutdown** — drain on signal: refuse new connections,
//!   finish in-flight requests within a bounded deadline, then
//!   hard-cancel the rest through one parent token;
//! * **chaos harness** ([`chaos`]) — seeded injection of worker panics,
//!   frame corruption, mid-frame disconnects, slow-loris writes and
//!   stalled sockets, so a soak test can prove the daemon never crashes
//!   and clean responses stay byte-identical to `icdiag run`;
//! * **live telemetry** ([`stats`], the `Stats` wire frame) — per-request
//!   trace ids threaded from frame decode through the engine's flow
//!   stages into a rotating JSONL event log, rolling-window latency
//!   percentiles snapshotted without pausing service, and a
//!   bench-baseline regression gate ([`benchdiff`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::panic))]

pub mod benchdiff;
pub mod chaos;
pub mod client;
pub mod frame;
pub mod retry;
pub mod server;
pub mod stats;

pub use benchdiff::{BenchDiff, Direction, MetricDelta};
pub use chaos::{ChaosClient, ChaosPanics, ClientFault};
pub use client::{Client, ClientError, Response};
pub use frame::{ErrorCode, Frame, FrameType, ProtocolError, ResponseStatus};
pub use retry::BackoffConfig;
pub use server::{DrainOutcome, Server, ServerConfig, ServerHandle};
pub use stats::{LiveStats, RequestKind, RequestOutcome};
