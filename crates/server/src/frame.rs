//! The versioned length-framed wire protocol of the diagnosis daemon.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        b"ICDS"
//! 4       1     version      0x01
//! 5       1     frame type   (see [`FrameType`])
//! 6       2     flags        (u16 LE; unknown bits are rejected)
//! 8       8     request id   (u64 LE, client-chosen, echoed in responses)
//! 16      4     payload len  (u32 LE, <= negotiated max)
//! 20      4     crc32        IEEE crc32 of the payload bytes (u32 LE)
//! 24      len   payload
//! ```
//!
//! The flags field was the always-zero reserved field through protocol
//! version 1's first deployments; a zero flags word is byte-identical
//! to the old encoding, so old and new builds interoperate as long as
//! no flag is used. One flag is defined: [`FLAG_TRACE_ID`] declares
//! that the payload starts with an 8-byte LE trace id (stripped on
//! decode into [`Frame::trace_id`], echoed by the server on every
//! response to the request). The payload length and crc32 cover the
//! prefix.
//!
//! Malformed input never panics the daemon — every way a frame can be
//! wrong is a typed [`ProtocolError`], split into two severities:
//!
//! * **frame-bounded** (bad crc, unknown frame type): the bad frame was
//!   fully consumed, the stream is still in sync, and the connection
//!   keeps serving after an `Error` response;
//! * **desynchronizing** (bad magic/version, oversized length, truncated
//!   read): the reader can no longer trust frame boundaries, so the
//!   server answers with an `Error` frame and closes the connection.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::OnceLock;

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"ICDS";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes (payload follows).
pub const HEADER_LEN: usize = 24;
/// Default cap on payload size; larger claims are rejected unread.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1 << 20;
/// Header flag: the payload starts with an 8-byte LE trace id.
pub const FLAG_TRACE_ID: u16 = 0x0001;
/// Every flag bit this build understands; anything else is rejected.
pub const KNOWN_FLAGS: u16 = FLAG_TRACE_ID;

/// What a frame carries. Client-to-server types sit below 0x80,
/// server-to-client types at or above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client: diagnose one datalog. Payload: `u32 LE deadline_ms`
    /// (0 = server default) followed by datalog text.
    Request = 0x01,
    /// Client: liveness probe; empty payload.
    Ping = 0x02,
    /// Client: ask the daemon to drain and exit; empty payload.
    Shutdown = 0x03,
    /// Client: volume-diagnose many datalogs of the served design as one
    /// workload. Payload: `u32 LE deadline_ms`, `u32 LE count`, then
    /// `count` records of `u32 LE name_len, name, u32 LE text_len, text`
    /// (see [`volume_request_payload`]). Answered with a single
    /// [`FrameType::Report`] whose payload is the status byte followed
    /// by the canonical volume-report JSON (byte-identical to
    /// `icdiag volume --json-out` over the same corpus).
    Volume = 0x04,
    /// Client: snapshot the daemon's live stats (rolling-window
    /// counters, latency percentiles, queue depth, drain state); empty
    /// payload. Answered with [`FrameType::StatsReport`]. Served even
    /// while draining — an operator watching a drain is the moment
    /// stats matter most.
    Stats = 0x05,
    /// Server: the front stage resolved; payload is ASCII gate indices,
    /// space-separated, in report slot order.
    Suspects = 0x81,
    /// Server: one suspect analysis finished. Payload:
    /// `slot=<n> gate=<g> ok=<0|1>` ASCII.
    Progress = 0x82,
    /// Server: final answer. Payload: one [`ResponseStatus`] byte, then
    /// the canonical summary line (byte-identical to `icdiag run`).
    Report = 0x83,
    /// Server: a request failed. Payload: one error code byte, then a
    /// human-readable message.
    Error = 0x84,
    /// Server: answer to [`FrameType::Ping`]; empty payload.
    Pong = 0x85,
    /// Server: orderly close (drain reached this connection or the
    /// client's shutdown was accepted); empty payload.
    Goodbye = 0x86,
    /// Server: answer to [`FrameType::Stats`]; payload is the live
    /// stats snapshot as JSON with byte-stable field names.
    StatsReport = 0x87,
}

impl FrameType {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<FrameType> {
        Some(match b {
            0x01 => FrameType::Request,
            0x02 => FrameType::Ping,
            0x03 => FrameType::Shutdown,
            0x04 => FrameType::Volume,
            0x05 => FrameType::Stats,
            0x81 => FrameType::Suspects,
            0x82 => FrameType::Progress,
            0x83 => FrameType::Report,
            0x84 => FrameType::Error,
            0x85 => FrameType::Pong,
            0x86 => FrameType::Goodbye,
            0x87 => FrameType::StatsReport,
            _ => return None,
        })
    }
}

/// Outcome byte leading a [`FrameType::Report`] payload. `Degraded`
/// deliberately shares its value with `icdiag`'s exit code 3: a partial
/// report over the wire means exactly what exit 3 means on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ResponseStatus {
    /// Complete report, nothing skipped for operational reasons.
    Ok = 0,
    /// Complete-but-degraded report (skipped suspects or unexplained
    /// patterns) — mirrors `icdiag` exit code 3.
    Degraded = 3,
}

impl ResponseStatus {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<ResponseStatus> {
        match b {
            0 => Some(ResponseStatus::Ok),
            3 => Some(ResponseStatus::Degraded),
            _ => None,
        }
    }
}

/// Error code byte leading a [`FrameType::Error`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame violated the protocol (see message for which way).
    Protocol = 1,
    /// The request payload was not a parseable datalog.
    BadPayload = 2,
    /// Admission kept failing after every retry: the queue stayed full.
    Busy = 3,
    /// The request's deadline expired (or the client's token cancelled)
    /// before a report could be merged.
    DeadlineExceeded = 4,
    /// The daemon is draining and accepts no new requests.
    Draining = 5,
    /// The request failed as a whole (front-stage error, or worker
    /// panics survived every retry).
    Internal = 6,
}

impl ErrorCode {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::BadPayload,
            3 => ErrorCode::Busy,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::Draining,
            6 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Every way an incoming byte stream can fail to be a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes actually read.
        got: [u8; 4],
    },
    /// Version byte this build does not speak.
    BadVersion {
        /// The version actually read.
        got: u8,
    },
    /// The flags field carried bits this build does not understand
    /// (the pre-flags protocol required the field to be zero, so old
    /// peers are a strict subset of this check).
    UnknownFlags {
        /// The flags word actually read.
        got: u16,
    },
    /// The header declared [`FLAG_TRACE_ID`] but the payload is too
    /// short to hold the 8-byte prefix (frame-bounded: the payload was
    /// fully consumed).
    MissingTraceId {
        /// Payload bytes actually present.
        got: usize,
    },
    /// Frame type byte outside the known set (frame-bounded: the
    /// payload length was still trusted and consumed).
    UnknownFrameType {
        /// The type byte actually read.
        got: u8,
    },
    /// Claimed payload length exceeds the negotiated maximum; rejected
    /// before reading the payload.
    Oversized {
        /// The claimed length.
        len: u32,
        /// The maximum this endpoint accepts.
        max: u32,
    },
    /// Payload bytes did not match the header's crc32.
    BadChecksum {
        /// The crc the header claimed.
        expected: u32,
        /// The crc of the bytes actually received.
        got: u32,
    },
    /// The stream ended (or the peer stalled past its budget) inside a
    /// frame.
    Truncated {
        /// Which part of the frame was being read.
        context: &'static str,
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
}

impl ProtocolError {
    /// Whether the stream is still frame-synchronized after this error
    /// (the connection may keep serving) or must be closed.
    pub fn is_frame_bounded(&self) -> bool {
        matches!(
            self,
            ProtocolError::UnknownFrameType { .. }
                | ProtocolError::BadChecksum { .. }
                | ProtocolError::MissingTraceId { .. }
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic { got } => {
                write!(f, "bad frame magic {got:02x?} (expected {MAGIC:02x?})")
            }
            ProtocolError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks {VERSION})"
                )
            }
            ProtocolError::UnknownFlags { got } => {
                write!(
                    f,
                    "unknown header flag bits {got:#06x} (this build understands {KNOWN_FLAGS:#06x})"
                )
            }
            ProtocolError::MissingTraceId { got } => {
                write!(
                    f,
                    "trace-id flag set but payload holds only {got} bytes (need 8)"
                )
            }
            ProtocolError::UnknownFrameType { got } => {
                write!(f, "unknown frame type {got:#04x}")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "payload crc32 {got:#010x} does not match header {expected:#010x}"
                )
            }
            ProtocolError::Truncated {
                context,
                needed,
                got,
            } => {
                write!(
                    f,
                    "stream truncated reading {context}: needed {needed} bytes, got {got}"
                )
            }
        }
    }
}

impl Error for ProtocolError {}

/// A frame-read failure: either the bytes were wrong ([`ProtocolError`])
/// or the transport itself failed.
#[derive(Debug)]
pub enum FrameError {
    /// The bytes violated the protocol.
    Protocol(ProtocolError),
    /// The socket failed (reset, refused, OS error). Truncation mid-frame
    /// is reported as [`ProtocolError::Truncated`], not here.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Protocol(e) => write!(f, "{e}"),
            FrameError::Io(e) => write!(f, "frame transport failed: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Protocol(e) => Some(e),
            FrameError::Io(e) => Some(e),
        }
    }
}

impl From<ProtocolError> for FrameError {
    fn from(e: ProtocolError) -> Self {
        FrameError::Protocol(e)
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload means.
    pub frame_type: FrameType,
    /// Client-chosen id echoed in every response to the request.
    pub request_id: u64,
    /// The request's trace id, when the frame carried
    /// [`FLAG_TRACE_ID`]. On the wire it travels as an 8-byte LE
    /// payload prefix; [`Frame::payload`] holds the bytes *after* the
    /// prefix.
    pub trace_id: Option<u64>,
    /// The payload bytes (already crc-verified and trace-id-stripped on
    /// decode).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-free frame (ping/pong/goodbye/shutdown).
    pub fn bare(frame_type: FrameType, request_id: u64) -> Frame {
        Frame {
            frame_type,
            request_id,
            trace_id: None,
            payload: Vec::new(),
        }
    }

    /// The same frame carrying a trace id (chainable constructor aid).
    #[must_use]
    pub fn with_trace_id(mut self, trace_id: Option<u64>) -> Frame {
        self.trace_id = trace_id;
        self
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// IEEE crc32 (the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Encodes a frame to its wire bytes. A frame without a trace id is
/// byte-identical to the pre-flags encoding (flags word zero).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let prefix_len = if frame.trace_id.is_some() { 8 } else { 0 };
    let wire_len = prefix_len + frame.payload.len();
    let mut out = Vec::with_capacity(HEADER_LEN + wire_len);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.frame_type as u8);
    let flags = if frame.trace_id.is_some() {
        FLAG_TRACE_ID
    } else {
        0
    };
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&(wire_len as u32).to_le_bytes());
    let crc = {
        let mut wire_payload = Vec::with_capacity(wire_len);
        if let Some(id) = frame.trace_id {
            wire_payload.extend_from_slice(&id.to_le_bytes());
        }
        wire_payload.extend_from_slice(&frame.payload);
        crc32(&wire_payload)
    };
    out.extend_from_slice(&crc.to_le_bytes());
    if let Some(id) = frame.trace_id {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(&frame.payload);
    out
}

/// Writes a frame to `w` (one `write_all`; no partial frames on success).
///
/// # Errors
///
/// Propagates the transport's I/O error.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))?;
    w.flush()
}

/// The validated fields of a frame header, before the payload is read.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Raw frame-type byte; validated against [`FrameType`] only after
    /// the payload is consumed, so an unknown type stays frame-bounded.
    pub type_byte: u8,
    /// Header flags (only [`KNOWN_FLAGS`] bits, enforced on parse).
    pub flags: u16,
    /// Client-chosen request id.
    pub request_id: u64,
    /// Payload length including any trace-id prefix (already bounded by
    /// `max_payload`).
    pub payload_len: u32,
    /// Declared payload crc32.
    pub crc: u32,
}

/// Parses and validates the fixed-size header. Magic, version, flag
/// bits and the length bound are checked here; the frame type and crc
/// are checked by [`finish_frame`] once the payload is in hand.
///
/// # Errors
///
/// Any desynchronizing [`ProtocolError`] the header exhibits.
pub fn parse_header(bytes: &[u8; HEADER_LEN], max_payload: u32) -> Result<Header, ProtocolError> {
    if bytes[0..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&bytes[0..4]);
        return Err(ProtocolError::BadMagic { got });
    }
    if bytes[4] != VERSION {
        return Err(ProtocolError::BadVersion { got: bytes[4] });
    }
    let flags = u16::from_le_bytes([bytes[6], bytes[7]]);
    if flags & !KNOWN_FLAGS != 0 {
        return Err(ProtocolError::UnknownFlags { got: flags });
    }
    let mut id = [0u8; 8];
    id.copy_from_slice(&bytes[8..16]);
    let mut len = [0u8; 4];
    len.copy_from_slice(&bytes[16..20]);
    let payload_len = u32::from_le_bytes(len);
    if payload_len > max_payload {
        return Err(ProtocolError::Oversized {
            len: payload_len,
            max: max_payload,
        });
    }
    let mut crc = [0u8; 4];
    crc.copy_from_slice(&bytes[20..24]);
    Ok(Header {
        type_byte: bytes[5],
        flags,
        request_id: u64::from_le_bytes(id),
        payload_len,
        crc: u32::from_le_bytes(crc),
    })
}

/// Validates frame type and payload crc once the payload is read, and
/// strips the trace-id prefix when the header declared one.
///
/// # Errors
///
/// A frame-bounded [`ProtocolError`] (unknown type, crc mismatch, or a
/// trace-id flag without room for the prefix) — the stream is still in
/// sync either way.
pub fn finish_frame(header: &Header, mut payload: Vec<u8>) -> Result<Frame, ProtocolError> {
    let got = crc32(&payload);
    if got != header.crc {
        return Err(ProtocolError::BadChecksum {
            expected: header.crc,
            got,
        });
    }
    let frame_type =
        FrameType::from_u8(header.type_byte).ok_or(ProtocolError::UnknownFrameType {
            got: header.type_byte,
        })?;
    let trace_id = if header.flags & FLAG_TRACE_ID != 0 {
        if payload.len() < 8 {
            return Err(ProtocolError::MissingTraceId { got: payload.len() });
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&payload[..8]);
        payload.drain(..8);
        Some(u64::from_le_bytes(id))
    } else {
        None
    };
    Ok(Frame {
        frame_type,
        request_id: header.request_id,
        trace_id,
        payload,
    })
}

/// Reads one frame from a blocking reader. `Ok(None)` is a clean EOF at
/// a frame boundary (the peer closed between frames); EOF *inside* a
/// frame is [`ProtocolError::Truncated`].
///
/// # Errors
///
/// [`FrameError::Protocol`] for malformed bytes, [`FrameError::Io`] for
/// transport failures.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Option<Frame>, FrameError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ProtocolError::Truncated {
                    context: "header",
                    needed: HEADER_LEN,
                    got: filled,
                }
                .into());
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let header = parse_header(&header_bytes, max_payload)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(ProtocolError::Truncated {
                    context: "payload",
                    needed: payload.len(),
                    got: filled,
                }
                .into());
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    finish_frame(&header, payload)
        .map(Some)
        .map_err(FrameError::from)
}

/// Builds a [`FrameType::Request`] payload from its parts.
pub fn request_payload(deadline_ms: u32, datalog_text: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + datalog_text.len());
    payload.extend_from_slice(&deadline_ms.to_le_bytes());
    payload.extend_from_slice(datalog_text.as_bytes());
    payload
}

/// Splits a [`FrameType::Request`] payload into `(deadline_ms, datalog
/// text)`; `None` when it is too short or not UTF-8.
pub fn parse_request_payload(payload: &[u8]) -> Option<(u32, &str)> {
    if payload.len() < 4 {
        return None;
    }
    let deadline_ms = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
    std::str::from_utf8(&payload[4..])
        .ok()
        .map(|text| (deadline_ms, text))
}

/// Builds a [`FrameType::Volume`] payload: a deadline and a named corpus
/// of datalog texts.
pub fn volume_request_payload(deadline_ms: u32, devices: &[(String, String)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(
        8 + devices
            .iter()
            .map(|(n, t)| 8 + n.len() + t.len())
            .sum::<usize>(),
    );
    payload.extend_from_slice(&deadline_ms.to_le_bytes());
    payload.extend_from_slice(&(devices.len() as u32).to_le_bytes());
    for (name, text) in devices {
        payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
        payload.extend_from_slice(text.as_bytes());
    }
    payload
}

/// Splits a [`FrameType::Volume`] payload into `(deadline_ms, devices)`;
/// `None` when any length field runs past the payload, the record count
/// lies, or a name/text is not UTF-8.
pub fn parse_volume_payload(payload: &[u8]) -> Option<(u32, Vec<(String, String)>)> {
    fn take_u32(payload: &[u8], at: &mut usize) -> Option<u32> {
        let bytes = payload.get(*at..*at + 4)?;
        *at += 4;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }
    fn take_str(payload: &[u8], at: &mut usize) -> Option<String> {
        let len = take_u32(payload, at)? as usize;
        let bytes = payload.get(*at..*at + len)?;
        *at += len;
        String::from_utf8(bytes.to_vec()).ok()
    }
    let mut at = 0usize;
    let deadline_ms = take_u32(payload, &mut at)?;
    let count = take_u32(payload, &mut at)? as usize;
    // An absurd count claim must not pre-allocate unbounded memory: the
    // payload itself bounds how many records can exist (≥ 8 bytes each).
    if count > payload.len() / 8 + 1 {
        return None;
    }
    let mut devices = Vec::with_capacity(count);
    for _ in 0..count {
        let name = take_str(payload, &mut at)?;
        let text = take_str(payload, &mut at)?;
        devices.push((name, text));
    }
    if at != payload.len() {
        return None;
    }
    Some((deadline_ms, devices))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            frame_type: FrameType::Request,
            request_id: 0xdead_beef_cafe_f00d,
            trace_id: None,
            payload: request_payload(1500, "datalog d0\npatterns 4\nfail 1 2\n"),
        }
    }

    #[test]
    fn trace_id_rides_a_payload_prefix_and_round_trips() {
        let frame = sample().with_trace_id(Some(0x1122_3344_5566_7788));
        let bytes = encode(&frame);
        // The flags word announces the prefix and the length covers it.
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), FLAG_TRACE_ID);
        let wire_len = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
        assert_eq!(wire_len as usize, 8 + frame.payload.len());
        let mut cursor = &bytes[..];
        let decoded = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .expect("decodes")
            .expect("not EOF");
        assert_eq!(decoded, frame);
        // The prefix is stripped: the logical payload is untouched.
        let (deadline, text) = parse_request_payload(&decoded.payload).expect("request payload");
        assert_eq!(deadline, 1500);
        assert!(text.starts_with("datalog d0"));
    }

    #[test]
    fn zero_flags_encoding_is_byte_identical_to_the_pre_flags_wire() {
        // A frame without a trace id must produce exactly the bytes an
        // old (reserved-field) peer would: zero at offsets 6..8 and no
        // payload prefix.
        let bytes = encode(&sample());
        assert_eq!(&bytes[6..8], &[0, 0]);
        assert_eq!(bytes.len(), HEADER_LEN + sample().payload.len());
    }

    #[test]
    fn trace_flag_without_room_for_the_prefix_is_frame_bounded() {
        let mut frame = Frame::bare(FrameType::Ping, 1);
        frame.payload = vec![1, 2, 3]; // < 8 bytes
        let mut bytes = encode(&frame);
        bytes[6] = (FLAG_TRACE_ID & 0xff) as u8; // claim a prefix anyway
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("short prefix");
        let FrameError::Protocol(p) = err else {
            panic!("expected protocol error")
        };
        assert!(matches!(p, ProtocolError::MissingTraceId { got: 3 }));
        assert!(p.is_frame_bounded());
        assert!(cursor.is_empty(), "payload consumed, stream in sync");
    }

    #[test]
    fn volume_payload_round_trips() {
        let devices = vec![
            (
                "device-000.log".to_owned(),
                "datalog d0\npatterns 4\n".to_owned(),
            ),
            (
                "device-001.log".to_owned(),
                "datalog d1\npatterns 4\nfail 1 2\n".to_owned(),
            ),
        ];
        let payload = volume_request_payload(2500, &devices);
        let (deadline, parsed) = parse_volume_payload(&payload).expect("parses");
        assert_eq!(deadline, 2500);
        assert_eq!(parsed, devices);
        // Empty corpus round-trips too.
        let empty = volume_request_payload(0, &[]);
        assert_eq!(parse_volume_payload(&empty), Some((0, Vec::new())));
    }

    #[test]
    fn malformed_volume_payloads_are_rejected() {
        let devices = vec![("a.log".to_owned(), "datalog a\npatterns 1\n".to_owned())];
        let good = volume_request_payload(0, &devices);
        // Too short for the fixed prefix.
        assert_eq!(parse_volume_payload(&good[..3]), None);
        // Truncated mid-record.
        assert_eq!(parse_volume_payload(&good[..good.len() - 1]), None);
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(parse_volume_payload(&padded), None);
        // A count that lies about how many records follow.
        let mut lying = good.clone();
        lying[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(parse_volume_payload(&lying), None);
        // An absurd count claim must not allocate.
        let mut absurd = good;
        absurd[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(parse_volume_payload(&absurd), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE crc32 check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let frame = sample();
        let bytes = encode(&frame);
        assert_eq!(bytes.len(), HEADER_LEN + frame.payload.len());
        let mut cursor = &bytes[..];
        let decoded = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .expect("decodes")
            .expect("not EOF");
        assert_eq!(decoded, frame);
        let (deadline, text) = parse_request_payload(&decoded.payload).expect("request payload");
        assert_eq!(deadline, 1500);
        assert!(text.starts_with("datalog d0"));
    }

    #[test]
    fn clean_eof_at_boundary_is_none_but_mid_frame_is_truncated() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut { empty }, DEFAULT_MAX_PAYLOAD)
            .expect("clean EOF")
            .is_none());

        let bytes = encode(&sample());
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3] {
            let mut cursor = &bytes[..cut];
            let err = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("truncated");
            assert!(
                matches!(err, FrameError::Protocol(ProtocolError::Truncated { .. })),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_desynchronize() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("bad magic");
        let FrameError::Protocol(p) = err else {
            panic!("expected protocol error")
        };
        assert!(matches!(p, ProtocolError::BadMagic { .. }) && !p.is_frame_bounded());

        let mut bytes = encode(&sample());
        bytes[4] = 9;
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("bad version");
        let FrameError::Protocol(p) = err else {
            panic!("expected protocol error")
        };
        assert!(matches!(p, ProtocolError::BadVersion { got: 9 }) && !p.is_frame_bounded());
    }

    #[test]
    fn corrupt_payload_is_a_frame_bounded_checksum_error() {
        let frame = sample();
        let mut bytes = encode(&frame);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("corrupt payload");
        let FrameError::Protocol(p) = err else {
            panic!("expected protocol error")
        };
        assert!(matches!(p, ProtocolError::BadChecksum { .. }) && p.is_frame_bounded());
        // The whole bad frame was consumed: the stream is still in sync.
        assert!(cursor.is_empty());
    }

    #[test]
    fn unknown_frame_type_is_frame_bounded() {
        let mut bytes = encode(&sample());
        bytes[5] = 0x7f;
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("unknown type");
        let FrameError::Protocol(p) = err else {
            panic!("expected protocol error")
        };
        assert!(matches!(p, ProtocolError::UnknownFrameType { got: 0x7f }));
        assert!(p.is_frame_bounded());
        assert!(cursor.is_empty(), "payload consumed, stream in sync");
    }

    #[test]
    fn oversized_claim_is_rejected_before_reading_the_payload() {
        let mut frame = sample();
        frame.payload = vec![0u8; 64];
        let bytes = encode(&frame);
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor, 16).expect_err("oversized");
        let FrameError::Protocol(p) = err else {
            panic!("expected protocol error")
        };
        assert!(matches!(p, ProtocolError::Oversized { len: 64, max: 16 }));
        assert!(!p.is_frame_bounded());
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        let mut bytes = encode(&sample());
        bytes[7] = 0x80; // flag bit 15: undefined
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD).expect_err("unknown flags");
        let FrameError::Protocol(p) = err else {
            panic!("expected protocol error")
        };
        assert!(matches!(p, ProtocolError::UnknownFlags { got: 0x8000 }));
        assert!(!p.is_frame_bounded());
    }

    #[test]
    fn every_protocol_error_displays_without_panicking() {
        let errs = [
            ProtocolError::BadMagic { got: [0, 1, 2, 3] },
            ProtocolError::BadVersion { got: 7 },
            ProtocolError::UnknownFlags { got: 0xbeef },
            ProtocolError::MissingTraceId { got: 3 },
            ProtocolError::UnknownFrameType { got: 0x44 },
            ProtocolError::Oversized { len: 10, max: 5 },
            ProtocolError::BadChecksum {
                expected: 1,
                got: 2,
            },
            ProtocolError::Truncated {
                context: "header",
                needed: 24,
                got: 3,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn status_and_error_codes_roundtrip() {
        for s in [ResponseStatus::Ok, ResponseStatus::Degraded] {
            assert_eq!(ResponseStatus::from_u8(s as u8), Some(s));
        }
        assert_eq!(ResponseStatus::from_u8(9), None);
        for c in [
            ErrorCode::Protocol,
            ErrorCode::BadPayload,
            ErrorCode::Busy,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Draining,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(c as u8), Some(c));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        for t in [
            FrameType::Request,
            FrameType::Ping,
            FrameType::Shutdown,
            FrameType::Volume,
            FrameType::Stats,
            FrameType::Suspects,
            FrameType::Progress,
            FrameType::Report,
            FrameType::Error,
            FrameType::Pong,
            FrameType::Goodbye,
            FrameType::StatsReport,
        ] {
            assert_eq!(FrameType::from_u8(t as u8), Some(t));
        }
    }
}
