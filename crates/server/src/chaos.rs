//! Seedable fault injection for the daemon — the network-layer sibling
//! of [`icd_faultsim::noise`]'s datalog corruption.
//!
//! Two halves:
//!
//! * [`ChaosPanics`] injects *server-side* worker panics through the
//!   [`DiagnosisService`](icd_engine::DiagnosisService) job hook,
//!   exercising panic containment, the retry loop and degraded
//!   responses;
//! * [`ChaosClient`] drives *client-side* protocol abuse — corrupted
//!   frame bytes, connections dropped mid-frame, slow-loris writes,
//!   stalled sockets — against a live server, so a soak test can assert
//!   the daemon survives all of it while clean requests stay
//!   byte-identical.
//!
//! Everything draws from the same SplitMix64 generator
//! ([`icd_faultsim::NoiseRng`]), so one seed reproduces one storm.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use icd_faultsim::NoiseRng;

use crate::frame::{self, Frame, FrameType};

/// Seeded worker-panic injection: every front/suspect job panics with
/// probability `rate`, drawn per execution — so a retried request
/// usually survives, which is exactly the transient shape the retry
/// loop exists for.
#[derive(Debug, Clone)]
pub struct ChaosPanics {
    /// Per-job panic probability in `[0, 1]`.
    pub rate: f64,
    /// Generator seed.
    pub seed: u64,
}

impl ChaosPanics {
    /// Builds the job hook to install with
    /// [`DiagnosisService::with_job_hook`](icd_engine::DiagnosisService::with_job_hook).
    pub fn hook(&self) -> Arc<dyn Fn() + Send + Sync> {
        let rng = Mutex::new(NoiseRng::new(self.seed));
        let rate = self.rate;
        Arc::new(move || {
            let inject = match rng.lock() {
                Ok(mut rng) => rng.chance(rate),
                // A poisoned mutex means a previous injection panicked
                // while holding it — never happens (chance() can't
                // panic), but never inject on that path.
                Err(_) => false,
            };
            if inject {
                // Panicking is this hook's entire job: it emulates a
                // worker dying mid-computation.
                #[allow(clippy::panic)]
                {
                    panic!("chaos: injected worker panic");
                }
            }
        })
    }
}

/// One flavor of client-side protocol abuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFault {
    /// XOR a handful of bytes somewhere in the encoded frame.
    CorruptBytes,
    /// Write only a prefix of the frame, then close the socket.
    TruncateAndDrop,
    /// Write the frame in tiny chunks with a delay between each — the
    /// request is valid, just slow (must still be answered).
    SlowLoris {
        /// Pause between chunks.
        delay_ms: u64,
    },
    /// Write half a header and then go silent without closing, leaving
    /// the server to enforce its idle budget.
    Stall,
}

/// A fault-injecting protocol driver aimed at one server address.
pub struct ChaosClient {
    addr: std::net::SocketAddr,
    rng: NoiseRng,
}

impl ChaosClient {
    /// Targets `addr` with a seeded fault stream.
    ///
    /// # Errors
    ///
    /// Address resolution failures.
    pub fn new<A: ToSocketAddrs>(addr: A, seed: u64) -> std::io::Result<ChaosClient> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        Ok(ChaosClient {
            addr,
            rng: NoiseRng::new(seed),
        })
    }

    /// Opens a fresh connection and applies `fault` to one encoded
    /// request frame. Returns whether the write side completed (for
    /// `SlowLoris`, the caller may then read the response off the
    /// returned stream).
    ///
    /// # Errors
    ///
    /// Connection failures. Write errors after a server-side close are
    /// expected chaos outcomes and reported as `Ok(None)`.
    pub fn send_faulty_request(
        &mut self,
        datalog_text: &str,
        fault: ClientFault,
    ) -> std::io::Result<Option<TcpStream>> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        let request = Frame {
            frame_type: FrameType::Request,
            request_id: self.rng.next_u64(),
            trace_id: None,
            payload: frame::request_payload(0, datalog_text),
        };
        let mut bytes = frame::encode(&request);
        self.apply(&mut stream.try_clone()?, &mut bytes, fault)
    }

    fn apply(
        &mut self,
        stream: &mut TcpStream,
        bytes: &mut [u8],
        fault: ClientFault,
    ) -> std::io::Result<Option<TcpStream>> {
        match fault {
            ClientFault::CorruptBytes => {
                let flips = 1 + self.rng.below(3);
                for _ in 0..flips {
                    let i = self.rng.below(bytes.len());
                    bytes[i] ^= (1 + self.rng.below(255)) as u8;
                }
                // The server may rightfully slam the door mid-write on
                // a desynchronized frame; that is a pass, not an error.
                if stream
                    .write_all(bytes)
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    return Ok(None);
                }
                Ok(Some(stream.try_clone()?))
            }
            ClientFault::TruncateAndDrop => {
                let keep = self.rng.below(bytes.len().max(2) - 1).max(1);
                let _ = stream.write_all(&bytes[..keep]);
                let _ = stream.flush();
                // Dropping the stream closes it mid-frame.
                Ok(None)
            }
            ClientFault::SlowLoris { delay_ms } => {
                for chunk in bytes.chunks(7) {
                    if stream
                        .write_all(chunk)
                        .and_then(|()| stream.flush())
                        .is_err()
                    {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
                Ok(Some(stream.try_clone()?))
            }
            ClientFault::Stall => {
                let _ = stream.write_all(&bytes[..frame::HEADER_LEN / 2]);
                let _ = stream.flush();
                // Leak the stream to the caller so it stays open and
                // silent; the server's idle budget must reap it.
                Ok(Some(stream.try_clone()?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_hook_is_quiet_at_rate_zero_and_fires_at_rate_one() {
        let quiet = ChaosPanics { rate: 0.0, seed: 1 }.hook();
        for _ in 0..64 {
            quiet();
        }
        let loud = ChaosPanics { rate: 1.0, seed: 1 }.hook();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loud()));
        assert!(result.is_err(), "rate-1.0 hook must panic");
    }

    #[test]
    fn panic_hook_rate_is_roughly_respected() {
        let hook = ChaosPanics {
            rate: 0.25,
            seed: 42,
        }
        .hook();
        let mut panics = 0u32;
        for _ in 0..400 {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook())).is_err() {
                panics += 1;
            }
        }
        // 400 draws at p=0.25: expect ~100; accept a wide seeded band.
        assert!((50..=150).contains(&panics), "panics={panics}");
    }
}
