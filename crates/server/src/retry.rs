//! Capped exponential backoff with seeded jitter for transient failures.
//!
//! The daemon retries exactly two failure classes, both genuinely
//! transient: *queue-full* admission refusals ([`ServiceError::Busy`])
//! and *contained worker panics* (the chaos harness injects these on
//! purpose; a real one is a bug that a retry on different data layout
//! often dodges). Everything else — malformed datalogs, front-stage flow
//! errors, expired deadlines — is permanent and fails fast.
//!
//! Jitter is drawn from the same SplitMix64 generator the fault-injection
//! layer uses ([`icd_faultsim::NoiseRng`]), so a seeded soak run makes
//! reproducible backoff decisions.
//!
//! [`ServiceError::Busy`]: icd_engine::ServiceError::Busy

use std::time::Duration;

use icd_faultsim::NoiseRng;

/// Shape of one retry schedule: `base * 2^attempt`, capped, then
/// jittered down by up to half.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Budget of *re*-tries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling on any single delay (pre-jitter).
    pub cap: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            max_retries: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        }
    }
}

impl BackoffConfig {
    /// The jittered delay before retry number `attempt` (0-based), or
    /// `None` once the budget is spent. The jitter subtracts up to half
    /// the capped delay so synchronized clients decorrelate.
    pub fn delay(&self, attempt: u32, rng: &mut NoiseRng) -> Option<Duration> {
        if attempt >= self.max_retries {
            return None;
        }
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.cap);
        let micros = capped.as_micros() as u64;
        let jittered = micros - rng.below((micros / 2 + 1) as usize) as u64;
        Some(Duration::from_micros(jittered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_up_to_the_cap() {
        let cfg = BackoffConfig {
            max_retries: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(50),
        };
        let mut rng = NoiseRng::new(1);
        let delays: Vec<Duration> = (0..6)
            .map(|a| cfg.delay(a, &mut rng).expect("within budget"))
            .collect();
        // Jitter subtracts at most half: every delay sits in
        // [capped/2, capped].
        for (attempt, d) in delays.iter().enumerate() {
            let capped = (cfg.base * (1 << attempt as u32)).min(cfg.cap);
            assert!(*d <= capped, "attempt {attempt}: {d:?} > {capped:?}");
            assert!(
                *d >= capped / 2,
                "attempt {attempt}: {d:?} < {:?}",
                capped / 2
            );
        }
        assert!(cfg.delay(6, &mut rng).is_none(), "budget exhausted");
    }

    #[test]
    fn zero_budget_fails_fast() {
        let cfg = BackoffConfig {
            max_retries: 0,
            ..BackoffConfig::default()
        };
        assert!(cfg.delay(0, &mut NoiseRng::new(7)).is_none());
    }

    #[test]
    fn seeded_jitter_is_reproducible() {
        let cfg = BackoffConfig::default();
        let a: Vec<_> = {
            let mut rng = NoiseRng::new(42);
            (0..4).map(|i| cfg.delay(i, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = NoiseRng::new(42);
            (0..4).map(|i| cfg.delay(i, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let cfg = BackoffConfig {
            max_retries: u32::MAX,
            ..BackoffConfig::default()
        };
        let mut rng = NoiseRng::new(3);
        let d = cfg.delay(40, &mut rng).expect("within budget");
        assert!(d <= cfg.cap);
    }
}
