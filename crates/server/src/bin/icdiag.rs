//! `icdiag` — batch volume-diagnosis driver and daemon front-end.
//!
//! ```text
//! icdiag gen <dir> [--devices N] [--seed S] [--divisor D] [--patterns P] [--defect-rate R]
//! icdiag run <dir> [--workers N] [--quiet] [--trace-out FILE] [--metrics-out FILE]
//! icdiag volume <dir> [--workers N] [--seed S] [--cache-dir DIR] [--json-out FILE]
//!                     [--check-planted] [--quiet] [--metrics-out FILE]
//! icdiag serve <dir> [--addr HOST:PORT] [--workers N] [--queue N] [--deadline-ms N]
//!                    [--idle-ms N] [--drain-ms N] [--chaos-panic-rate F] [--chaos-seed S]
//!                    [--metrics-out FILE] [--event-log FILE] [--slow-ms N]
//! icdiag submit <addr> <file.log> [--deadline-ms N] [--timeout-ms N] [--trace-id HEX]
//! icdiag submit-volume <addr> <dir> [--deadline-ms N] [--timeout-ms N]
//! icdiag stats <addr>
//! icdiag top <addr> [--interval-ms N] [--count N]
//! icdiag benchdiff <baseline.json> <fresh.json> [--tolerance F]
//! icdiag shutdown <addr>
//! icdiag check-metrics <file>
//! ```
//!
//! `gen` synthesizes a failing-device batch: a netlist (`netlist.txt`),
//! a manifest recording how to regenerate the test set (`manifest.txt`)
//! and one tester datalog per device (`device-NNN.log`). With
//! `--defect-rate R` (permille) the batch becomes a *population* with a
//! planted systematic root cause: R permille of the devices carry the
//! same defect on the same gate (recorded as `planted_gate=` in the
//! manifest), the rest fail for unrelated background reasons.
//!
//! `volume` diagnoses every datalog in such a directory as one workload
//! and aggregates per-device suspects into ranked systematic root-cause
//! candidates (see `icd-volume`). The report is byte-identical at any
//! worker count; `--cache-dir` persists derived truth tables keyed by
//! the netlist's content hash, so a second run over the same design
//! skips the switch-level derivations. `--check-planted` verifies the
//! manifest's planted gate tops the ranking (the accuracy smoke check);
//! `submit-volume` sends the same corpus to a daemon and prints the
//! byte-identical JSON the local run would.
//!
//! `run` diagnoses such a directory with the parallel batch engine and
//! prints one summary line per datalog, an aggregate throughput line
//! and (unless `--quiet`) a per-stage latency breakdown. Unreadable or
//! unparseable datalogs are skipped and reported (counted in metrics as
//! `run.inputs_skipped`); the run only fails when *no* datalog loads.
//! Worker count comes from `--workers`, else `ICD_WORKERS`, else the
//! machine's parallelism. `--trace-out` / `--metrics-out` export the
//! run's span tree and metrics snapshot as JSON.
//!
//! `serve` hosts the same directory's context as a streaming TCP daemon
//! (see `icd-server`); `submit` sends one datalog to a daemon and prints
//! the identical summary line `run` would; `shutdown` asks a daemon to
//! drain and exit. With `--event-log` the daemon appends one JSONL
//! record per completed request (trace id, outcome, span forest) to a
//! size-rotated file; `--slow-ms` sets the latency above which a
//! request is flagged slow (default 1000). `submit --trace-id` pins the
//! request's trace id so the record can be grepped out of the log.
//!
//! `stats` fetches a live daemon's telemetry snapshot (the `Stats`
//! frame) as JSON: outcome-partitioned request counters and rolling
//! 60 s p50/p95/p99 latency percentiles per request type — served
//! without pausing the daemon, even mid-drain. `top` polls the same
//! snapshot as a one-line-per-tick dashboard.
//!
//! `benchdiff` compares a fresh bench JSON against a committed baseline
//! (see `icd_server::benchdiff`) and exits 4 when a gated throughput or
//! wall-time metric regressed past tolerance — the CI perf gate.
//!
//! `check-metrics` validates a `--metrics-out` file offline (the CI
//! smoke check; no `jq` in the build environment).
//!
//! Exit codes: `0` clean diagnosis; `1` operational error; `2` usage
//! error; `3` degraded diagnosis (some datalog failed outright, some
//! suspect was skipped for a reason other than missing local failures,
//! a submitted request came back degraded, or a serve drain was
//! forced); `4` benchdiff found a perf regression.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use icd_bench::flow::{pattern_set_for, ExperimentContext, FlowError};
use icd_cells::CellLibrary;
use icd_engine::{
    summarize_report, synthesize_batch, BatchConfig, BatchEngine, Collector, EngineConfig,
};
use icd_faultsim::{datalog_text, Datalog};
use icd_netlist::generator;
use icd_obs::json::Value;
use icd_server::{ChaosPanics, Client, ResponseStatus, Server, ServerConfig};
use icd_volume::{
    synthesize_population, AggregationConfig, PopulationConfig, RootCauseKind, VolumeInput,
    VolumeOptions, VolumeRun,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         icdiag gen <dir> [--devices N] [--seed S] [--divisor D] [--patterns P] [--defect-rate R]\n  \
         icdiag run <dir> [--workers N] [--quiet] [--trace-out FILE] [--metrics-out FILE]\n  \
         icdiag volume <dir> [--workers N] [--seed S] [--cache-dir DIR] [--json-out FILE]\n                      \
         [--check-planted] [--quiet] [--metrics-out FILE]\n  \
         icdiag serve <dir> [--addr HOST:PORT] [--workers N] [--queue N] [--deadline-ms N]\n                     \
         [--idle-ms N] [--drain-ms N] [--chaos-panic-rate F] [--chaos-seed S]\n                     \
         [--metrics-out FILE] [--event-log FILE] [--slow-ms N]\n  \
         icdiag submit <addr> <file.log> [--deadline-ms N] [--timeout-ms N] [--trace-id HEX]\n  \
         icdiag submit-volume <addr> <dir> [--deadline-ms N] [--timeout-ms N]\n  \
         icdiag stats <addr>\n  \
         icdiag top <addr> [--interval-ms N] [--count N]\n  \
         icdiag benchdiff <baseline.json> <fresh.json> [--tolerance F]\n  \
         icdiag shutdown <addr>\n  \
         icdiag check-metrics <file>\n\
         \n\
         exit codes:\n  \
         0  clean diagnosis\n  \
         1  operational error (unreadable input, malformed datalog, ...)\n  \
         2  usage error\n  \
         3  degraded diagnosis: a datalog failed (panic or flow error), a suspect\n     \
         was skipped for a reason other than missing local failing patterns,\n     \
         part of a volume population was skipped or failed, a submitted request\n     \
         was answered degraded, or a serve drain was forced\n  \
         4  benchdiff: a gated metric regressed past its tolerance"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "gen" => cmd_gen(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "volume" => cmd_volume(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "submit" => cmd_submit(&args[1..]),
        "submit-volume" => cmd_submit_volume(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "benchdiff" => cmd_benchdiff(&args[1..]),
        "shutdown" => cmd_shutdown(&args[1..]),
        "check-metrics" => cmd_check_metrics(&args[1..]),
        _ => usage(),
    }
}

/// Parses `--flag value` pairs; names in `boolean` take no value and
/// record `"true"`.
fn parse_flag_pairs(args: &[String], boolean: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut iter = args.iter();
    let mut flags = Vec::new();
    while let Some(flag) = iter.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {flag:?}"))?;
        if boolean.contains(&name) {
            flags.push((name.to_owned(), "true".to_owned()));
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.push((name.to_owned(), value.clone()));
    }
    Ok(flags)
}

/// Parses one positional path followed by `--flag value` pairs.
fn parse_flags(
    args: &[String],
    boolean: &[&str],
) -> Result<(PathBuf, Vec<(String, String)>), String> {
    let dir = args
        .first()
        .ok_or_else(|| "missing <dir>".to_owned())?
        .clone();
    Ok((PathBuf::from(dir), parse_flag_pairs(&args[1..], boolean)?))
}

fn flag<T: std::str::FromStr>(
    flags: &[(String, String)],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.iter().find(|(n, _)| n == name) {
        None => Ok(default),
        Some((_, v)) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse {v:?}")),
    }
}

/// Parses a 64-bit trace id from hex (optionally `0x`-prefixed).
/// Zero is rejected: it means "no trace id" on the wire.
fn parse_trace_id(text: &str) -> Result<u64, String> {
    let digits = text
        .strip_prefix("0x")
        .or_else(|| text.strip_prefix("0X"))
        .unwrap_or(text);
    let id = u64::from_str_radix(digits, 16)
        .map_err(|_| format!("--trace-id: {text:?} is not a 64-bit hex id"))?;
    if id == 0 {
        return Err("--trace-id: zero means \"no trace id\" on the wire".to_owned());
    }
    Ok(id)
}

fn cmd_gen(args: &[String]) -> ExitCode {
    match gen(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("icdiag gen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gen(args: &[String]) -> Result<(), String> {
    let (dir, flags) = parse_flags(args, &[])?;
    let devices: usize = flag(&flags, "devices", 8)?;
    let seed: u64 = flag(&flags, "seed", 0x1cd1a6)?;
    let divisor: usize = flag(&flags, "divisor", 400)?;
    let patterns: usize = flag(&flags, "patterns", 64)?;
    let defect_rate: u32 = flag(&flags, "defect-rate", 0)?;

    let ctx = ExperimentContext::from_preset(&generator::circuit_b(), divisor, patterns)
        .map_err(|e| format!("building circuit: {e}"))?;
    // With a defect rate, synthesize a population around one planted
    // systematic root cause; without, the classic independent batch.
    let mut planted_lines = String::new();
    let batch = if defect_rate > 0 {
        let mut cfg = PopulationConfig::new(devices, seed);
        cfg.defect_rate_permille = defect_rate;
        let population = synthesize_population(&ctx, &cfg)
            .map_err(|e| format!("synthesizing population: {e}"))?;
        planted_lines = format!(
            "planted_gate={}\nplanted_cell={}\ndefect_rate_permille={}\nplanted_devices={}\n",
            population.planted.gate_name,
            population.planted.cell,
            defect_rate,
            population.planted_devices
        );
        population.datalogs
    } else {
        synthesize_batch(&ctx, &BatchConfig::new(devices, seed))
            .map_err(|e| format!("synthesizing batch: {e}"))?
    };
    if batch.is_empty() {
        return Err("no sampled defect produced a failing device at this scale".into());
    }

    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let write = |name: &str, text: &str| -> Result<(), String> {
        let path = dir.join(name);
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("netlist.txt", &icd_netlist::format::write(&ctx.circuit))?;
    // The test set is regenerated, not stored: record its recipe. The
    // pattern seed matches ExperimentContext::from_preset (config seed is
    // divisor-independent, the whitening constant is the context's).
    let cfg = generator::circuit_b();
    let pattern_seed = if divisor > 1 {
        cfg.scaled_down(divisor).seed ^ 0x7e57
    } else {
        cfg.seed ^ 0x7e57
    };
    write(
        "manifest.txt",
        &format!("patterns={patterns}\npattern_seed={pattern_seed}\n{planted_lines}"),
    )?;
    for (i, datalog) in batch.iter().enumerate() {
        write(&format!("device-{i:03}.log"), &datalog_text::write(datalog))?;
    }
    println!(
        "generated {} devices in {} ({} gates, {} patterns, netlist {})",
        batch.len(),
        dir.display(),
        ctx.circuit.num_gates(),
        ctx.patterns.len(),
        ctx.circuit.content_hash()
    );
    if !planted_lines.is_empty() {
        print!("{planted_lines}");
    }
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<(usize, u64), String> {
    let path = dir.join("manifest.txt");
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut patterns = None;
    let mut seed = None;
    for line in text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        match key.trim() {
            "patterns" => patterns = value.trim().parse::<usize>().ok(),
            "pattern_seed" => seed = value.trim().parse::<u64>().ok(),
            _ => {}
        }
    }
    match (patterns, seed) {
        (Some(p), Some(s)) => Ok((p, s)),
        _ => Err(format!(
            "{}: needs `patterns=` and `pattern_seed=` lines",
            path.display()
        )),
    }
}

/// Rebuilds the experiment context a `gen` directory describes: parse
/// the netlist against the standard library, regenerate the recorded
/// test set. Shared by `run` and `serve`.
fn load_context(dir: &Path) -> Result<Arc<ExperimentContext>, String> {
    let cells = CellLibrary::standard();
    let logic = cells.logic_library();
    let netlist_path = dir.join("netlist.txt");
    let netlist_text = std::fs::read_to_string(&netlist_path)
        .map_err(|e| format!("reading {}: {e}", netlist_path.display()))?;
    let circuit = icd_netlist::format::parse(&netlist_text, &logic)
        .map_err(|e| format!("parsing {}: {e}", netlist_path.display()))?;
    let (num_patterns, pattern_seed) = read_manifest(dir)?;
    let patterns = pattern_set_for(&circuit, num_patterns, pattern_seed);
    Ok(Arc::new(ExperimentContext {
        cells,
        logic,
        circuit,
        patterns,
    }))
}

fn cmd_run(args: &[String]) -> ExitCode {
    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("icdiag run: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (dir, flags) = parse_flags(args, &["quiet"])?;
    let workers: usize = flag(&flags, "workers", 0)?;
    let quiet = flags.iter().any(|(n, _)| n == "quiet");
    let out_path = |name: &str| {
        flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| PathBuf::from(v))
    };
    let trace_out = out_path("trace-out");
    let metrics_out = out_path("metrics-out");

    let ctx = load_context(&dir)?;
    if !quiet {
        // The design fingerprint: two runs printing the same hash
        // diagnosed the same netlist (see Circuit::content_hash).
        println!("netlist {}", ctx.circuit.content_hash());
    }

    // Every *.log in the directory, in name order (determinism).
    let mut log_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    log_files.sort();
    if log_files.is_empty() {
        return Err(format!("no *.log datalogs in {}", dir.display()));
    }
    // A bad datalog is the tester's fault, not the batch's: skip it,
    // say so, keep diagnosing the rest. Only an empty batch is fatal.
    let mut datalogs: Vec<Datalog> = Vec::with_capacity(log_files.len());
    let mut kept_files: Vec<PathBuf> = Vec::with_capacity(log_files.len());
    let mut inputs_skipped = 0u64;
    for path in log_files {
        let loaded = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading: {e}"))
            .and_then(|text| datalog_text::parse(&text).map_err(|e| e.to_string()));
        match loaded {
            Ok(datalog) => {
                datalogs.push(datalog);
                kept_files.push(path);
            }
            Err(why) => {
                inputs_skipped += 1;
                eprintln!("icdiag run: skipping {}: {why}", path.display());
            }
        }
    }
    if datalogs.is_empty() {
        return Err(format!(
            "all {inputs_skipped} datalogs in {} were unreadable or unparseable",
            dir.display()
        ));
    }

    let config = if workers > 0 {
        EngineConfig::with_workers(workers)
    } else {
        EngineConfig::from_env()
    };
    let engine = BatchEngine::new(config);
    let collector = Collector::new();
    if inputs_skipped > 0 {
        let _guard = collector.install();
        icd_obs::counter(
            "run.inputs_skipped",
            inputs_skipped,
            icd_obs::Stability::Stable,
        );
    }
    let batch = engine
        .diagnose_batch_observed(&ctx, &datalogs, Some(&collector))
        .map_err(|e| format!("batch diagnosis: {e}"))?;

    // Degraded: a whole datalog failed, or a suspect was skipped for a
    // reason other than the routine "no local failing patterns".
    let mut degraded = false;
    for outcome in &batch.outcomes {
        match &outcome.report {
            Err(_) => degraded = true,
            Ok(report) => {
                if report
                    .skipped
                    .iter()
                    .any(|s| !matches!(s.error, FlowError::NoLocalFailures))
                {
                    degraded = true;
                }
            }
        }
        if quiet {
            continue;
        }
        let name = kept_files[outcome.index]
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| format!("#{}", outcome.index));
        match &outcome.report {
            // The canonical shared rendering: the daemon's Report frames
            // carry these exact bytes for the same datalog.
            Ok(report) => println!("{name}: {}", summarize_report(&ctx, report)),
            Err(e) => println!("{name}: FAILED ({e})"),
        }
    }

    let snapshot = collector.snapshot();
    let stats = &batch.stats;
    let seconds = stats.elapsed.as_secs_f64().max(1e-9);
    let applied = (stats.datalogs * ctx.patterns.len()) as f64;
    println!(
        "batch: {} datalogs, {} suspect jobs, {} workers, {:.2}s \
         ({:.1} datalogs/s, {:.1} patterns/s, table cache {:.0}% hit, cpt cache {:.0}% hit, \
         {} sim faults dropped, {} cones filtered, {} inputs skipped)",
        stats.datalogs,
        stats.suspect_jobs,
        stats.workers,
        seconds,
        stats.datalogs as f64 / seconds,
        applied / seconds,
        stats.table_cache.hit_rate() * 100.0,
        stats.cpt_cache.hit_rate() * 100.0,
        snapshot.counter("eventsim.faults_dropped").unwrap_or(0),
        snapshot.counter("intercell.cone_filtered").unwrap_or(0),
        inputs_skipped,
    );

    if !quiet {
        let stages: Vec<_> = snapshot
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("flow.") || name.starts_with("batch."))
            .collect();
        if !stages.is_empty() {
            println!("per-stage latency:");
            for (name, h) in stages {
                println!(
                    "  {name:<22} {:>7} calls  total {:>10.1} ms  mean {:>8.0} us",
                    h.count,
                    h.sum_us as f64 / 1_000.0,
                    h.mean_us(),
                );
            }
        }
    }
    if let Some(path) = trace_out {
        std::fs::write(&path, collector.trace_json(false))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, snapshot.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    Ok(if degraded {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_volume(args: &[String]) -> ExitCode {
    match volume(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("icdiag volume: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Loads every `*.log` in `dir` in name order, returning the parsed
/// inputs and the count of unreadable/unparseable files skipped.
fn load_volume_inputs(dir: &Path) -> Result<(Vec<VolumeInput>, usize), String> {
    let mut log_files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    log_files.sort();
    if log_files.is_empty() {
        return Err(format!("no *.log datalogs in {}", dir.display()));
    }
    let mut inputs = Vec::with_capacity(log_files.len());
    let mut skipped = 0usize;
    for path in log_files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let loaded = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading: {e}"))
            .and_then(|text| datalog_text::parse(&text).map_err(|e| e.to_string()));
        match loaded {
            Ok(datalog) => inputs.push(VolumeInput { name, datalog }),
            Err(why) => {
                skipped += 1;
                eprintln!("icdiag volume: skipping {}: {why}", path.display());
            }
        }
    }
    if inputs.is_empty() {
        return Err(format!(
            "all {skipped} datalogs in {} were unreadable or unparseable",
            dir.display()
        ));
    }
    Ok((inputs, skipped))
}

/// The `planted_gate=` line a `gen --defect-rate` manifest records.
fn read_planted_gate(dir: &Path) -> Result<String, String> {
    let path = dir.join("manifest.txt");
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    text.lines()
        .find_map(|line| line.strip_prefix("planted_gate="))
        .map(|v| v.trim().to_owned())
        .ok_or_else(|| {
            format!(
                "{}: no planted_gate= line (generate with --defect-rate)",
                path.display()
            )
        })
}

/// A device name with its diagnosis busy time in microseconds.
type NamedUs<'a> = (&'a str, u64);

/// Per-device busy-time percentiles for the volume summary line:
/// `(slowest, p50, p95)` as `(name, busy_us)` pairs; `None` for an
/// empty batch. Nearest-rank percentiles over the sorted busy times,
/// ties broken by name so the line is deterministic.
fn device_latency_summary(
    latencies: &[(String, u64)],
) -> Option<(NamedUs<'_>, NamedUs<'_>, NamedUs<'_>)> {
    let mut sorted: Vec<&(String, u64)> = latencies.iter().collect();
    sorted.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    let slowest = sorted.last()?;
    let rank = |q: f64| {
        let n = sorted.len();
        let r = ((q * n as f64).ceil() as usize).clamp(1, n);
        let (name, us) = sorted[r - 1];
        (name.as_str(), *us)
    };
    Some(((slowest.0.as_str(), slowest.1), rank(0.50), rank(0.95)))
}

fn volume(args: &[String]) -> Result<ExitCode, String> {
    let (dir, flags) = parse_flags(args, &["check-planted", "quiet"])?;
    let workers: usize = flag(&flags, "workers", 0)?;
    let quiet = flags.iter().any(|(n, _)| n == "quiet");
    let check_planted = flags.iter().any(|(n, _)| n == "check-planted");
    let mut aggregation = AggregationConfig::default();
    aggregation.seed = flag(&flags, "seed", aggregation.seed)?;
    let path_flag = |name: &str| {
        flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| PathBuf::from(v))
    };
    let cache_dir = path_flag("cache-dir");
    let json_out = path_flag("json-out");
    let metrics_out = path_flag("metrics-out");

    let ctx = load_context(&dir)?;
    let (inputs, skipped) = load_volume_inputs(&dir)?;

    let run = VolumeRun::new(
        Arc::clone(&ctx),
        VolumeOptions {
            workers,
            aggregation,
            cache_dir,
        },
    );
    let collector = Collector::new();
    let outcome = run
        .execute(&inputs, skipped, Some(&collector))
        .map_err(|e| format!("volume diagnosis: {e}"))?;

    for (name, why) in &outcome.failures {
        eprintln!("icdiag volume: {name}: FAILED ({why})");
    }
    if !quiet {
        print!("{}", outcome.report.render_text());
        let stats = &outcome.stats;
        println!(
            "cache: {} tables restored, {} persisted, {} derived this run",
            stats.snapshot_tables_loaded, stats.snapshot_tables_saved, stats.table_misses
        );
        // Operator-facing only: busy time is scheduling-dependent and
        // never enters the serialized report.
        if let Some((slowest, p50, p95)) = device_latency_summary(&outcome.device_latency) {
            println!(
                "device latency: p50 {:.1} ms, p95 {:.1} ms, slowest {} ({:.1} ms)",
                p50.1 as f64 / 1_000.0,
                p95.1 as f64 / 1_000.0,
                slowest.0,
                slowest.1 as f64 / 1_000.0,
            );
        }
    }
    if let Some(path) = json_out {
        std::fs::write(&path, outcome.report.to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, collector.snapshot().to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }

    if check_planted {
        let planted = read_planted_gate(&dir)?;
        let top = outcome.report.root_causes.first();
        let hit = matches!(
            top.map(|rc| &rc.kind),
            Some(RootCauseKind::Gate { name, .. }) if *name == planted
        );
        if !hit {
            return Err(format!(
                "planted gate {planted} is not the top root cause (got {})",
                top.map_or_else(|| "none".to_owned(), |rc| rc.kind.describe())
            ));
        }
        println!("check-planted: ok ({planted} ranks first)");
    }

    Ok(
        if outcome.report.devices_failed > 0 || outcome.report.devices_skipped > 0 {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        },
    )
}

fn cmd_serve(args: &[String]) -> ExitCode {
    match serve(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("icdiag serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let (dir, flags) = parse_flags(args, &[])?;
    let addr: String = flag(&flags, "addr", "127.0.0.1:0".to_owned())?;
    let workers: usize = flag(&flags, "workers", 0)?;
    let queue: usize = flag(&flags, "queue", 64)?;
    let deadline_ms: u64 = flag(&flags, "deadline-ms", 30_000)?;
    let idle_ms: u64 = flag(&flags, "idle-ms", 30_000)?;
    let drain_ms: u64 = flag(&flags, "drain-ms", 10_000)?;
    let chaos_rate: f64 = flag(&flags, "chaos-panic-rate", 0.0)?;
    let chaos_seed: u64 = flag(&flags, "chaos-seed", 0xc4a05)?;
    let slow_ms: u64 = flag(&flags, "slow-ms", 1_000)?;
    let metrics_out = flags
        .iter()
        .find(|(n, _)| n == "metrics-out")
        .map(|(_, v)| PathBuf::from(v));
    let event_log = flags
        .iter()
        .find(|(n, _)| n == "event-log")
        .map(|(_, v)| {
            icd_obs::EventLog::open(v.as_str(), icd_obs::DEFAULT_MAX_BYTES)
                .map(Arc::new)
                .map_err(|e| format!("opening event log {v}: {e}"))
        })
        .transpose()?;

    let ctx = load_context(&dir)?;
    let engine_defaults = if workers > 0 {
        EngineConfig::with_workers(workers)
    } else {
        EngineConfig::from_env()
    };
    let config = ServerConfig {
        workers: engine_defaults.workers,
        queue_capacity: queue,
        default_deadline: Duration::from_millis(deadline_ms),
        idle_timeout: Duration::from_millis(idle_ms),
        drain_deadline: Duration::from_millis(drain_ms),
        chaos_panics: (chaos_rate > 0.0).then_some(ChaosPanics {
            rate: chaos_rate,
            seed: chaos_seed,
        }),
        event_log,
        slow_threshold: Duration::from_millis(slow_ms),
        ..ServerConfig::default()
    };

    let collector = Collector::new();
    let _guard = collector.install();
    let server = Server::bind(&addr, ctx, config).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // The CI smoke step parses this exact line for the bound port.
    println!("icdiag serve: listening on {bound}");
    let outcome = server.run().map_err(|e| format!("serving: {e}"))?;
    println!("icdiag serve: drained ({outcome:?})");
    if let Some(path) = metrics_out {
        std::fs::write(&path, collector.snapshot().to_json())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(match outcome {
        icd_server::DrainOutcome::Clean => ExitCode::SUCCESS,
        icd_server::DrainOutcome::Forced => ExitCode::from(3),
    })
}

fn cmd_submit(args: &[String]) -> ExitCode {
    match submit(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("icdiag submit: {e}");
            ExitCode::FAILURE
        }
    }
}

fn submit(args: &[String]) -> Result<ExitCode, String> {
    let [addr, file, rest @ ..] = args else {
        return Err(
            "usage: icdiag submit <addr> <file.log> [--deadline-ms N] [--timeout-ms N] \
             [--trace-id HEX]"
                .to_owned(),
        );
    };
    let flags = parse_flag_pairs(rest, &[])?;
    let deadline_ms: u32 = flag(&flags, "deadline-ms", 0)?;
    let timeout_ms: u64 = flag(&flags, "timeout-ms", 60_000)?;
    let trace_id = flags
        .iter()
        .find(|(n, _)| n == "trace-id")
        .map(|(_, v)| parse_trace_id(v))
        .transpose()?;

    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let mut client = Client::connect(addr.as_str(), Duration::from_millis(timeout_ms))
        .map_err(|e| format!("connecting {addr}: {e}"))?;
    let response = client
        .submit_traced(&text, deadline_ms, trace_id)
        .map_err(|e| format!("submitting {file}: {e}"))?;
    let name = Path::new(file)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| file.clone());
    if let Some(id) = trace_id {
        // The grep key for the daemon's --event-log record.
        println!("{name}: trace_id {id:#018x}");
    }
    println!("{name}: {}", response.summary);
    Ok(match response.status {
        ResponseStatus::Ok => ExitCode::SUCCESS,
        ResponseStatus::Degraded => ExitCode::from(3),
    })
}

fn cmd_submit_volume(args: &[String]) -> ExitCode {
    match submit_volume(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("icdiag submit-volume: {e}");
            ExitCode::FAILURE
        }
    }
}

fn submit_volume(args: &[String]) -> Result<ExitCode, String> {
    let [addr, dir, rest @ ..] = args else {
        return Err(
            "usage: icdiag submit-volume <addr> <dir> [--deadline-ms N] [--timeout-ms N]"
                .to_owned(),
        );
    };
    let flags = parse_flag_pairs(rest, &[])?;
    let deadline_ms: u32 = flag(&flags, "deadline-ms", 0)?;
    let timeout_ms: u64 = flag(&flags, "timeout-ms", 120_000)?;

    // Raw texts, name order: the server parses (and skips) for itself,
    // so its skip accounting matches a local run over the same corpus.
    let dir = PathBuf::from(dir);
    let mut log_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    log_files.sort();
    if log_files.is_empty() {
        return Err(format!("no *.log datalogs in {}", dir.display()));
    }
    let mut devices: Vec<(String, String)> = Vec::with_capacity(log_files.len());
    for path in log_files {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        devices.push((name, text));
    }

    let mut client = Client::connect(addr.as_str(), Duration::from_millis(timeout_ms))
        .map_err(|e| format!("connecting {addr}: {e}"))?;
    let response = client
        .submit_volume(&devices, deadline_ms)
        .map_err(|e| format!("submitting {}: {e}", dir.display()))?;
    // The canonical volume-report JSON — byte-identical to a local
    // `icdiag volume --json-out` over the same corpus.
    println!("{}", response.summary);
    Ok(match response.status {
        ResponseStatus::Ok => ExitCode::SUCCESS,
        ResponseStatus::Degraded => ExitCode::from(3),
    })
}

fn cmd_stats(args: &[String]) -> ExitCode {
    match stats(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("icdiag stats: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stats(args: &[String]) -> Result<(), String> {
    let Some(addr) = args.first() else {
        return Err("usage: icdiag stats <addr>".to_owned());
    };
    let mut client = Client::connect(addr.as_str(), Duration::from_secs(10))
        .map_err(|e| format!("connecting {addr}: {e}"))?;
    let snapshot = client
        .stats()
        .map_err(|e| format!("fetching stats from {addr}: {e}"))?;
    // The StatsReport payload is already the canonical JSON snapshot.
    print!("{snapshot}");
    Ok(())
}

fn cmd_top(args: &[String]) -> ExitCode {
    match top(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("icdiag top: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A dashboard line per poll: totals, queue/in-flight gauges, and the
/// windowed request percentiles. `--count 0` polls until the daemon
/// goes away.
fn top(args: &[String]) -> Result<(), String> {
    let [addr, rest @ ..] = args else {
        return Err("usage: icdiag top <addr> [--interval-ms N] [--count N]".to_owned());
    };
    let flags = parse_flag_pairs(rest, &[])?;
    let interval_ms: u64 = flag(&flags, "interval-ms", 1_000)?;
    let count: u64 = flag(&flags, "count", 0)?;

    let mut client = Client::connect(addr.as_str(), Duration::from_secs(10))
        .map_err(|e| format!("connecting {addr}: {e}"))?;
    println!(
        "{:>8} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>9} {:>9} {:>9}",
        "total", "clean", "degr", "fail", "rej", "queue", "infl", "p50_ms", "p95_ms", "p99_ms"
    );
    let mut polls = 0u64;
    loop {
        let snapshot = client
            .stats()
            .map_err(|e| format!("fetching stats from {addr}: {e}"))?;
        let v = icd_obs::json::parse(&snapshot)
            .map_err(|e| format!("stats snapshot: invalid JSON: {e}"))?;
        let num = |path: &[&str]| -> u64 {
            let mut cur = &v;
            for key in path {
                match cur.get(key) {
                    Some(next) => cur = next,
                    None => return 0,
                }
            }
            cur.as_u64().unwrap_or(0)
        };
        let pct_ms = |name: &str| -> String {
            let window = v
                .get("latency")
                .and_then(|l| l.get("request"))
                .and_then(|r| r.get("window"));
            match window.and_then(|w| w.get(name)).and_then(Value::as_u64) {
                Some(us) => format!("{:.1}", us as f64 / 1_000.0),
                None => "-".to_owned(),
            }
        };
        println!(
            "{:>8} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>9} {:>9} {:>9}{}",
            num(&["requests", "total"]),
            num(&["requests", "clean"]),
            num(&["requests", "degraded"]),
            num(&["requests", "failed"]),
            num(&["requests", "rejected"]),
            num(&["server", "queue_depth"]),
            num(&["server", "in_flight"]),
            pct_ms("p50_us"),
            pct_ms("p95_us"),
            pct_ms("p99_us"),
            if v.get("server")
                .and_then(|s| s.get("draining"))
                .and_then(Value::as_bool)
                == Some(true)
            {
                "  [draining]"
            } else {
                ""
            },
        );
        polls += 1;
        if count > 0 && polls >= count {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

fn cmd_benchdiff(args: &[String]) -> ExitCode {
    match benchdiff(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("icdiag benchdiff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn benchdiff(args: &[String]) -> Result<ExitCode, String> {
    let [baseline, fresh, rest @ ..] = args else {
        return Err(
            "usage: icdiag benchdiff <baseline.json> <fresh.json> [--tolerance F]".to_owned(),
        );
    };
    let flags = parse_flag_pairs(rest, &[])?;
    let tolerance: f64 = flag(&flags, "tolerance", 0.20)?;
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance: {tolerance} must be in [0, 1)"));
    }
    let old_json =
        std::fs::read_to_string(baseline).map_err(|e| format!("reading {baseline}: {e}"))?;
    let new_json = std::fs::read_to_string(fresh).map_err(|e| format!("reading {fresh}: {e}"))?;
    let diff = icd_server::benchdiff::compare(&old_json, &new_json, tolerance)?;
    print!("{}", diff.to_json());
    Ok(if diff.regressions() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(4)
    })
}

fn cmd_shutdown(args: &[String]) -> ExitCode {
    match shutdown(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("icdiag shutdown: {e}");
            ExitCode::FAILURE
        }
    }
}

fn shutdown(args: &[String]) -> Result<(), String> {
    let Some(addr) = args.first() else {
        return Err("usage: icdiag shutdown <addr>".to_owned());
    };
    let mut client = Client::connect(addr.as_str(), Duration::from_secs(10))
        .map_err(|e| format!("connecting {addr}: {e}"))?;
    client
        .shutdown_server()
        .map_err(|e| format!("shutting down {addr}: {e}"))?;
    println!("icdiag shutdown: server draining");
    Ok(())
}

fn cmd_check_metrics(args: &[String]) -> ExitCode {
    match check_metrics(args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("icdiag check-metrics: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Offline validation of a `--metrics-out` file: well-formed JSON, the
/// expected counter/gauge/histogram keys, and internally consistent
/// histograms (bucket counts summing to the sample count).
fn check_metrics(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("missing <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let root = icd_obs::json::parse(&text)
        .map_err(|e| format!("{path}: invalid JSON at byte {}: {}", e.offset, e.message))?;

    let section = |name: &str| {
        root.get(name)
            .ok_or_else(|| format!("{path}: missing {name:?} object"))
    };
    let counters = section("counters")?;
    let gauges = section("gauges")?;
    let histograms = section("histograms")?;

    let check_value = |owner: &Value, kind: &str, name: &str| -> Result<(), String> {
        let entry = owner
            .get(name)
            .ok_or_else(|| format!("{path}: missing {kind} {name:?}"))?;
        entry
            .get("value")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}: {kind} {name:?} lacks an integer \"value\""))?;
        match entry.get("stability").and_then(Value::as_str) {
            Some("stable") | Some("timing") => Ok(()),
            _ => Err(format!(
                "{path}: {kind} {name:?} lacks a \"stability\" of stable/timing"
            )),
        }
    };
    for name in [
        "batch.datalogs",
        "batch.suspect_jobs",
        "cache.table.lookups",
        "cache.cpt.lookups",
        "pool.jobs_executed",
    ] {
        check_value(counters, "counter", name)?;
    }
    check_value(gauges, "gauge", "pool.workers")?;

    let mut stage_histograms = 0usize;
    let names = histograms
        .as_object()
        .ok_or_else(|| format!("{path}: \"histograms\" is not an object"))?;
    for (name, h) in names {
        let count = h
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}: histogram {name:?} lacks \"count\""))?;
        h.get("sum_us")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}: histogram {name:?} lacks \"sum_us\""))?;
        let buckets = h
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{path}: histogram {name:?} lacks \"buckets\""))?;
        if buckets.len() != icd_obs::BUCKETS {
            return Err(format!(
                "{path}: histogram {name:?} has {} buckets, expected {}",
                buckets.len(),
                icd_obs::BUCKETS
            ));
        }
        let bucket_total: u64 = buckets.iter().filter_map(Value::as_u64).sum();
        if bucket_total != count {
            return Err(format!(
                "{path}: histogram {name:?} buckets sum to {bucket_total}, count is {count}"
            ));
        }
        if name.starts_with("flow.") {
            stage_histograms += 1;
        }
    }
    if stage_histograms == 0 {
        return Err(format!("{path}: no flow.* stage histograms recorded"));
    }
    Ok(format!(
        "{path}: ok ({} flow stage histograms)",
        stage_histograms
    ))
}
