//! A small blocking client for the diagnosis daemon — what `icdiag
//! submit` and the test harnesses speak.

use std::error::Error;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::frame::{self, ErrorCode, Frame, FrameType, ResponseStatus, DEFAULT_MAX_PAYLOAD};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing failed.
    Frame(frame::FrameError),
    /// The server answered with an `Error` frame.
    Server {
        /// The machine-readable code byte.
        code: Option<ErrorCode>,
        /// The human-readable message.
        message: String,
    },
    /// The server closed (or said goodbye) before answering.
    Closed,
    /// The server sent a response that makes no sense here (wrong
    /// request id, malformed report payload).
    UnexpectedResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Closed => write!(f, "server closed the connection before answering"),
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<frame::FrameError> for ClientError {
    fn from(e: frame::FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(frame::FrameError::Io(e))
    }
}

/// The server's final answer to one submitted datalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Complete or degraded (mirrors `icdiag` exit semantics).
    pub status: ResponseStatus,
    /// The canonical summary line — byte-identical to the matching
    /// `icdiag run` output line.
    pub summary: String,
    /// Gate indices from the streamed `Suspects` frame (if any).
    pub suspects: Vec<u32>,
    /// `(slot, gate, ok)` from each streamed `Progress` frame.
    pub progress: Vec<(usize, u32, bool)>,
}

/// One blocking connection to a diagnosis daemon. Requests run
/// sequentially; the connection is reusable across requests.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects with a socket read timeout generous enough for a full
    /// diagnosis (pass the server's deadline plus slack).
    ///
    /// # Errors
    ///
    /// Connection/I-O failures.
    pub fn connect<A: ToSocketAddrs>(addr: A, io_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        frame::write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Frame>, ClientError> {
        Ok(frame::read_frame(&mut self.reader, DEFAULT_MAX_PAYLOAD)?)
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-pong answer.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.next_id();
        self.send(&Frame::bare(FrameType::Ping, id))?;
        match self.recv()? {
            Some(f) if f.frame_type == FrameType::Pong && f.request_id == id => Ok(()),
            Some(f) => Err(ClientError::UnexpectedResponse(format!(
                "{:?}",
                f.frame_type
            ))),
            None => Err(ClientError::Closed),
        }
    }

    /// Submits one datalog (text form) and blocks until the final
    /// `Report` frame, collecting streamed progress along the way.
    /// `deadline_ms = 0` asks for the server's default deadline.
    ///
    /// # Errors
    ///
    /// Transport failures, server `Error` frames, or an early close.
    pub fn submit(
        &mut self,
        datalog_text: &str,
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        self.submit_traced(datalog_text, deadline_ms, None)
    }

    /// [`Client::submit`] carrying an explicit trace id on the request
    /// frame ([`frame::FLAG_TRACE_ID`]); the server adopts it for the
    /// request's event-log record instead of minting its own.
    ///
    /// # Errors
    ///
    /// Transport failures, server `Error` frames, or an early close.
    pub fn submit_traced(
        &mut self,
        datalog_text: &str,
        deadline_ms: u32,
        trace_id: Option<u64>,
    ) -> Result<Response, ClientError> {
        let id = self.next_id();
        self.send(&Frame {
            frame_type: FrameType::Request,
            request_id: id,
            trace_id,
            payload: frame::request_payload(deadline_ms, datalog_text),
        })?;
        let mut suspects = Vec::new();
        let mut progress = Vec::new();
        loop {
            let Some(f) = self.recv()? else {
                return Err(ClientError::Closed);
            };
            if f.request_id != id && f.frame_type != FrameType::Goodbye {
                return Err(ClientError::UnexpectedResponse(format!(
                    "frame for request {} while waiting on {id}",
                    f.request_id
                )));
            }
            match f.frame_type {
                FrameType::Suspects => {
                    // A retried attempt re-streams; last write wins.
                    suspects = std::str::from_utf8(&f.payload)
                        .unwrap_or("")
                        .split_whitespace()
                        .filter_map(|t| t.parse::<u32>().ok())
                        .collect();
                    progress.clear();
                }
                FrameType::Progress => {
                    if let Some(p) = parse_progress(&f.payload) {
                        progress.push(p);
                    }
                }
                FrameType::Report => {
                    let (status, summary) = parse_report(&f.payload)?;
                    return Ok(Response {
                        status,
                        summary,
                        suspects,
                        progress,
                    });
                }
                FrameType::Error => return Err(parse_error(&f.payload)),
                FrameType::Goodbye => return Err(ClientError::Closed),
                other => {
                    return Err(ClientError::UnexpectedResponse(format!("{other:?}")));
                }
            }
        }
    }

    /// Submits a named corpus of datalog texts for volume diagnosis and
    /// blocks until the final `Report` frame, whose summary is the
    /// canonical volume-report JSON (byte-identical to `icdiag volume
    /// --json-out` over the same corpus). Streamed per-device
    /// Suspects/Progress frames are collected like [`Client::submit`];
    /// `suspects` holds the last streamed set.
    ///
    /// # Errors
    ///
    /// Transport failures, server `Error` frames, or an early close.
    pub fn submit_volume(
        &mut self,
        devices: &[(String, String)],
        deadline_ms: u32,
    ) -> Result<Response, ClientError> {
        let id = self.next_id();
        self.send(&Frame {
            frame_type: FrameType::Volume,
            request_id: id,
            trace_id: None,
            payload: frame::volume_request_payload(deadline_ms, devices),
        })?;
        let mut suspects = Vec::new();
        let mut progress = Vec::new();
        loop {
            let Some(f) = self.recv()? else {
                return Err(ClientError::Closed);
            };
            if f.request_id != id && f.frame_type != FrameType::Goodbye {
                return Err(ClientError::UnexpectedResponse(format!(
                    "frame for request {} while waiting on {id}",
                    f.request_id
                )));
            }
            match f.frame_type {
                FrameType::Suspects => {
                    suspects = std::str::from_utf8(&f.payload)
                        .unwrap_or("")
                        .split_whitespace()
                        .filter_map(|t| t.parse::<u32>().ok())
                        .collect();
                }
                FrameType::Progress => {
                    if let Some(p) = parse_progress(&f.payload) {
                        progress.push(p);
                    }
                }
                FrameType::Report => {
                    let (status, summary) = parse_report(&f.payload)?;
                    return Ok(Response {
                        status,
                        summary,
                        suspects,
                        progress,
                    });
                }
                FrameType::Error => return Err(parse_error(&f.payload)),
                FrameType::Goodbye => return Err(ClientError::Closed),
                other => {
                    return Err(ClientError::UnexpectedResponse(format!("{other:?}")));
                }
            }
        }
    }

    /// Snapshots the daemon's live stats: rolling-window counters,
    /// latency percentiles, queue depth, drain state, uptime. Returns
    /// the raw JSON (byte-stable field names; parse with
    /// [`icd_obs::json`] if structure is needed).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-`StatsReport` answer.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let id = self.next_id();
        self.send(&Frame::bare(FrameType::Stats, id))?;
        match self.recv()? {
            Some(f) if f.frame_type == FrameType::StatsReport && f.request_id == id => {
                Ok(String::from_utf8_lossy(&f.payload).into_owned())
            }
            Some(f) if f.frame_type == FrameType::Goodbye => Err(ClientError::Closed),
            Some(f) => Err(ClientError::UnexpectedResponse(format!(
                "{:?}",
                f.frame_type
            ))),
            None => Err(ClientError::Closed),
        }
    }

    /// Asks the daemon to drain and exit; resolves on its `Goodbye`.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected answer.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.next_id();
        self.send(&Frame::bare(FrameType::Shutdown, id))?;
        match self.recv()? {
            Some(f) if f.frame_type == FrameType::Goodbye => Ok(()),
            // Server may close right after; treat EOF as acknowledged.
            None => Ok(()),
            Some(f) => Err(ClientError::UnexpectedResponse(format!(
                "{:?}",
                f.frame_type
            ))),
        }
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

fn parse_progress(payload: &[u8]) -> Option<(usize, u32, bool)> {
    let text = std::str::from_utf8(payload).ok()?;
    let mut slot = None;
    let mut gate = None;
    let mut ok = None;
    for part in text.split_whitespace() {
        let (key, value) = part.split_once('=')?;
        match key {
            "slot" => slot = value.parse::<usize>().ok(),
            "gate" => gate = value.parse::<u32>().ok(),
            "ok" => ok = Some(value == "1"),
            _ => {}
        }
    }
    Some((slot?, gate?, ok?))
}

fn parse_report(payload: &[u8]) -> Result<(ResponseStatus, String), ClientError> {
    let (&status_byte, rest) = payload
        .split_first()
        .ok_or_else(|| ClientError::UnexpectedResponse("empty report payload".to_owned()))?;
    let status = ResponseStatus::from_u8(status_byte).ok_or_else(|| {
        ClientError::UnexpectedResponse(format!("unknown response status {status_byte}"))
    })?;
    let summary = String::from_utf8_lossy(rest).into_owned();
    Ok((status, summary))
}

fn parse_error(payload: &[u8]) -> ClientError {
    match payload.split_first() {
        Some((&code, rest)) => ClientError::Server {
            code: ErrorCode::from_u8(code),
            message: String::from_utf8_lossy(rest).into_owned(),
        },
        None => ClientError::Server {
            code: None,
            message: "empty error payload".to_owned(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_and_report_payloads_parse() {
        assert_eq!(parse_progress(b"slot=2 gate=17 ok=1"), Some((2, 17, true)));
        assert_eq!(parse_progress(b"slot=0 gate=3 ok=0"), Some((0, 3, false)));
        assert_eq!(parse_progress(b"slot=2 gate=17"), None);
        assert_eq!(parse_progress(b"garbage"), None);

        let (status, summary) = parse_report(b"\x00hello").expect("parses");
        assert_eq!(status, ResponseStatus::Ok);
        assert_eq!(summary, "hello");
        let (status, _) = parse_report(b"\x03partial").expect("parses");
        assert_eq!(status, ResponseStatus::Degraded);
        assert!(parse_report(b"").is_err());
        assert!(parse_report(b"\x07x").is_err());
    }

    #[test]
    fn error_payloads_parse_with_and_without_known_codes() {
        match parse_error(b"\x03queue full") {
            ClientError::Server {
                code: Some(ErrorCode::Busy),
                message,
            } => {
                assert_eq!(message, "queue full");
            }
            other => panic!("unexpected: {other:?}"),
        }
        match parse_error(b"\xffwho knows") {
            ClientError::Server { code: None, .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
