//! Bench-to-baseline comparison: the perf-regression gate behind
//! `icdiag benchdiff`.
//!
//! The repo commits one JSON baseline per benchmark (`BENCH_engine.json`,
//! `BENCH_packed.json`, `BENCH_eventsim.json`). A fresh bench run emits
//! the same shape; this module flattens both files to dot-path numeric
//! metrics, classifies each metric's direction, and flags regressions
//! past a tolerance:
//!
//! * **higher is better** (gated): `*_per_s` throughputs, `speedup`,
//!   `gate_eval_reduction` — a new value below `old × (1 − tolerance)`
//!   regresses;
//! * **lower is better** (gated): top-level `seconds` / `*_seconds`
//!   wall times — a new value above `old × (1 + tolerance)` regresses;
//! * **informational** (never gated): everything else, including
//!   per-stage timings under `stages.` (cumulative CPU seconds are
//!   scheduling-dependent and far too noisy to gate) and metrics present
//!   in only one file.
//!
//! The verdict is machine-readable JSON; `icdiag benchdiff` exits 4 on
//! any regression so CI can gate on it.

use icd_obs::json::{self, Value};

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-class: smaller new values regress.
    HigherIsBetter,
    /// Wall-time-class: larger new values regress.
    LowerIsBetter,
    /// Compared and reported but never gated.
    Informational,
}

impl Direction {
    fn label(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher_is_better",
            Direction::LowerIsBetter => "lower_is_better",
            Direction::Informational => "informational",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Dot-path into the bench JSON, e.g. `results.0.suspects_per_s`.
    pub name: String,
    /// Baseline value.
    pub old: f64,
    /// Fresh value.
    pub new: f64,
    /// Gating direction.
    pub direction: Direction,
    /// Tolerance applied (fraction, e.g. 0.2 = 20%).
    pub tolerance: f64,
    /// Whether this metric regressed past its tolerance.
    pub regressed: bool,
}

/// The full comparison of one bench file against its baseline.
#[derive(Debug)]
pub struct BenchDiff {
    /// The `bench` name both files agree on.
    pub bench: String,
    /// Every metric present in both files, in path order.
    pub metrics: Vec<MetricDelta>,
    /// Metric paths present only in the baseline.
    pub only_old: Vec<String>,
    /// Metric paths present only in the fresh run.
    pub only_new: Vec<String>,
}

impl BenchDiff {
    /// How many gated metrics regressed.
    pub fn regressions(&self) -> usize {
        self.metrics.iter().filter(|m| m.regressed).count()
    }

    /// The machine-readable verdict (`"verdict": "pass" | "regress"`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"bench\": \"{}\",\n  \"verdict\": \"{}\",\n  \"compared\": {},\n  \"regressions\": {},\n",
            self.bench,
            if self.regressions() == 0 { "pass" } else { "regress" },
            self.metrics.len(),
            self.regressions(),
        ));
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"old\": {}, \"new\": {}, \"direction\": \"{}\", \"tolerance\": {}, \"status\": \"{}\" }}{}\n",
                m.name,
                m.old,
                m.new,
                m.direction.label(),
                m.tolerance,
                if m.regressed { "regressed" } else { "ok" },
                if i + 1 < self.metrics.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        for (key, paths) in [("only_old", &self.only_old), ("only_new", &self.only_new)] {
            out.push_str(&format!("  \"{key}\": ["));
            for (i, p) in paths.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{p}\""));
            }
            out.push(']');
            out.push_str(if key == "only_old" { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

fn flatten(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Num(n) => out.push((prefix.to_owned(), *n)),
        Value::Obj(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &path, out);
            }
        }
        Value::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{prefix}.{i}"), out);
            }
        }
        _ => {}
    }
}

/// Classifies a metric path. Only the final path segment decides the
/// direction; anything under a `stages.` subtree is informational
/// regardless (per-stage CPU attribution is scheduling noise).
fn classify(path: &str) -> Direction {
    if path.contains("stages.") {
        return Direction::Informational;
    }
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.ends_with("_per_s") || leaf == "speedup" || leaf == "gate_eval_reduction" {
        Direction::HigherIsBetter
    } else if leaf == "seconds" || leaf.ends_with("_seconds") {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// Compares a fresh bench JSON against its committed baseline.
///
/// # Errors
///
/// A human-readable message when either file fails to parse, the
/// `bench` names disagree, or no metric overlaps.
pub fn compare(old_json: &str, new_json: &str, tolerance: f64) -> Result<BenchDiff, String> {
    let old = json::parse(old_json).map_err(|e| format!("baseline: {e}"))?;
    let new = json::parse(new_json).map_err(|e| format!("fresh run: {e}"))?;
    let bench_of = |v: &Value| -> Option<String> {
        v.get("bench").and_then(|b| b.as_str()).map(str::to_owned)
    };
    let old_bench = bench_of(&old).ok_or("baseline has no \"bench\" name")?;
    let new_bench = bench_of(&new).ok_or("fresh run has no \"bench\" name")?;
    if old_bench != new_bench {
        return Err(format!(
            "bench mismatch: baseline is \"{old_bench}\", fresh run is \"{new_bench}\""
        ));
    }
    let mut old_metrics = Vec::new();
    let mut new_metrics = Vec::new();
    flatten(&old, "", &mut old_metrics);
    flatten(&new, "", &mut new_metrics);
    let new_map: std::collections::BTreeMap<&str, f64> =
        new_metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let old_keys: std::collections::BTreeSet<&str> =
        old_metrics.iter().map(|(k, _)| k.as_str()).collect();

    let mut metrics = Vec::new();
    let mut only_old = Vec::new();
    for (name, old_value) in &old_metrics {
        let Some(&new_value) = new_map.get(name.as_str()) else {
            only_old.push(name.clone());
            continue;
        };
        let direction = classify(name);
        let regressed = match direction {
            Direction::HigherIsBetter => new_value < old_value * (1.0 - tolerance),
            Direction::LowerIsBetter => new_value > old_value * (1.0 + tolerance),
            Direction::Informational => false,
        };
        metrics.push(MetricDelta {
            name: name.clone(),
            old: *old_value,
            new: new_value,
            direction,
            tolerance,
            regressed,
        });
    }
    let only_new: Vec<String> = new_metrics
        .iter()
        .filter(|(k, _)| !old_keys.contains(k.as_str()))
        .map(|(k, _)| k.clone())
        .collect();
    if metrics.is_empty() {
        return Err("no metric overlaps between baseline and fresh run".to_owned());
    }
    Ok(BenchDiff {
        bench: old_bench,
        metrics,
        only_old,
        only_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{ "bench": "engine_throughput", "host_cores": 1,
        "results": [ { "workers": 1, "seconds": 0.10, "suspects_per_s": 300.0, "speedup": 1.0,
            "stages": { "flow.intercell": { "calls": 8, "cpu_seconds": 0.08 } } } ] }"#;

    fn with_suspects(per_s: f64) -> String {
        BASE.replace("300.0", &per_s.to_string())
    }

    #[test]
    fn identical_runs_pass() {
        let diff = compare(BASE, BASE, 0.20).expect("compares");
        assert_eq!(diff.regressions(), 0);
        assert!(diff.to_json().contains("\"verdict\": \"pass\""));
        // Stage timings are compared but never gated.
        let stage = diff
            .metrics
            .iter()
            .find(|m| m.name.contains("stages."))
            .expect("stage metric present");
        assert_eq!(stage.direction, Direction::Informational);
    }

    #[test]
    fn a_20_percent_throughput_drop_regresses() {
        let fresh = with_suspects(300.0 * 0.79);
        let diff = compare(BASE, &fresh, 0.20).expect("compares");
        assert_eq!(diff.regressions(), 1);
        let json = diff.to_json();
        assert!(json.contains("\"verdict\": \"regress\""));
        assert!(json.contains("suspects_per_s"));
        // Just inside tolerance: passes.
        let ok = with_suspects(300.0 * 0.81);
        assert_eq!(compare(BASE, &ok, 0.20).expect("compares").regressions(), 0);
    }

    #[test]
    fn wall_time_increases_regress_but_stage_noise_does_not() {
        let slower = BASE.replace("\"seconds\": 0.10", "\"seconds\": 0.15");
        let diff = compare(BASE, &slower, 0.20).expect("compares");
        assert_eq!(diff.regressions(), 1);
        let noisy_stage = BASE.replace("0.08", "0.80");
        assert_eq!(
            compare(BASE, &noisy_stage, 0.20)
                .expect("compares")
                .regressions(),
            0,
            "stage timings are informational"
        );
    }

    #[test]
    fn mismatched_or_malformed_inputs_error() {
        assert!(compare("not json", BASE, 0.2).is_err());
        assert!(compare(BASE, "not json", 0.2).is_err());
        let other = BASE.replace("engine_throughput", "packed_throughput");
        assert!(compare(BASE, &other, 0.2).is_err());
    }

    #[test]
    fn one_sided_metrics_are_listed_not_gated() {
        let extra = BASE.replace(
            "\"speedup\": 1.0,",
            "\"speedup\": 1.0, \"new_metric\": 5.0,",
        );
        let diff = compare(BASE, &extra, 0.2).expect("compares");
        assert_eq!(diff.regressions(), 0);
        assert_eq!(diff.only_new, vec!["results.0.new_metric".to_owned()]);
        let verdict = diff.to_json();
        let parsed = icd_obs::json::parse(&verdict).expect("verdict is valid JSON");
        assert!(parsed.get("only_new").is_some());
    }
}
