//! Live server stats: the data behind the `Stats` wire frame.
//!
//! One [`LiveStats`] lives in the shared server state. The request path
//! touches it twice per request — one atomic increment per outcome
//! counter and one brief mutex around a
//! [`WindowedHistogram`](icd_obs::WindowedHistogram) — so snapshots
//! never pause service: a snapshot reads the atomics and clones merged
//! histograms without blocking writers for more than one record.
//!
//! The counters partition: every `Request`/`Volume` frame lands in
//! exactly one of clean/degraded/failed/rejected, and `requests_total`
//! equals their sum once the request finishes (a snapshot taken *while*
//! a request is being recorded may momentarily run ahead by the
//! in-flight increment; quiescent totals are exact — the chaos soak
//! asserts this). Pings are liveness probes, not requests, and are
//! counted separately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use icd_obs::{HistogramSnapshot, WindowedHistogram};

/// Which wire request type a latency sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A single-datalog `Request` frame.
    Request,
    /// A multi-device `Volume` frame.
    Volume,
    /// A `Ping` frame (liveness, not diagnosis).
    Ping,
}

/// How one `Request`/`Volume` frame ended — the outcome partition of
/// `requests_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// A complete report ([`ResponseStatus::Ok`](crate::ResponseStatus)).
    Clean,
    /// A complete-but-degraded report (skipped suspects, partial volume
    /// coverage).
    Degraded,
    /// The request failed: bad payload, expired deadline, or an internal
    /// error survived every retry.
    Failed,
    /// Admission kept failing — the queue stayed full through the whole
    /// retry budget ([`ErrorCode::Busy`](crate::ErrorCode)).
    Rejected,
}

/// The rolling window the latency percentiles cover: 60 s in 6 slices,
/// so a snapshot spans between 50 s and 60 s of recent traffic.
const WINDOW: Duration = Duration::from_secs(60);
const WINDOW_SLICES: usize = 6;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Live counters and windowed latency histograms for one daemon.
#[derive(Debug)]
pub struct LiveStats {
    started: Instant,
    requests_total: AtomicU64,
    requests_clean: AtomicU64,
    requests_degraded: AtomicU64,
    requests_failed: AtomicU64,
    requests_rejected: AtomicU64,
    volume_requests: AtomicU64,
    pings_total: AtomicU64,
    latency_request: Mutex<WindowedHistogram>,
    latency_volume: Mutex<WindowedHistogram>,
    latency_ping: Mutex<WindowedHistogram>,
}

impl Default for LiveStats {
    fn default() -> Self {
        LiveStats::new()
    }
}

impl LiveStats {
    /// Fresh stats with the uptime clock starting now.
    pub fn new() -> Self {
        LiveStats {
            started: Instant::now(),
            requests_total: AtomicU64::new(0),
            requests_clean: AtomicU64::new(0),
            requests_degraded: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            requests_rejected: AtomicU64::new(0),
            volume_requests: AtomicU64::new(0),
            pings_total: AtomicU64::new(0),
            latency_request: Mutex::new(WindowedHistogram::new(WINDOW, WINDOW_SLICES)),
            latency_volume: Mutex::new(WindowedHistogram::new(WINDOW, WINDOW_SLICES)),
            latency_ping: Mutex::new(WindowedHistogram::new(WINDOW, WINDOW_SLICES)),
        }
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn histogram(&self, kind: RequestKind) -> &Mutex<WindowedHistogram> {
        match kind {
            RequestKind::Request => &self.latency_request,
            RequestKind::Volume => &self.latency_volume,
            RequestKind::Ping => &self.latency_ping,
        }
    }

    /// Records one finished `Request`/`Volume` frame: the outcome bucket
    /// first, the total last, so a quiescent reader always sees
    /// `total == clean + degraded + failed + rejected`.
    pub fn record_request(&self, kind: RequestKind, outcome: RequestOutcome, latency_us: u64) {
        debug_assert!(kind != RequestKind::Ping, "pings use record_ping");
        match outcome {
            RequestOutcome::Clean => &self.requests_clean,
            RequestOutcome::Degraded => &self.requests_degraded,
            RequestOutcome::Failed => &self.requests_failed,
            RequestOutcome::Rejected => &self.requests_rejected,
        }
        .fetch_add(1, Ordering::Relaxed);
        if kind == RequestKind::Volume {
            self.volume_requests.fetch_add(1, Ordering::Relaxed);
        }
        self.requests_total.fetch_add(1, Ordering::Release);
        let now_us = self.now_us();
        lock(self.histogram(kind)).record_at(now_us, latency_us);
    }

    /// Records one answered ping.
    pub fn record_ping(&self, latency_us: u64) {
        self.pings_total.fetch_add(1, Ordering::Relaxed);
        let now_us = self.now_us();
        lock(&self.latency_ping).record_at(now_us, latency_us);
    }

    /// Total finished `Request`/`Volume` frames so far.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Acquire)
    }

    /// The live snapshot as JSON with byte-stable field names (the
    /// `StatsReport` payload). Queue depth, in-flight count and drain
    /// state are gauges owned by the server and passed in.
    pub fn snapshot_json(&self, queue_depth: usize, in_flight: usize, draining: bool) -> String {
        let now_us = self.now_us();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"server\": {{ \"uptime_us\": {}, \"draining\": {}, \"queue_depth\": {}, \"in_flight\": {} }},\n",
            now_us, draining, queue_depth, in_flight
        ));
        out.push_str(&format!(
            "  \"requests\": {{ \"total\": {}, \"clean\": {}, \"degraded\": {}, \"failed\": {}, \"rejected\": {}, \"volume\": {}, \"pings\": {} }},\n",
            self.requests_total.load(Ordering::Acquire),
            self.requests_clean.load(Ordering::Relaxed),
            self.requests_degraded.load(Ordering::Relaxed),
            self.requests_failed.load(Ordering::Relaxed),
            self.requests_rejected.load(Ordering::Relaxed),
            self.volume_requests.load(Ordering::Relaxed),
            self.pings_total.load(Ordering::Relaxed),
        ));
        out.push_str("  \"latency\": {\n");
        let kinds = [
            ("request", RequestKind::Request),
            ("volume", RequestKind::Volume),
            ("ping", RequestKind::Ping),
        ];
        for (i, (label, kind)) in kinds.iter().enumerate() {
            let (window, lifetime) = {
                let h = lock(self.histogram(*kind));
                (h.snapshot_at(now_us), h.lifetime().clone())
            };
            out.push_str(&format!("    \"{label}\": {{ \"window\": "));
            write_latency(&mut out, &window);
            out.push_str(", \"lifetime\": ");
            write_latency(&mut out, &lifetime);
            out.push_str(" }");
            out.push_str(if i + 1 < kinds.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn write_latency(out: &mut String, hist: &HistogramSnapshot) {
    fn pct(hist: &HistogramSnapshot, q: f64) -> String {
        match hist.percentile_us(q) {
            Some(v) => v.to_string(),
            None => "null".to_owned(),
        }
    }
    out.push_str(&format!(
        "{{ \"count\": {}, \"sum_us\": {}, \"max_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {} }}",
        hist.count,
        hist.sum_us,
        hist.max_us,
        pct(hist, 0.50),
        pct(hist, 0.95),
        pct(hist, 0.99),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_partition_by_outcome() {
        let stats = LiveStats::new();
        stats.record_request(RequestKind::Request, RequestOutcome::Clean, 100);
        stats.record_request(RequestKind::Request, RequestOutcome::Clean, 200);
        stats.record_request(RequestKind::Request, RequestOutcome::Degraded, 300);
        stats.record_request(RequestKind::Volume, RequestOutcome::Failed, 400);
        stats.record_request(RequestKind::Request, RequestOutcome::Rejected, 500);
        stats.record_ping(1);
        assert_eq!(stats.requests_total(), 5);
        let json = stats.snapshot_json(2, 1, false);
        let v = icd_obs::json::parse(&json).expect("snapshot is valid JSON");
        let requests = v.get("requests").expect("requests object");
        let field = |k: &str| requests.get(k).and_then(|x| x.as_u64()).expect("field");
        assert_eq!(
            field("total"),
            field("clean") + field("degraded") + field("failed") + field("rejected"),
        );
        assert_eq!(field("total"), 5);
        assert_eq!(field("volume"), 1);
        assert_eq!(field("pings"), 1);
        let server = v.get("server").expect("server object");
        assert_eq!(server.get("queue_depth").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(server.get("in_flight").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(
            server.get("draining").and_then(|x| x.as_bool()),
            Some(false)
        );
    }

    #[test]
    fn latency_percentiles_are_present_and_monotone() {
        let stats = LiveStats::new();
        for us in [10u64, 50, 100, 500, 1_000, 5_000, 10_000, 50_000] {
            stats.record_request(RequestKind::Request, RequestOutcome::Clean, us);
        }
        let json = stats.snapshot_json(0, 0, false);
        let v = icd_obs::json::parse(&json).expect("parses");
        let window = v
            .get("latency")
            .and_then(|l| l.get("request"))
            .and_then(|r| r.get("window"))
            .expect("window object");
        let pct = |k: &str| window.get(k).and_then(|x| x.as_u64()).expect("percentile");
        assert_eq!(window.get("count").and_then(|x| x.as_u64()), Some(8));
        assert!(pct("p50_us") <= pct("p95_us"));
        assert!(pct("p95_us") <= pct("p99_us"));
        assert!(pct("p99_us") <= pct("max_us"));
    }

    #[test]
    fn empty_histograms_report_null_percentiles() {
        let stats = LiveStats::new();
        let json = stats.snapshot_json(0, 0, true);
        let v = icd_obs::json::parse(&json).expect("parses");
        let ping = v
            .get("latency")
            .and_then(|l| l.get("ping"))
            .and_then(|p| p.get("window"))
            .expect("ping window");
        assert_eq!(ping.get("count").and_then(|x| x.as_u64()), Some(0));
        assert!(matches!(
            ping.get("p99_us"),
            Some(icd_obs::json::Value::Null)
        ));
        assert_eq!(
            v.get("server")
                .and_then(|s| s.get("draining"))
                .and_then(|d| d.as_bool()),
            Some(true)
        );
    }
}
