//! Bit-parallel (PPSFP-style) packing of ternary logic values.
//!
//! The diagnosis flow scores every candidate against *every* pattern — no
//! assumption restricts which failing patterns belong to which defect — so
//! simulation cost on the hot path is `patterns × gates`. This module packs
//! 64 patterns into one machine word as **two bit-planes**:
//!
//! * the *value* plane — bit `t` is 1 when pattern `t` holds logic `1`;
//! * the *known* plane — bit `t` is 1 when pattern `t` holds a known
//!   (`0`/`1`) value. A cleared known bit encodes [`Lv::U`].
//!
//! The planes keep the invariant `value & !known == 0` (an unknown lane
//! never carries a stray value bit), which makes every plane operation a
//! handful of word-wide AND/OR/XOR/NOT instructions implementing exact
//! Kleene three-valued logic — see [`PackedWord`].
//!
//! [`PackedPatternSet`] packs a pattern set once (pin-major) and
//! [`PackedEval`] evaluates a ternary [`TruthTable`] one 64-lane word at a
//! time, with a minterm-OR fast path when a word is fully known and the
//! table is binary. Lanes beyond the pattern count in the final word
//! (*tail lanes*) are pinned to `Zero` so the fast path stays available on
//! the tail word; consumers must mask with
//! [`PackedPatternSet::tail_mask`] before interpreting raw planes.
//!
//! The serial, per-pattern evaluators ([`TruthTable::eval`] and friends)
//! remain the authoritative oracle: every packed operation is
//! differentially tested against them.

use crate::{Lv, Pattern, TruthTable, TruthTableError};

/// 64 ternary logic values in two bit-planes (value + known mask).
///
/// Lane `t` (bit `t` of each plane) holds:
///
/// | known bit | value bit | lane value |
/// |-----------|-----------|------------|
/// | 0 | 0 | [`Lv::U`] |
/// | 1 | 0 | [`Lv::Zero`] |
/// | 1 | 1 | [`Lv::One`] |
///
/// The combination known = 0, value = 1 is unrepresentable: constructors
/// normalize it away, preserving `value & !known == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PackedWord {
    value: u64,
    known: u64,
}

impl PackedWord {
    /// All 64 lanes unknown.
    pub const ALL_U: PackedWord = PackedWord { value: 0, known: 0 };

    /// Builds a word from raw planes, clearing value bits of unknown lanes.
    #[inline]
    pub fn new(value: u64, known: u64) -> PackedWord {
        PackedWord {
            value: value & known,
            known,
        }
    }

    /// All lanes of `mask` set to `v`; lanes outside `mask` are `U`.
    #[inline]
    pub fn splat(v: Lv, mask: u64) -> PackedWord {
        match v {
            Lv::Zero => PackedWord {
                value: 0,
                known: mask,
            },
            Lv::One => PackedWord {
                value: mask,
                known: mask,
            },
            Lv::U => PackedWord::ALL_U,
        }
    }

    /// Packs up to 64 values; missing lanes are `U`.
    ///
    /// Extra values beyond lane 63 are ignored.
    pub fn from_lanes(lanes: &[Lv]) -> PackedWord {
        let mut w = PackedWord::ALL_U;
        for (t, &v) in lanes.iter().take(64).enumerate() {
            w = w.with_lane(t, v);
        }
        w
    }

    /// The value plane (bit `t` set when lane `t` is `1`).
    #[inline]
    pub fn value_plane(self) -> u64 {
        self.value
    }

    /// The known plane (bit `t` set when lane `t` is `0` or `1`).
    #[inline]
    pub fn known_plane(self) -> u64 {
        self.known
    }

    /// Lanes holding `0`, as a mask.
    #[inline]
    pub fn zero_plane(self) -> u64 {
        self.known & !self.value
    }

    /// One lane's value (`lane` is taken modulo 64).
    #[inline]
    pub fn lane(self, lane: usize) -> Lv {
        let bit = 1u64 << (lane % 64);
        if self.known & bit == 0 {
            Lv::U
        } else if self.value & bit == 0 {
            Lv::Zero
        } else {
            Lv::One
        }
    }

    /// A copy with one lane replaced (`lane` is taken modulo 64).
    #[inline]
    #[must_use]
    pub fn with_lane(self, lane: usize, v: Lv) -> PackedWord {
        let bit = 1u64 << (lane % 64);
        match v {
            Lv::Zero => PackedWord {
                value: self.value & !bit,
                known: self.known | bit,
            },
            Lv::One => PackedWord {
                value: self.value | bit,
                known: self.known | bit,
            },
            Lv::U => PackedWord {
                value: self.value & !bit,
                known: self.known & !bit,
            },
        }
    }

    /// Whether every lane of `mask` is known.
    #[inline]
    pub fn fully_known(self, mask: u64) -> bool {
        self.known & mask == mask
    }

    /// Lane-wise Kleene AND: `0` dominates, `1 & U = U`.
    #[inline]
    #[must_use]
    pub fn and(self, rhs: PackedWord) -> PackedWord {
        let zero = self.zero_plane() | rhs.zero_plane();
        let one = self.value & rhs.value;
        PackedWord {
            value: one,
            known: zero | one,
        }
    }

    /// Lane-wise Kleene OR: `1` dominates, `0 | U = U`.
    #[inline]
    #[must_use]
    pub fn or(self, rhs: PackedWord) -> PackedWord {
        let one = self.value | rhs.value;
        let zero = self.zero_plane() & rhs.zero_plane();
        PackedWord {
            value: one,
            known: zero | one,
        }
    }

    /// Lane-wise Kleene XOR: `U` with anything is `U`.
    #[inline]
    #[must_use]
    pub fn xor(self, rhs: PackedWord) -> PackedWord {
        let known = self.known & rhs.known;
        PackedWord {
            value: (self.value ^ rhs.value) & known,
            known,
        }
    }

    /// Lanes where the two words are *definitely* different (one holds
    /// `0`, the other `1`) — the packed form of [`Lv::conflicts_with`].
    #[inline]
    pub fn conflicts(self, rhs: PackedWord) -> u64 {
        (self.value ^ rhs.value) & self.known & rhs.known
    }
}

/// Lane-wise Kleene NOT: `!U = U`.
impl std::ops::Not for PackedWord {
    type Output = PackedWord;

    #[inline]
    fn not(self) -> PackedWord {
        PackedWord {
            value: self.known & !self.value,
            known: self.known,
        }
    }
}

/// A pattern set packed pin-major: plane `pin * num_words() + w` holds
/// lanes `64w .. 64w+63` of input pin `pin`.
///
/// Built once per datalog / pattern set and shared by every simulation
/// stage. Tail lanes (beyond `num_patterns()` in the last word) are pinned
/// to `Zero`; [`PackedPatternSet::tail_mask`] masks them off when a
/// consumer reads raw planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPatternSet {
    width: usize,
    num_patterns: usize,
    words: usize,
    planes: Vec<PackedWord>,
}

impl PackedPatternSet {
    /// Packs a pattern set. All patterns must share one width.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::ArityMismatch`] when two patterns have
    /// different widths.
    pub fn from_patterns(patterns: &[Pattern]) -> Result<Self, TruthTableError> {
        let width = patterns.first().map_or(0, Pattern::len);
        for p in patterns {
            if p.len() != width {
                return Err(TruthTableError::ArityMismatch {
                    left: width,
                    right: p.len(),
                });
            }
        }
        let words = patterns.len().div_ceil(64).max(1);
        // Tail lanes pinned to Zero (not U) so fully specified pattern
        // sets keep every word fully known — the binary fast path then
        // applies to the tail word too.
        let mut planes = vec![PackedWord::splat(Lv::Zero, !0u64); width * words];
        for (t, p) in patterns.iter().enumerate() {
            let (w, lane) = (t / 64, t % 64);
            for (pin, &v) in p.values().iter().enumerate() {
                let plane = &mut planes[pin * words + w];
                *plane = plane.with_lane(lane, v);
            }
        }
        Ok(PackedPatternSet {
            width,
            num_patterns: patterns.len(),
            words,
            planes,
        })
    }

    /// Pattern width (pins per pattern).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of packed patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Words per pin (`max(1, ceil(num_patterns / 64))`).
    pub fn num_words(&self) -> usize {
        self.words
    }

    /// One 64-pattern word of one pin.
    ///
    /// Returns [`PackedWord::ALL_U`] when `pin` or `word` is out of range,
    /// keeping raw plane access panic-free.
    pub fn word(&self, pin: usize, word: usize) -> PackedWord {
        if pin >= self.width || word >= self.words {
            return PackedWord::ALL_U;
        }
        self.planes[pin * self.words + word]
    }

    /// Mask of the lanes of `word` that correspond to real patterns (all
    /// bits set for full words, low bits for the tail word).
    pub fn tail_mask(&self, word: usize) -> u64 {
        if word + 1 == self.words && !self.num_patterns.is_multiple_of(64) {
            (1u64 << (self.num_patterns % 64)) - 1
        } else if word >= self.words {
            0
        } else {
            !0u64
        }
    }

    /// The value of one pin under one pattern; `U` when out of range.
    pub fn value(&self, pin: usize, pattern: usize) -> Lv {
        if pattern >= self.num_patterns {
            return Lv::U;
        }
        self.word(pin, pattern / 64).lane(pattern % 64)
    }

    /// Reconstructs one pattern (the packing round-trip).
    pub fn pattern(&self, pattern: usize) -> Pattern {
        (0..self.width)
            .map(|pin| self.value(pin, pattern))
            .collect()
    }
}

/// Word-parallel evaluator for one [`TruthTable`], exact on ternary
/// lanes.
///
/// The table's minterms are split by output class once; evaluating a word
/// then costs `O(2^n · n)` word operations in the general case and
/// `O(|one_minterms| · n)` on the binary fast path — amortized over 64
/// lanes, against `64 · O(2^u)` serial [`TruthTable::eval`] calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedEval {
    inputs: usize,
    one_minterms: Vec<u32>,
    zero_minterms: Vec<u32>,
    u_minterms: Vec<u32>,
}

impl PackedEval {
    /// Precomputes the evaluator for a table.
    pub fn from_table(table: &TruthTable) -> PackedEval {
        let mut one_minterms = Vec::new();
        let mut zero_minterms = Vec::new();
        let mut u_minterms = Vec::new();
        for (m, &v) in table.entries().iter().enumerate() {
            match v {
                Lv::One => one_minterms.push(m as u32),
                Lv::Zero => zero_minterms.push(m as u32),
                Lv::U => u_minterms.push(m as u32),
            }
        }
        PackedEval {
            inputs: table.inputs(),
            one_minterms,
            zero_minterms,
            u_minterms,
        }
    }

    /// Number of table inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Whether the table has `U` entries (disables the binary fast path).
    pub fn has_unknown_entries(&self) -> bool {
        !self.u_minterms.is_empty()
    }

    /// Mask of lanes on which the minterm `m` is a *possible completion*
    /// of the input lanes: every input is either unknown or equal to the
    /// minterm's bit.
    #[inline]
    fn compatible(&self, m: u32, inputs: &[PackedWord]) -> u64 {
        let mut mask = !0u64;
        for (i, w) in inputs.iter().enumerate() {
            let want_one = (m >> i) & 1 == 1;
            let matches = if want_one { w.value } else { !w.value };
            mask &= matches | !w.known;
        }
        mask
    }

    /// Binary minterm-OR over fully known value planes. The caller must
    /// guarantee every lane of every input word is known and the table
    /// has no `U` entries; unknown lanes would silently evaluate as `0`.
    #[inline]
    pub fn eval_binary_word(&self, input_values: &[u64]) -> u64 {
        let mut out = 0u64;
        for &m in &self.one_minterms {
            let mut term = !0u64;
            for (i, &w) in input_values.iter().enumerate() {
                term &= if (m >> i) & 1 == 1 { w } else { !w };
            }
            out |= term;
        }
        out
    }

    /// Evaluates the table on one word of packed ternary inputs.
    ///
    /// Lane semantics are exactly [`TruthTable::eval`]: a lane's output is
    /// the unique output of all boolean completions of its (possibly
    /// unknown) inputs, or `U` when completions disagree or reach a `U`
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::WrongArity`] when the word count differs
    /// from the table's input count.
    pub fn eval_word(&self, inputs: &[PackedWord]) -> Result<PackedWord, TruthTableError> {
        if inputs.len() != self.inputs {
            return Err(TruthTableError::WrongArity {
                expected: self.inputs,
                got: inputs.len(),
            });
        }

        // Fast path: every lane known and the table binary — one
        // minterm-OR over the value planes.
        if self.u_minterms.is_empty() && inputs.iter().all(|w| w.fully_known(!0)) {
            let values: Vec<u64> = inputs.iter().map(|w| w.value).collect();
            return Ok(PackedWord {
                value: self.eval_binary_word(&values),
                known: !0,
            });
        }

        // General path: for each output class, the lanes on which some
        // completion reaches that class. A lane is One iff One is the
        // only reachable class; dually for Zero.
        let mut possible_one = 0u64;
        let mut possible_zero = 0u64;
        let mut possible_u = 0u64;
        for &m in &self.one_minterms {
            possible_one |= self.compatible(m, inputs);
        }
        for &m in &self.zero_minterms {
            possible_zero |= self.compatible(m, inputs);
        }
        for &m in &self.u_minterms {
            possible_u |= self.compatible(m, inputs);
        }
        let settled = !possible_u;
        let one = possible_one & !possible_zero & settled;
        let zero = possible_zero & !possible_one & settled;
        Ok(PackedWord {
            value: one,
            known: one | zero,
        })
    }

    /// Evaluates the table over a whole packed pattern set whose pins are
    /// the table inputs, returning one output word per pattern word.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::WrongArity`] when the set's width
    /// differs from the table's input count.
    pub fn eval_set(&self, set: &PackedPatternSet) -> Result<Vec<PackedWord>, TruthTableError> {
        if set.width() != self.inputs {
            return Err(TruthTableError::WrongArity {
                expected: self.inputs,
                got: set.width(),
            });
        }
        let mut out = Vec::with_capacity(set.num_words());
        let mut ins: Vec<PackedWord> = Vec::with_capacity(self.inputs.max(1));
        for w in 0..set.num_words() {
            ins.clear();
            ins.extend((0..self.inputs).map(|pin| set.word(pin, w)));
            out.push(self.eval_word(&ins)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_lanes() -> Vec<Lv> {
        // All 9 (a, b) ternary combinations plus padding.
        let mut lanes = Vec::new();
        for a in Lv::ALL {
            for b in Lv::ALL {
                lanes.push(a);
                lanes.push(b);
            }
        }
        lanes
    }

    #[test]
    fn word_round_trips_lanes() {
        let lanes = exhaustive_lanes();
        let w = PackedWord::from_lanes(&lanes);
        for (t, &v) in lanes.iter().enumerate() {
            assert_eq!(w.lane(t), v, "lane {t}");
        }
        // Unfilled lanes are U.
        assert_eq!(w.lane(63), Lv::U);
    }

    #[test]
    fn new_normalizes_the_unrepresentable_combination() {
        let w = PackedWord::new(!0, 0b1010);
        assert_eq!(w.value_plane(), 0b1010);
        assert_eq!(w.lane(0), Lv::U);
        assert_eq!(w.lane(1), Lv::One);
    }

    #[test]
    fn plane_ops_match_kleene_ops_lane_by_lane() {
        let mut a_lanes = Vec::new();
        let mut b_lanes = Vec::new();
        for a in Lv::ALL {
            for b in Lv::ALL {
                a_lanes.push(a);
                b_lanes.push(b);
            }
        }
        let a = PackedWord::from_lanes(&a_lanes);
        let b = PackedWord::from_lanes(&b_lanes);
        for t in 0..a_lanes.len() {
            assert_eq!(a.and(b).lane(t), a_lanes[t] & b_lanes[t], "AND lane {t}");
            assert_eq!(a.or(b).lane(t), a_lanes[t] | b_lanes[t], "OR lane {t}");
            assert_eq!((!a).lane(t), !a_lanes[t], "NOT lane {t}");
            let xor_ref = (a_lanes[t] & !b_lanes[t]) | (!a_lanes[t] & b_lanes[t]);
            assert_eq!(a.xor(b).lane(t), xor_ref, "XOR lane {t}");
            assert_eq!(
                a.conflicts(b) >> t & 1 == 1,
                a_lanes[t].conflicts_with(b_lanes[t]),
                "conflicts lane {t}"
            );
        }
    }

    #[test]
    fn splat_fills_only_the_mask() {
        let w = PackedWord::splat(Lv::One, 0b101);
        assert_eq!(w.lane(0), Lv::One);
        assert_eq!(w.lane(1), Lv::U);
        assert_eq!(w.lane(2), Lv::One);
        assert_eq!(PackedWord::splat(Lv::U, !0), PackedWord::ALL_U);
    }

    #[test]
    fn pattern_set_round_trips_and_masks_the_tail() {
        let patterns: Vec<Pattern> = (0..70)
            .map(|i| {
                Pattern::new([
                    if i % 2 == 0 { Lv::Zero } else { Lv::One },
                    if i % 3 == 0 { Lv::U } else { Lv::One },
                ])
            })
            .collect();
        let set = PackedPatternSet::from_patterns(&patterns).unwrap();
        assert_eq!(set.num_words(), 2);
        assert_eq!(set.tail_mask(0), !0u64);
        assert_eq!(set.tail_mask(1), (1u64 << 6) - 1);
        for (t, p) in patterns.iter().enumerate() {
            assert_eq!(&set.pattern(t), p, "pattern {t}");
        }
        // Tail lanes are pinned to Zero, keeping the word fully known.
        assert_eq!(set.word(0, 1).lane(6), Lv::Zero);
        // Out-of-range reads are U, not panics.
        assert_eq!(set.value(0, 70), Lv::U);
        assert_eq!(set.word(5, 0), PackedWord::ALL_U);
    }

    #[test]
    fn mismatched_widths_are_an_error() {
        let patterns = vec![Pattern::unknown(2), Pattern::unknown(3)];
        assert!(matches!(
            PackedPatternSet::from_patterns(&patterns),
            Err(TruthTableError::ArityMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn empty_set_has_one_word() {
        let set = PackedPatternSet::from_patterns(&[]).unwrap();
        assert_eq!(set.width(), 0);
        assert_eq!(set.num_words(), 1);
        assert_eq!(set.num_patterns(), 0);
        assert_eq!(set.tail_mask(0), !0u64);
    }

    #[test]
    fn packed_eval_matches_serial_eval_on_every_ternary_combo() {
        // Tables with and without U entries, arity 2.
        let tables = [
            TruthTable::from_fn(2, |b| b[0] & b[1]),
            TruthTable::from_fn(2, |b| b[0] ^ b[1]),
            TruthTable::from_entries(2, vec![Lv::Zero, Lv::U, Lv::One, Lv::U]).unwrap(),
        ];
        let mut a_lanes = Vec::new();
        let mut b_lanes = Vec::new();
        for a in Lv::ALL {
            for b in Lv::ALL {
                a_lanes.push(a);
                b_lanes.push(b);
            }
        }
        let a = PackedWord::from_lanes(&a_lanes);
        let b = PackedWord::from_lanes(&b_lanes);
        for table in &tables {
            let eval = PackedEval::from_table(table);
            let out = eval.eval_word(&[a, b]).unwrap();
            for t in 0..a_lanes.len() {
                let want = table.eval(&[a_lanes[t], b_lanes[t]]).unwrap();
                assert_eq!(out.lane(t), want, "table {table}, lane {t}");
            }
        }
    }

    #[test]
    fn fast_path_and_general_path_agree_on_binary_words() {
        let table = TruthTable::from_fn(3, |b| (b[0] & b[1]) | b[2]);
        let eval = PackedEval::from_table(&table);
        let a = PackedWord::new(0xAAAA_AAAA_AAAA_AAAA, !0);
        let b = PackedWord::new(0xCCCC_CCCC_CCCC_CCCC, !0);
        let c = PackedWord::new(0xF0F0_F0F0_F0F0_F0F0, !0);
        // Fully known: the fast path fires.
        let fast = eval.eval_word(&[a, b, c]).unwrap();
        // Force the general path by marking one irrelevant lane unknown,
        // then compare the other lanes.
        let b_u = b.with_lane(63, Lv::U);
        let general = eval.eval_word(&[a, b_u, c]).unwrap();
        for t in 0..63 {
            assert_eq!(fast.lane(t), general.lane(t), "lane {t}");
        }
        assert!(!eval.has_unknown_entries());
    }

    #[test]
    fn eval_word_checks_arity() {
        let eval = PackedEval::from_table(&TruthTable::from_fn(2, |b| b[0] & b[1]));
        assert!(matches!(
            eval.eval_word(&[PackedWord::ALL_U]),
            Err(TruthTableError::WrongArity {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn eval_set_walks_every_word() {
        let table = TruthTable::from_fn(2, |b| !(b[0] & b[1]));
        let eval = PackedEval::from_table(&table);
        let patterns: Vec<Pattern> = (0..100)
            .map(|i| Pattern::from_bits([(i % 2) == 0, (i % 3) == 0]))
            .collect();
        let set = PackedPatternSet::from_patterns(&patterns).unwrap();
        let out = eval.eval_set(&set).unwrap();
        assert_eq!(out.len(), 2);
        for (t, p) in patterns.iter().enumerate() {
            let want = table.eval(p.values()).unwrap();
            assert_eq!(out[t / 64].lane(t % 64), want, "pattern {t}");
        }
    }

    #[test]
    fn zero_input_table_evaluates_constants() {
        let constant = TruthTable::from_fn(0, |_| true);
        let eval = PackedEval::from_table(&constant);
        let out = eval.eval_word(&[]).unwrap();
        assert_eq!(out.lane(0), Lv::One);
        assert!(out.fully_known(!0));
    }
}
