use std::fmt;
use std::str::FromStr;

use crate::Lv;

/// An input vector applied to a circuit's primary inputs (plus pseudo-primary
/// inputs in full-scan mode) or to a single cell's inputs.
///
/// Patterns are ordered collections of [`Lv`]; production test patterns are
/// fully specified (`0`/`1`) but ATPG intermediate cubes may contain `U`
/// (don't-care) positions.
///
/// ```
/// use icd_logic::{Lv, Pattern};
/// let p: Pattern = "0111".parse()?;
/// assert_eq!(p.len(), 4);
/// assert_eq!(p[0], Lv::Zero);
/// # Ok::<(), icd_logic::TruthTableError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pattern {
    values: Vec<Lv>,
}

impl Pattern {
    /// Creates a pattern from any iterable of logic values.
    pub fn new<I: IntoIterator<Item = Lv>>(values: I) -> Self {
        Pattern {
            values: values.into_iter().collect(),
        }
    }

    /// Creates a fully specified pattern from booleans.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        Pattern {
            values: bits.into_iter().map(Lv::from).collect(),
        }
    }

    /// Creates an all-`U` (fully unspecified) pattern of the given width.
    pub fn unknown(width: usize) -> Self {
        Pattern {
            values: vec![Lv::U; width],
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pattern has no positions.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether every position is a known (`0`/`1`) value.
    pub fn is_fully_specified(&self) -> bool {
        self.values.iter().all(|v| v.is_known())
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Lv] {
        &self.values
    }

    /// Mutable access to one position.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds; pipeline code should prefer
    /// [`Pattern::try_set`].
    pub fn set(&mut self, index: usize, value: Lv) {
        self.values[index] = value;
    }

    /// Checked [`Pattern::set`]: rejects out-of-bounds indices instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError::IndexOutOfBounds`](crate::TruthTableError::IndexOutOfBounds)
    /// when `index >= self.len()`.
    pub fn try_set(&mut self, index: usize, value: Lv) -> Result<(), crate::TruthTableError> {
        match self.values.get_mut(index) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(crate::TruthTableError::IndexOutOfBounds {
                index,
                len: self.values.len(),
            }),
        }
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Lv> {
        self.values.iter()
    }

    /// Positions where `self` and `other` hold definitely different values.
    pub fn conflicting_positions(&self, other: &Pattern) -> Vec<usize> {
        self.values
            .iter()
            .zip(other.values.iter())
            .enumerate()
            .filter(|(_, (a, b))| a.conflicts_with(**b))
            .map(|(i, _)| i)
            .collect()
    }
}

impl std::ops::Index<usize> for Pattern {
    type Output = Lv;
    fn index(&self, index: usize) -> &Lv {
        &self.values[index]
    }
}

impl FromIterator<Lv> for Pattern {
    fn from_iter<I: IntoIterator<Item = Lv>>(iter: I) -> Self {
        Pattern::new(iter)
    }
}

impl FromIterator<bool> for Pattern {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Pattern::from_bits(iter)
    }
}

impl Extend<Lv> for Pattern {
    fn extend<I: IntoIterator<Item = Lv>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Pattern {
    type Item = &'a Lv;
    type IntoIter = std::slice::Iter<'a, Lv>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl IntoIterator for Pattern {
    type Item = Lv;
    type IntoIter = std::vec::IntoIter<Lv>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.values {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl FromStr for Pattern {
    type Err = crate::TruthTableError;

    /// Parses a string of `0`, `1` and `U`/`X` characters.
    ///
    /// # Errors
    ///
    /// Returns [`TruthTableError`](crate::TruthTableError) when the string
    /// contains any other character.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(Lv::Zero),
                '1' => Ok(Lv::One),
                'U' | 'u' | 'X' | 'x' => Ok(Lv::U),
                other => Err(crate::TruthTableError::BadPatternChar(other)),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Pattern::new)
    }
}

/// A two-pattern (launch, capture) test used for delay-fault analysis.
///
/// The paper's dynamic faulty behaviours "depend not only on the local gate
/// input values but also on the previous local values" (§3.1); a
/// `PatternPair` records both.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PatternPair {
    /// The first (launch / initialization) vector.
    pub launch: Pattern,
    /// The second (capture / observation) vector.
    pub capture: Pattern,
}

impl PatternPair {
    /// Creates a pair from two equally sized patterns.
    ///
    /// # Panics
    ///
    /// Panics if the two patterns have different widths.
    pub fn new(launch: Pattern, capture: Pattern) -> Self {
        assert_eq!(
            launch.len(),
            capture.len(),
            "launch and capture widths differ"
        );
        PatternPair { launch, capture }
    }

    /// Positions that transition (definitely change value) between launch
    /// and capture.
    pub fn transitioning_positions(&self) -> Vec<usize> {
        self.launch.conflicting_positions(&self.capture)
    }

    /// Whether any position transitions.
    pub fn has_transition(&self) -> bool {
        !self.transitioning_positions().is_empty()
    }
}

impl fmt::Display for PatternPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.launch, self.capture)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let p: Pattern = "01U1".parse().unwrap();
        assert_eq!(p.to_string(), "01U1");
        assert!(!p.is_fully_specified());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("01a1".parse::<Pattern>().is_err());
    }

    #[test]
    fn from_bits_is_fully_specified() {
        let p = Pattern::from_bits([true, false, true]);
        assert!(p.is_fully_specified());
        assert_eq!(p.to_string(), "101");
    }

    #[test]
    fn conflicting_positions_ignore_u() {
        let a: Pattern = "01U0".parse().unwrap();
        let b: Pattern = "11U1".parse().unwrap();
        assert_eq!(a.conflicting_positions(&b), vec![0, 3]);
    }

    #[test]
    fn pair_transitions() {
        let pair = PatternPair::new("0011".parse().unwrap(), "0101".parse().unwrap());
        assert_eq!(pair.transitioning_positions(), vec![1, 2]);
        assert!(pair.has_transition());
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn pair_width_mismatch_panics() {
        let _ = PatternPair::new("00".parse().unwrap(), "000".parse().unwrap());
    }

    #[test]
    fn unknown_pattern() {
        let p = Pattern::unknown(3);
        assert_eq!(p.to_string(), "UUU");
        assert!(!p.is_fully_specified());
        assert!(!p.is_empty());
    }

    #[test]
    fn try_set_checks_bounds() {
        let mut p: Pattern = "010".parse().unwrap();
        p.try_set(1, Lv::U).unwrap();
        assert_eq!(p.to_string(), "0U0");
        // Regression: `set` panicked here; `try_set` reports the width.
        assert!(matches!(
            p.try_set(3, Lv::One),
            Err(crate::TruthTableError::IndexOutOfBounds { index: 3, len: 3 })
        ));
    }

    #[test]
    fn collect_from_bools() {
        let p: Pattern = [true, true, false].into_iter().collect();
        assert_eq!(p.to_string(), "110");
    }
}
